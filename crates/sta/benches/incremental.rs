//! Per-move re-timing: the cost of updating timing after a single useful-skew
//! clock move, full [`analyze`] vs the [`IncrementalTimer`]. This is the inner
//! loop the skew/data optimizers run thousands of times per flow; the
//! incremental path should be well over 5x faster at the 2k-cell size.

use criterion::{criterion_group, criterion_main, Criterion};
use rl_ccd_netlist::{generate, DesignSpec, GeneratedDesign, TechNode};
use rl_ccd_sta::{
    analyze, ClockSchedule, Constraints, EndpointMargins, IncrementalTimer, TimingGraph,
};
use std::time::Duration;

fn design() -> GeneratedDesign {
    generate(&DesignSpec::new("inc-bench", 2000, TechNode::N7, 7))
}

fn per_move_retiming(c: &mut Criterion) {
    let d = design();
    let graph = TimingGraph::new(&d.netlist);
    let cons = Constraints::with_period(d.period_ps);
    let margins = EndpointMargins::zero(&d.netlist);
    let n_regs = d.netlist.flops().len();
    let mut group = c.benchmark_group("per_move_retiming_2k");

    {
        // Baseline: one clock move, then a from-scratch analysis — what the
        // skew loop used to pay per sweep for every register it served.
        let mut clocks =
            ClockSchedule::balanced(&d.netlist, 0.1 * d.period_ps, 2.0, d.period_ps, 7);
        let mut i = 0usize;
        group.bench_function("full_analyze", |b| {
            b.iter(|| {
                let r = i % n_regs;
                let delta = if i.is_multiple_of(2) { 3.0 } else { -3.0 };
                i += 1;
                clocks.adjust(r, delta);
                analyze(&d.netlist, &graph, &cons, &clocks, &margins)
            });
        });
    }

    {
        // Incremental: the same move stream applied through the timer; only
        // the moved register's fanout cone and fan-in frontier re-time.
        let mut clocks =
            ClockSchedule::balanced(&d.netlist, 0.1 * d.period_ps, 2.0, d.period_ps, 7);
        let mut timer = IncrementalTimer::new(&d.netlist, &cons, &clocks, &margins);
        let mut i = 0usize;
        group.bench_function("incremental", |b| {
            b.iter(|| {
                let r = i % n_regs;
                let delta = if i.is_multiple_of(2) { 3.0 } else { -3.0 };
                i += 1;
                clocks.adjust(r, delta);
                timer.set_clock_arrival(&d.netlist, r, clocks.arrival(r));
                timer.report().wns()
            });
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = per_move_retiming
}
criterion_main!(benches);
