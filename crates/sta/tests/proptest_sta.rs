//! Property-based tests of the timing engine on randomly generated
//! designs: finiteness, margin linearity, skew monotonicity, and the
//! downstream-hold invariant the useful-skew engine relies on.

use proptest::prelude::*;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};
use rl_ccd_sta::{analyze, ClockSchedule, Constraints, EndpointMargins, TimingGraph};

fn setup(
    seed: u64,
    cells: usize,
) -> (
    rl_ccd_netlist::GeneratedDesign,
    TimingGraph,
    Constraints,
    ClockSchedule,
) {
    let d = generate(&DesignSpec::new("psta", cells, TechNode::N7, seed));
    let graph = TimingGraph::new(&d.netlist);
    let cons = Constraints::with_period(d.period_ps);
    let clocks = ClockSchedule::balanced(&d.netlist, 0.1 * d.period_ps, 2.0, d.period_ps, seed);
    (d, graph, cons, clocks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_reported_quantities_are_finite(seed in 0u64..400) {
        let (d, graph, cons, clocks) = setup(seed, 400);
        let rep = analyze(&d.netlist, &graph, &cons, &clocks, &EndpointMargins::zero(&d.netlist));
        for i in 0..d.netlist.endpoints().len() {
            prop_assert!(rep.endpoint_slack(i).is_finite());
            prop_assert!(rep.endpoint_arrival(i).is_finite());
            prop_assert!(rep.endpoint_arrival(i) >= 0.0);
        }
        for c in d.netlist.cell_ids() {
            prop_assert!(!rep.out_slew(c).is_nan());
            prop_assert!(!rep.cell_slack(c).is_nan());
        }
        prop_assert!(rep.wns() <= 0.0);
        prop_assert!(rep.tns() <= 0.0);
        prop_assert_eq!(rep.nve(), rep.violating_endpoints().len());
    }

    #[test]
    fn margins_shift_slack_exactly(seed in 0u64..400, margin in 1.0f32..200.0) {
        let (d, graph, cons, clocks) = setup(seed, 350);
        let zero = EndpointMargins::zero(&d.netlist);
        let before = analyze(&d.netlist, &graph, &cons, &clocks, &zero);
        let target = seed as usize % d.netlist.endpoints().len();
        let mut margins = EndpointMargins::zero(&d.netlist);
        margins.set(target, margin);
        let after = analyze(&d.netlist, &graph, &cons, &clocks, &margins);
        // The margined endpoint's slack drops by exactly the margin…
        prop_assert!(
            (before.endpoint_slack(target) - after.endpoint_slack(target) - margin).abs() < 1e-2
        );
        // …and no other endpoint's own check moves.
        for i in 0..d.netlist.endpoints().len() {
            if i != target {
                prop_assert_eq!(before.endpoint_slack(i), after.endpoint_slack(i));
            }
        }
    }

    #[test]
    fn capture_delay_adds_slack_one_to_one(seed in 0u64..400, delta in 1.0f32..100.0) {
        let (d, graph, cons, mut clocks) = setup(seed, 350);
        let zero = EndpointMargins::zero(&d.netlist);
        let before = analyze(&d.netlist, &graph, &cons, &clocks, &zero);
        let reg = seed as usize % d.netlist.flops().len();
        let ei = graph.endpoint_of_flop(reg);
        clocks.adjust(reg, delta);
        let after = analyze(&d.netlist, &graph, &cons, &clocks, &zero);
        // Setup slack at the register's own D grows by exactly delta…
        prop_assert!(
            (after.endpoint_slack(ei) - before.endpoint_slack(ei) - delta).abs() < 1e-2
        );
        // …its hold slack shrinks by exactly delta…
        prop_assert!(
            (before.endpoint_hold_slack(ei) - after.endpoint_hold_slack(ei) - delta).abs() < 1e-2
        );
        // …and every *other* endpoint's slack can only stay or shrink
        // (delaying a launch clock never helps anyone else's setup).
        for i in 0..d.netlist.endpoints().len() {
            if i != ei {
                prop_assert!(after.endpoint_slack(i) <= before.endpoint_slack(i) + 1e-3);
            }
        }
    }

    #[test]
    fn downstream_hold_lower_bounds_endpoint_holds(seed in 0u64..400) {
        let (d, graph, cons, clocks) = setup(seed, 350);
        let rep = analyze(&d.netlist, &graph, &cons, &clocks, &EndpointMargins::zero(&d.netlist));
        // For every register endpoint, the launching registers' downstream
        // hold must not exceed this endpoint's hold slack.
        for (ei, ep) in d.netlist.endpoints().iter().enumerate() {
            let h = rep.endpoint_hold_slack(ei);
            if !h.is_finite() {
                continue;
            }
            let cell = ep.cell();
            let driver = d.netlist.net(d.netlist.cell(cell).inputs[0]).driver;
            prop_assert!(
                rep.downstream_hold_slack(driver) <= h + 1e-3,
                "endpoint {ei}: downstream hold {} > endpoint hold {h}",
                rep.downstream_hold_slack(driver)
            );
        }
    }
}
