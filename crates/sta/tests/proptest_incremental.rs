//! Parity property test for the incremental timer: after an arbitrary
//! interleaving of clock moves, margin edits, and cell touches (resizes
//! and pin swaps), the timer's report must match a from-scratch
//! [`analyze`] on the mutated design to within 1e-4.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl_ccd_netlist::{generate, CellId, DesignSpec, Netlist, TechNode};
use rl_ccd_sta::{
    analyze, ClockSchedule, Constraints, EndpointMargins, IncrementalTimer, TimingGraph,
    TimingReport,
};

const TOL: f32 = 1e-4;

/// Equal, or within tolerance — also true for two equal infinities.
fn close(a: f32, b: f32) -> bool {
    a == b || (a - b).abs() < TOL
}

fn assert_parity(
    netlist: &Netlist,
    constraints: &Constraints,
    clocks: &ClockSchedule,
    margins: &EndpointMargins,
    timer: &IncrementalTimer,
    step: usize,
) {
    let graph = TimingGraph::new(netlist);
    let full: TimingReport = analyze(netlist, &graph, constraints, clocks, margins);
    let inc = timer.report();
    assert_eq!(inc.nve(), full.nve(), "nve diverged at step {step}");
    assert!(
        close(inc.wns(), full.wns()),
        "wns diverged at step {step}: {} vs {}",
        inc.wns(),
        full.wns()
    );
    // TNS is an f64 accumulation; incremental updates sum in a different
    // order than the full pass, so allow a small relative slop on top.
    let tns_tol = 1e-3_f64.max(1e-6 * full.tns().abs());
    assert!(
        (inc.tns() - full.tns()).abs() < tns_tol,
        "tns diverged at step {step}: {} vs {}",
        inc.tns(),
        full.tns()
    );
    for ei in 0..netlist.endpoints().len() {
        assert!(
            close(inc.endpoint_slack(ei), full.endpoint_slack(ei)),
            "endpoint {ei} slack diverged at step {step}: {} vs {}",
            inc.endpoint_slack(ei),
            full.endpoint_slack(ei)
        );
        assert!(
            close(inc.endpoint_arrival(ei), full.endpoint_arrival(ei)),
            "endpoint {ei} arrival diverged at step {step}"
        );
        assert!(
            close(inc.endpoint_hold_slack(ei), full.endpoint_hold_slack(ei)),
            "endpoint {ei} hold diverged at step {step}"
        );
    }
    for c in netlist.cell_ids() {
        assert!(
            close(inc.out_arrival(c), full.out_arrival(c)),
            "cell {c:?} arrival diverged at step {step}: {} vs {}",
            inc.out_arrival(c),
            full.out_arrival(c)
        );
        assert!(
            close(inc.out_slew(c), full.out_slew(c)),
            "cell {c:?} slew diverged at step {step}"
        );
        assert!(
            close(inc.cell_slack(c), full.cell_slack(c)),
            "cell {c:?} slack diverged at step {step}: {} vs {}",
            inc.cell_slack(c),
            full.cell_slack(c)
        );
        assert!(
            close(inc.downstream_hold_slack(c), full.downstream_hold_slack(c)),
            "cell {c:?} downstream hold diverged at step {step}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_mutation_sequences_keep_parity_with_full_analyze(seed in 0u64..256) {
        let d = generate(&DesignSpec::new("inc-prop", 400, TechNode::N7, seed));
        let mut netlist = d.netlist;
        let constraints = Constraints::with_period(d.period_ps);
        let mut clocks =
            ClockSchedule::balanced(&netlist, 0.1 * d.period_ps, 2.0, d.period_ps, seed);
        let mut margins = EndpointMargins::zero(&netlist);
        let mut timer = IncrementalTimer::new(&netlist, &constraints, &clocks, &margins);

        let comb: Vec<CellId> = netlist
            .cell_ids()
            .filter(|&c| netlist.kind(c).is_combinational())
            .collect();
        let n_regs = netlist.flops().len();
        let n_eps = netlist.endpoints().len();
        prop_assume!(n_regs > 0 && n_eps > 0 && !comb.is_empty());

        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        const STEPS: usize = 120;
        for step in 0..STEPS {
            match rng.gen_range(0..4u32) {
                0 => {
                    // Clock move: adjust (clamped by the schedule), then
                    // hand the timer the absolute arrival it landed on.
                    let r = rng.gen_range(0..n_regs);
                    let delta = rng.gen_range(-30.0f32..30.0);
                    clocks.adjust(r, delta);
                    timer.set_clock_arrival(&netlist, r, clocks.arrival(r));
                }
                1 => {
                    let ei = rng.gen_range(0..n_eps);
                    let m = rng.gen_range(0.0f32..80.0);
                    margins.set(ei, m);
                    timer.set_margin(&netlist, ei, m);
                }
                2 => {
                    // Resize a combinational cell (up if possible, else
                    // down), then touch it.
                    let c = comb[rng.gen_range(0..comb.len())];
                    let lc = netlist.cell(c).lib;
                    let next = netlist
                        .library()
                        .upsize(lc)
                        .or_else(|| netlist.library().downsize(lc));
                    if let Some(next) = next {
                        netlist.resize(c, next);
                        timer.touch_cell(&netlist, c);
                    }
                }
                _ => {
                    // Pin swap on a multi-input cell, then touch it.
                    let c = comb[rng.gen_range(0..comb.len())];
                    let n_in = netlist.cell(c).inputs.len();
                    if n_in >= 2 {
                        let pin = rng.gen_range(1..n_in);
                        netlist.swap_pins(c, 0, pin as u8);
                        timer.touch_cell(&netlist, c);
                    }
                }
            }
            if step % 40 == 39 {
                assert_parity(&netlist, &constraints, &clocks, &margins, &timer, step);
            }
        }
        assert_parity(&netlist, &constraints, &clocks, &margins, &timer, STEPS);
        // The whole sequence must have stayed incremental: construction is
        // the only full pass.
        prop_assert_eq!(timer.stats().full_passes, 1);
    }
}
