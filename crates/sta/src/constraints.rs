//! Timing constraints and endpoint margins.

use rl_ccd_netlist::Netlist;

/// Design timing constraints for one clock domain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Constraints {
    /// Clock period in ps.
    pub period: f32,
    /// Arrival of primary inputs relative to the clock edge, in ps.
    pub input_delay: f32,
    /// Required margin before the next edge at primary outputs, in ps.
    pub output_delay: f32,
    /// Clock uncertainty subtracted from every setup check, in ps.
    pub uncertainty: f32,
    /// OCV derate multiplying every *max* (late) data-path delay; ≥ 1
    /// makes setup checks pessimistic. 1.0 = no derating.
    pub derate_late: f32,
    /// OCV derate multiplying every *min* (early) data-path delay; ≤ 1
    /// makes hold checks pessimistic. 1.0 = no derating.
    pub derate_early: f32,
}

impl Constraints {
    /// Constraints with the given period, small default IO delays, and no
    /// OCV derating.
    pub fn with_period(period: f32) -> Self {
        Self {
            period,
            input_delay: 0.05 * period,
            output_delay: 0.05 * period,
            uncertainty: 0.01 * period,
            derate_late: 1.0,
            derate_early: 1.0,
        }
    }

    /// The same constraints with signoff-style OCV derates applied
    /// (`late ≥ 1`, `early ≤ 1`).
    ///
    /// # Panics
    /// Panics if the derates point the wrong way.
    pub fn with_ocv(mut self, late: f32, early: f32) -> Self {
        assert!(late >= 1.0, "late derate must be ≥ 1");
        assert!(
            (0.0..=1.0).contains(&early),
            "early derate must be in (0, 1]"
        );
        self.derate_late = late;
        self.derate_early = early;
        self
    }
}

/// Per-endpoint timing margins (ps), subtracted from the endpoint's required
/// time. RL-CCD uses margins to worsen selected endpoints to the design WNS
/// before useful skew (Algorithm 1 line 14) and removes them afterwards.
#[derive(Clone, Debug, PartialEq)]
pub struct EndpointMargins {
    values: Vec<f32>,
}

impl EndpointMargins {
    /// Zero margins for every endpoint of `netlist`.
    pub fn zero(netlist: &Netlist) -> Self {
        Self {
            values: vec![0.0; netlist.endpoints().len()],
        }
    }

    /// Margin of endpoint `i` (ps).
    pub fn get(&self, i: usize) -> f32 {
        self.values[i]
    }

    /// Sets the margin of endpoint `i` (ps).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, margin: f32) {
        self.values[i] = margin;
    }

    /// Clears all margins back to zero (Algorithm 1 line 16).
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Whether any margin is non-zero.
    pub fn any(&self) -> bool {
        self.values.iter().any(|&v| v != 0.0)
    }

    /// Number of endpoints covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the design has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    #[test]
    fn with_period_scales_io_delays() {
        let c = Constraints::with_period(1000.0);
        assert_eq!(c.period, 1000.0);
        assert!(c.input_delay > 0.0 && c.output_delay > 0.0 && c.uncertainty > 0.0);
    }

    #[test]
    fn margins_roundtrip() {
        let d = generate(&DesignSpec::new("m", 300, TechNode::N7, 1));
        let mut m = EndpointMargins::zero(&d.netlist);
        assert!(!m.is_empty());
        assert!(!m.any());
        m.set(0, 12.5);
        assert!(m.any());
        assert_eq!(m.get(0), 12.5);
        m.clear();
        assert!(!m.any());
        assert_eq!(m.len(), d.netlist.endpoints().len());
    }
}
