//! Clock schedule: per-register clock arrival times and skew adjustment.
//!
//! The clock network is abstracted as a per-register insertion latency plus
//! an adjustable useful-skew term. This is exactly the interface a
//! CCD useful-skew engine manipulates: it never re-synthesizes the tree,
//! it schedules arrival adjustments within a bounded window.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl_ccd_netlist::Netlist;

/// Per-register clock arrival schedule.
///
/// Indexed by register index (position in [`Netlist::flops`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ClockSchedule {
    base: Vec<f32>,
    skew: Vec<f32>,
    bound: f32,
}

impl ClockSchedule {
    /// A balanced tree: every register gets `insertion` latency plus a small
    /// deterministic per-register variation of up to ±`variation` ps, with
    /// useful-skew adjustments bounded to ±`bound` ps.
    pub fn balanced(
        netlist: &Netlist,
        insertion: f32,
        variation: f32,
        bound: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = (0..netlist.flops().len())
            .map(|_| insertion + rng.gen_range(-variation..=variation))
            .collect();
        Self {
            base,
            skew: vec![0.0; netlist.flops().len()],
            bound,
        }
    }

    /// Number of registers covered.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the design has no registers.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Effective clock arrival at register `r`: base latency + skew, ps.
    pub fn arrival(&self, r: usize) -> f32 {
        self.base[r] + self.skew[r]
    }

    /// Current useful-skew adjustment of register `r`, ps.
    pub fn skew(&self, r: usize) -> f32 {
        self.skew[r]
    }

    /// The symmetric skew bound, ps.
    pub fn bound(&self) -> f32 {
        self.bound
    }

    /// Adds `delta` to register `r`'s skew, clamped to the bound. Returns
    /// the skew actually applied after clamping.
    pub fn adjust(&mut self, r: usize, delta: f32) -> f32 {
        let next = (self.skew[r] + delta).clamp(-self.bound, self.bound);
        let applied = next - self.skew[r];
        self.skew[r] = next;
        applied
    }

    /// Resets all skews to zero (back to the balanced tree).
    pub fn reset_skews(&mut self) {
        self.skew.iter_mut().for_each(|s| *s = 0.0);
    }

    /// All skew values, for histogramming (paper Fig. 5).
    pub fn skews(&self) -> &[f32] {
        &self.skew
    }

    /// Sum of absolute skew adjustments, ps — a cheap "how much did the
    /// engine move" metric.
    pub fn total_adjustment(&self) -> f64 {
        self.skew.iter().map(|s| s.abs() as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn sched() -> (ClockSchedule, usize) {
        let d = generate(&DesignSpec::new("c", 300, TechNode::N7, 2));
        let n = d.netlist.flops().len();
        (ClockSchedule::balanced(&d.netlist, 100.0, 5.0, 50.0, 9), n)
    }

    #[test]
    fn balanced_tree_has_small_variation() {
        let (s, n) = sched();
        assert_eq!(s.len(), n);
        assert!(!s.is_empty());
        for r in 0..n {
            assert!((s.arrival(r) - 100.0).abs() <= 5.0);
            assert_eq!(s.skew(r), 0.0);
        }
    }

    #[test]
    fn adjust_clamps_to_bound() {
        let (mut s, _) = sched();
        let applied = s.adjust(0, 80.0);
        assert_eq!(s.skew(0), 50.0);
        assert_eq!(applied, 50.0);
        let applied = s.adjust(0, 10.0);
        assert_eq!(applied, 0.0);
        s.adjust(0, -120.0);
        assert_eq!(s.skew(0), -50.0);
        assert!(s.total_adjustment() > 0.0);
        s.reset_skews();
        assert_eq!(s.total_adjustment(), 0.0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let d = generate(&DesignSpec::new("c", 300, TechNode::N7, 2));
        let a = ClockSchedule::balanced(&d.netlist, 100.0, 5.0, 50.0, 9);
        let b = ClockSchedule::balanced(&d.netlist, 100.0, 5.0, 50.0, 9);
        assert_eq!(a, b);
        let c = ClockSchedule::balanced(&d.netlist, 100.0, 5.0, 50.0, 10);
        assert_ne!(a, c);
    }
}
