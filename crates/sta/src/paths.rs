//! K-worst path enumeration.
//!
//! [`worst_paths`] returns, for one endpoint, the K distinct paths with the
//! latest arrival, using a lazy best-first search over the fan-in DAG (a
//! REA/k-longest-paths variant): partial paths are expanded backwards from
//! the endpoint, ranked by their *potential* arrival — the accumulated
//! suffix delay plus the STA arrival at the current frontier cell, which is
//! an exact (not heuristic) bound under the engine's delay model.

use crate::analysis::TimingReport;
use crate::delay::{cell_delay, edge_timing};
use rl_ccd_netlist::{CellId, Netlist};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One enumerated path, startpoint-first.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingPath {
    /// Cells from startpoint to the endpoint cell.
    pub cells: Vec<CellId>,
    /// Data arrival time at the endpoint pin along this path, ps.
    pub arrival: f32,
}

/// A partial path during the search: a suffix ending at the endpoint.
struct Partial {
    /// Frontier cell (the path is `frontier → suffix... → endpoint`).
    frontier: CellId,
    /// Cells of the suffix, endpoint-last (frontier excluded).
    suffix: Vec<CellId>,
    /// Delay of the suffix edges, from the frontier's *output pin* to the
    /// endpoint pin, ps.
    suffix_delay: f32,
    /// Upper bound on the full-path arrival: out-arrival(frontier) + suffix.
    potential: f32,
}

impl PartialEq for Partial {
    fn eq(&self, other: &Self) -> bool {
        self.potential == other.potential
    }
}
impl Eq for Partial {}
impl PartialOrd for Partial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Partial {
    fn cmp(&self, other: &Self) -> Ordering {
        self.potential
            .partial_cmp(&other.potential)
            .unwrap_or(Ordering::Equal)
    }
}

/// Enumerates up to `k` worst (latest-arrival) paths into `endpoint_index`.
///
/// Paths are returned in non-increasing arrival order. The expansion bound
/// is exact, so the first completed path is the true worst path and the
/// enumeration never returns a path out of order.
///
/// # Examples
/// ```
/// use rl_ccd_netlist::{generate, DesignSpec, TechNode};
/// use rl_ccd_sta::{analyze, worst_paths, ClockSchedule, Constraints, EndpointMargins, TimingGraph};
///
/// let d = generate(&DesignSpec::new("paths", 300, TechNode::N7, 3));
/// let graph = TimingGraph::new(&d.netlist);
/// let clocks = ClockSchedule::balanced(&d.netlist, 60.0, 3.0, 200.0, 1);
/// let report = analyze(
///     &d.netlist,
///     &graph,
///     &Constraints::with_period(d.period_ps),
///     &clocks,
///     &EndpointMargins::zero(&d.netlist),
/// );
/// let paths = worst_paths(&d.netlist, &report, 0, 3);
/// assert!(!paths.is_empty());
/// assert!((paths[0].arrival - report.endpoint_arrival(0)).abs() < 1.0);
/// ```
pub fn worst_paths(
    netlist: &Netlist,
    report: &TimingReport,
    endpoint_index: usize,
    k: usize,
) -> Vec<TimingPath> {
    let ep = netlist.endpoints()[endpoint_index];
    let ep_cell = ep.cell();
    let mut heap: BinaryHeap<Partial> = BinaryHeap::new();
    let lib = netlist.library();
    // Seed: the endpoint's data input drivers.
    let data_net = netlist.cell(ep_cell).inputs[0];
    {
        let drv = netlist.net(data_net).driver;
        let et = edge_timing(netlist, data_net, ep_cell, report.out_slew(drv));
        heap.push(Partial {
            frontier: drv,
            suffix: vec![ep_cell],
            suffix_delay: et.wire_delay,
            potential: report.out_arrival(drv) + et.wire_delay,
        });
    }
    let mut out = Vec::new();
    let mut expansions = 0usize;
    // Guard against pathological blow-up on dense reconvergence.
    let max_expansions = 50_000 + 200 * k;
    while let Some(p) = heap.pop() {
        if out.len() >= k || expansions > max_expansions {
            break;
        }
        expansions += 1;
        if !netlist.kind(p.frontier).is_combinational() {
            // Reached a startpoint: the partial is a complete path. A gate
            // with two pins on the same net yields the same cell sequence
            // through either pin (at slightly different delays), so keep
            // only the worst occurrence of each distinct sequence.
            let mut cells = Vec::with_capacity(p.suffix.len() + 1);
            cells.push(p.frontier);
            cells.extend(p.suffix.iter().rev());
            if !out.iter().any(|q: &TimingPath| q.cells == cells) {
                out.push(TimingPath {
                    cells,
                    arrival: p.potential,
                });
            }
            continue;
        }
        // Expand backwards through every input pin of the frontier cell.
        let cell = netlist.cell(p.frontier);
        let lc = lib.cell(cell.lib);
        let my_load = cell.output.map(|n| netlist.net_load(n)).unwrap_or(0.0);
        for (pin, &net) in cell.inputs.iter().enumerate() {
            let drv = netlist.net(net).driver;
            let et = edge_timing(netlist, net, p.frontier, report.out_slew(drv));
            let d = cell_delay(lib, lc, pin as u8, my_load, et.pin_slew);
            let mut suffix = p.suffix.clone();
            suffix.push(p.frontier);
            // Note: suffix stores endpoint-last; frontier appended at the
            // back, reversed on completion.
            let suffix_delay = p.suffix_delay + d + et.wire_delay;
            heap.push(Partial {
                frontier: drv,
                suffix,
                suffix_delay,
                potential: report.out_arrival(drv) + et.wire_delay + d + p.suffix_delay,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, TimingGraph};
    use crate::clock::ClockSchedule;
    use crate::constraints::{Constraints, EndpointMargins};
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn setup() -> (rl_ccd_netlist::GeneratedDesign, TimingGraph, TimingReport) {
        let d = generate(&DesignSpec::new("kpaths", 500, TechNode::N7, 8));
        let graph = TimingGraph::new(&d.netlist);
        let clocks = ClockSchedule::balanced(&d.netlist, 60.0, 3.0, 200.0, 1);
        let rep = analyze(
            &d.netlist,
            &graph,
            &Constraints::with_period(d.period_ps),
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        (d, graph, rep)
    }

    #[test]
    fn first_path_matches_sta_arrival() {
        let (d, _, rep) = setup();
        let viol = rep.violating_endpoints();
        assert!(!viol.is_empty());
        for &ei in viol.iter().take(5) {
            let paths = worst_paths(&d.netlist, &rep, ei, 3);
            assert!(!paths.is_empty());
            // The top path's arrival equals the STA endpoint arrival.
            assert!(
                (paths[0].arrival - rep.endpoint_arrival(ei)).abs() < 0.5,
                "endpoint {ei}: {} vs {}",
                paths[0].arrival,
                rep.endpoint_arrival(ei)
            );
        }
    }

    #[test]
    fn paths_are_ordered_and_distinct() {
        let (d, _, rep) = setup();
        let ei = rep.violating_endpoints()[0];
        let paths = worst_paths(&d.netlist, &rep, ei, 8);
        for w in paths.windows(2) {
            assert!(w[0].arrival >= w[1].arrival - 1e-3, "paths out of order");
            assert_ne!(w[0].cells, w[1].cells, "duplicate path");
        }
        // Each path runs startpoint → endpoint cell.
        let ep_cell = d.netlist.endpoints()[ei].cell();
        for p in &paths {
            assert!(!d.netlist.kind(p.cells[0]).is_combinational());
            assert_eq!(*p.cells.last().expect("non-empty"), ep_cell);
        }
    }

    #[test]
    fn k_limits_output() {
        let (d, _, rep) = setup();
        let ei = rep.violating_endpoints()[0];
        assert!(worst_paths(&d.netlist, &rep, ei, 1).len() == 1);
        let many = worst_paths(&d.netlist, &rep, ei, 4);
        assert!(many.len() <= 4);
    }
}
