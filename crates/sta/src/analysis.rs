//! Full-design static timing analysis: forward arrival/slew propagation,
//! backward required-time propagation, and the QoR metrics (WNS/TNS/NVE)
//! the paper optimizes.

use crate::clock::ClockSchedule;
use crate::constraints::{Constraints, EndpointMargins};
use crate::delay::{cell_delay, edge_timing, output_slew};
use rl_ccd_netlist::{topological_comb, CellId, Endpoint, GateKind, Netlist};

/// Precomputed structural data for timing analysis; rebuild after netlist
/// mutations that add cells (buffer insertion).
#[derive(Clone, Debug)]
pub struct TimingGraph {
    topo: Vec<CellId>,
    /// Endpoint index per register index (every register has a D endpoint).
    flop_endpoint: Vec<u32>,
}

impl TimingGraph {
    /// Builds the timing graph (topological order + index maps).
    pub fn new(netlist: &Netlist) -> Self {
        let topo = topological_comb(netlist);
        let mut flop_endpoint = vec![u32::MAX; netlist.flops().len()];
        for (ei, ep) in netlist.endpoints().iter().enumerate() {
            if let Endpoint::FlopD(cell) = ep {
                let r = netlist
                    .flop_index(*cell)
                    .expect("FlopD endpoint cell is a register");
                flop_endpoint[r] = ei as u32;
            }
        }
        debug_assert!(flop_endpoint.iter().all(|&e| e != u32::MAX));
        Self {
            topo,
            flop_endpoint,
        }
    }

    /// Endpoint index of register `r`'s D pin.
    pub fn endpoint_of_flop(&self, r: usize) -> usize {
        self.flop_endpoint[r] as usize
    }

    /// The cached topological order over combinational cells.
    pub fn topo(&self) -> &[CellId] {
        &self.topo
    }
}

/// Results of one full STA pass. All times in ps.
///
/// Fields are `pub(crate)` so the incremental engine
/// ([`crate::incremental::IncrementalTimer`]) can maintain the same report
/// in place instead of rebuilding it per edit.
#[derive(Clone, Debug)]
pub struct TimingReport {
    pub(crate) endpoint_slack: Vec<f32>,
    pub(crate) endpoint_hold_slack: Vec<f32>,
    pub(crate) endpoint_arrival: Vec<f32>,
    pub(crate) cell_slack: Vec<f32>,
    pub(crate) out_arrival: Vec<f32>,
    pub(crate) out_slew: Vec<f32>,
    pub(crate) worst_in_slew: Vec<f32>,
    pub(crate) downstream_hold: Vec<f32>,
    pub(crate) wns: f32,
    pub(crate) tns: f64,
    pub(crate) nve: usize,
}

impl TimingReport {
    /// Setup slack of endpoint `i`, ps (negative = violating).
    pub fn endpoint_slack(&self, i: usize) -> f32 {
        self.endpoint_slack[i]
    }

    /// All endpoint setup slacks, ps.
    pub fn endpoint_slacks(&self) -> &[f32] {
        &self.endpoint_slack
    }

    /// Hold slack of endpoint `i`, ps (`+∞` for primary outputs).
    pub fn endpoint_hold_slack(&self, i: usize) -> f32 {
        self.endpoint_hold_slack[i]
    }

    /// Data arrival time at endpoint `i`, ps.
    pub fn endpoint_arrival(&self, i: usize) -> f32 {
        self.endpoint_arrival[i]
    }

    /// Worst setup slack of paths *through* a cell (at its output pin), ps.
    /// `+∞` for cells without an output, and for cells added to the netlist
    /// after this analysis ran.
    pub fn cell_slack(&self, cell: CellId) -> f32 {
        self.cell_slack
            .get(cell.index())
            .copied()
            .unwrap_or(f32::INFINITY)
    }

    /// Arrival time at a cell's output pin, ps. Cells added to the netlist
    /// after this analysis ran report `-∞` (they are never the worst driver).
    pub fn out_arrival(&self, cell: CellId) -> f32 {
        self.out_arrival
            .get(cell.index())
            .copied()
            .unwrap_or(f32::NEG_INFINITY)
    }

    /// Output transition of a cell, ps (0 for cells added after analysis).
    pub fn out_slew(&self, cell: CellId) -> f32 {
        self.out_slew.get(cell.index()).copied().unwrap_or(0.0)
    }

    /// Worst transition among a cell's input pins, ps (0 for cells added
    /// after analysis).
    pub fn worst_in_slew(&self, cell: CellId) -> f32 {
        self.worst_in_slew.get(cell.index()).copied().unwrap_or(0.0)
    }

    /// Smallest hold slack among endpoints downstream of this cell's output,
    /// ps (`+∞` when no register endpoint is reachable). Advancing a
    /// launching register's clock by δ erodes this headroom by exactly δ, so
    /// the useful-skew engine uses it to guard negative shifts.
    pub fn downstream_hold_slack(&self, cell: CellId) -> f32 {
        self.downstream_hold
            .get(cell.index())
            .copied()
            .unwrap_or(f32::INFINITY)
    }

    /// Worst negative slack over all endpoints, ps (0 if clean).
    pub fn wns(&self) -> f32 {
        self.wns
    }

    /// Total negative slack: sum of negative endpoint slacks, ps (≤ 0).
    pub fn tns(&self) -> f64 {
        self.tns
    }

    /// Number of violating endpoints.
    pub fn nve(&self) -> usize {
        self.nve
    }

    /// Indices of all violating endpoints, worst first.
    pub fn violating_endpoints(&self) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.endpoint_slack.len())
            .filter(|&i| self.endpoint_slack[i] < 0.0)
            .collect();
        v.sort_by(|&a, &b| self.endpoint_slack[a].total_cmp(&self.endpoint_slack[b]));
        v
    }
}

/// Runs a full setup+hold STA pass.
///
/// Forward pass propagates max/min arrival and slew through the
/// combinational network from startpoints (register clock arrivals come
/// from `clocks`); backward pass propagates required times from endpoint
/// checks (period, capture clock arrival, setup, uncertainty, and any
/// endpoint `margins`).
pub fn analyze(
    netlist: &Netlist,
    graph: &TimingGraph,
    constraints: &Constraints,
    clocks: &ClockSchedule,
    margins: &EndpointMargins,
) -> TimingReport {
    let lib = netlist.library();
    let n = netlist.cell_count();
    let mut out_arrival = vec![0.0f32; n];
    let mut out_arrival_min = vec![0.0f32; n];
    let mut out_slew = vec![0.0f32; n];
    let mut worst_in_slew = vec![0.0f32; n];

    // Cache loads (they depend on current sizing/placement).
    let mut load = vec![0.0f32; n];
    for id in netlist.cell_ids() {
        if let Some(net) = netlist.cell(id).output {
            load[id.index()] = netlist.net_load(net);
        }
    }

    // --- Forward: sources -------------------------------------------------
    for id in netlist.cell_ids() {
        let lc = lib.cell(netlist.cell(id).lib);
        match lc.kind {
            GateKind::Input => {
                let a = constraints.input_delay + lc.resistance * load[id.index()];
                out_arrival[id.index()] = a;
                out_arrival_min[id.index()] = a;
                out_slew[id.index()] = output_slew(lc, load[id.index()]);
            }
            GateKind::Dff => {
                let r = netlist.flop_index(id).expect("flop has register index");
                let a = clocks.arrival(r) + lc.intrinsic + lc.resistance * load[id.index()];
                out_arrival[id.index()] = a;
                out_arrival_min[id.index()] = a;
                out_slew[id.index()] = output_slew(lc, load[id.index()]);
            }
            _ => {}
        }
    }

    // --- Forward: combinational cells -------------------------------------
    let late = constraints.derate_late;
    let early = constraints.derate_early;
    for &id in graph.topo() {
        let cell = netlist.cell(id);
        let lc = lib.cell(cell.lib);
        let my_load = load[id.index()];
        let mut max_a = f32::NEG_INFINITY;
        let mut min_a = f32::INFINITY;
        let mut wslew = 0.0f32;
        for (pin, &net) in cell.inputs.iter().enumerate() {
            let drv = netlist.net(net).driver;
            let et = edge_timing(netlist, net, id, out_slew[drv.index()]);
            let d = cell_delay(lib, lc, pin as u8, my_load, et.pin_slew);
            max_a = max_a.max(out_arrival[drv.index()] + late * (et.wire_delay + d));
            min_a = min_a.min(out_arrival_min[drv.index()] + early * (et.wire_delay + d));
            wslew = wslew.max(et.pin_slew);
        }
        out_arrival[id.index()] = max_a;
        out_arrival_min[id.index()] = min_a;
        out_slew[id.index()] = output_slew(lc, my_load);
        worst_in_slew[id.index()] = wslew;
    }

    // --- Endpoint checks ---------------------------------------------------
    let eps = netlist.endpoints();
    let mut endpoint_slack = vec![0.0f32; eps.len()];
    let mut endpoint_hold_slack = vec![f32::INFINITY; eps.len()];
    let mut endpoint_arrival = vec![0.0f32; eps.len()];
    let mut endpoint_required = vec![0.0f32; eps.len()];
    for (ei, ep) in eps.iter().enumerate() {
        let cell = ep.cell();
        let net = netlist.cell(cell).inputs[0];
        let drv = netlist.net(net).driver;
        let et = edge_timing(netlist, net, cell, out_slew[drv.index()]);
        let arr = out_arrival[drv.index()] + late * et.wire_delay;
        let arr_min = out_arrival_min[drv.index()] + early * et.wire_delay;
        worst_in_slew[cell.index()] = worst_in_slew[cell.index()].max(et.pin_slew);
        let required = match ep {
            Endpoint::FlopD(f) => {
                let r = netlist.flop_index(*f).expect("register");
                let lc = lib.cell(netlist.cell(*f).lib);
                let req = constraints.period + clocks.arrival(r)
                    - lc.setup
                    - constraints.uncertainty
                    - margins.get(ei);
                endpoint_hold_slack[ei] = arr_min - (clocks.arrival(r) + lc.hold);
                req
            }
            Endpoint::PrimaryOut(_) => {
                constraints.period - constraints.output_delay - margins.get(ei)
            }
        };
        endpoint_arrival[ei] = arr;
        endpoint_required[ei] = required;
        endpoint_slack[ei] = required - arr;
    }

    // --- Backward: required times ------------------------------------------
    let mut required_out = vec![f32::INFINITY; n];
    for (ei, ep) in eps.iter().enumerate() {
        let cell = ep.cell();
        let net = netlist.cell(cell).inputs[0];
        let drv = netlist.net(net).driver;
        let et = edge_timing(netlist, net, cell, out_slew[drv.index()]);
        let r = endpoint_required[ei] - late * et.wire_delay;
        if r < required_out[drv.index()] {
            required_out[drv.index()] = r;
        }
    }
    for &id in graph.topo().iter().rev() {
        let req_here = required_out[id.index()];
        if req_here == f32::INFINITY {
            continue;
        }
        let cell = netlist.cell(id);
        let lc = lib.cell(cell.lib);
        let my_load = load[id.index()];
        for (pin, &net) in cell.inputs.iter().enumerate() {
            let drv = netlist.net(net).driver;
            let et = edge_timing(netlist, net, id, out_slew[drv.index()]);
            let d = cell_delay(lib, lc, pin as u8, my_load, et.pin_slew);
            let r = req_here - late * (d + et.wire_delay);
            if r < required_out[drv.index()] {
                required_out[drv.index()] = r;
            }
        }
    }
    let mut cell_slack = vec![f32::INFINITY; n];
    for id in netlist.cell_ids() {
        if netlist.cell(id).output.is_some() && required_out[id.index()] < f32::INFINITY {
            cell_slack[id.index()] = required_out[id.index()] - out_arrival[id.index()];
        }
    }

    // --- Backward: downstream hold headroom ---------------------------------
    // Hold slack erodes 1:1 when a launcher's clock advances, so plain
    // min-propagation (no delay arithmetic) suffices.
    let mut downstream_hold = vec![f32::INFINITY; n];
    for (ei, ep) in eps.iter().enumerate() {
        if endpoint_hold_slack[ei].is_finite() {
            let cell = ep.cell();
            let net = netlist.cell(cell).inputs[0];
            let drv = netlist.net(net).driver;
            let h = endpoint_hold_slack[ei];
            if h < downstream_hold[drv.index()] {
                downstream_hold[drv.index()] = h;
            }
        }
    }
    for &id in graph.topo().iter().rev() {
        let h = downstream_hold[id.index()];
        if h == f32::INFINITY {
            continue;
        }
        for &net in &netlist.cell(id).inputs {
            let drv = netlist.net(net).driver;
            if h < downstream_hold[drv.index()] {
                downstream_hold[drv.index()] = h;
            }
        }
    }

    // --- QoR ----------------------------------------------------------------
    let mut wns = 0.0f32;
    let mut tns = 0.0f64;
    let mut nve = 0usize;
    for &s in &endpoint_slack {
        if s < 0.0 {
            nve += 1;
            tns += s as f64;
            if s < wns {
                wns = s;
            }
        }
    }

    TimingReport {
        endpoint_slack,
        endpoint_hold_slack,
        endpoint_arrival,
        cell_slack,
        out_arrival,
        out_slew,
        worst_in_slew,
        downstream_hold,
        wns,
        tns,
        nve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{
        generate, DesignSpec, Drive, GateKind as GK, Library, NetlistBuilder, Point, TechNode,
    };

    fn two_stage() -> Netlist {
        // pi -> buf -> f1 ; f1 -> inv -> f2 ; f2 -> po
        let mut b = NetlistBuilder::new("two", Library::new(TechNode::N7));
        let pi = b.input(Point::new(0.0, 0.0));
        let g0 = b.gate(GK::Buf, Drive::X1, Point::new(5.0, 0.0));
        let f1 = b.flop(Drive::X1, Point::new(10.0, 0.0));
        let g1 = b.gate(GK::Inv, Drive::X1, Point::new(20.0, 0.0));
        let f2 = b.flop(Drive::X1, Point::new(30.0, 0.0));
        let po = b.output(Point::new(40.0, 0.0));
        b.drive(pi, g0);
        b.drive(g0, f1);
        b.drive(f1, g1);
        b.drive(g1, f2);
        b.drive(f2, po);
        b.finish().expect("valid")
    }

    fn run(nl: &Netlist, period: f32) -> (TimingGraph, ClockSchedule, TimingReport) {
        let graph = TimingGraph::new(nl);
        let clocks = ClockSchedule::balanced(nl, 100.0, 0.0, 50.0, 1);
        let cons = Constraints::with_period(period);
        let margins = EndpointMargins::zero(nl);
        let rep = analyze(nl, &graph, &cons, &clocks, &margins);
        (graph, clocks, rep)
    }

    #[test]
    fn nan_margin_does_not_panic_reporting() {
        // Regression: the violating-endpoint sort used
        // `partial_cmp().expect(...)`, which panics the moment a NaN slack
        // reaches it. A poisoned margin (NaN from an upstream divide) makes
        // that endpoint's slack NaN; reporting must survive it.
        let d = generate(&DesignSpec::new("nanm", 300, TechNode::N7, 5));
        let graph = TimingGraph::new(&d.netlist);
        let clocks = ClockSchedule::balanced(&d.netlist, 60.0, 3.0, 200.0, 1);
        let cons = Constraints::with_period(d.period_ps);
        let mut margins = EndpointMargins::zero(&d.netlist);
        margins.set(0, f32::NAN);
        let rep = analyze(&d.netlist, &graph, &cons, &clocks, &margins);
        assert!(rep.endpoint_slack(0).is_nan());
        // The NaN endpoint never counts as violating, and the sorted
        // report, aggregates, and path walker all stay well-defined.
        let viol = rep.violating_endpoints();
        assert!(!viol.contains(&0));
        assert_eq!(viol.len(), rep.nve());
        assert!(rep.wns().is_finite());
        assert!(rep.tns().is_finite());
        if let Some(&worst) = viol.first() {
            assert!(!crate::report::worst_path(&d.netlist, &rep, worst).is_empty());
        }
        // Every other endpoint is untouched by the poisoned margin.
        let clean = analyze(
            &d.netlist,
            &graph,
            &cons,
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        for i in 1..d.netlist.endpoints().len() {
            assert_eq!(rep.endpoint_slack(i), clean.endpoint_slack(i));
        }
    }

    #[test]
    fn generous_period_meets_timing() {
        let nl = two_stage();
        let (_, _, rep) = run(&nl, 5000.0);
        assert_eq!(rep.nve(), 0);
        assert_eq!(rep.wns(), 0.0);
        assert_eq!(rep.tns(), 0.0);
        for i in 0..nl.endpoints().len() {
            assert!(rep.endpoint_slack(i) > 0.0);
            assert!(rep.endpoint_arrival(i) > 0.0);
        }
    }

    #[test]
    fn tight_period_violates() {
        let nl = two_stage();
        let (_, _, rep) = run(&nl, 30.0);
        assert!(rep.nve() > 0);
        assert!(rep.wns() < 0.0);
        assert!(rep.tns() < 0.0);
        let v = rep.violating_endpoints();
        assert_eq!(v.len(), rep.nve());
        // Worst first.
        for w in v.windows(2) {
            assert!(rep.endpoint_slack(w[0]) <= rep.endpoint_slack(w[1]));
        }
    }

    #[test]
    fn capture_skew_increases_setup_slack_of_d_endpoint() {
        let nl = two_stage();
        let graph = TimingGraph::new(&nl);
        let cons = Constraints::with_period(200.0);
        let margins = EndpointMargins::zero(&nl);
        let mut clocks = ClockSchedule::balanced(&nl, 100.0, 0.0, 50.0, 1);
        let before = analyze(&nl, &graph, &cons, &clocks, &margins);
        // Delay clock of register 1 (capture of f1->f2 path).
        clocks.adjust(1, 20.0);
        let after = analyze(&nl, &graph, &cons, &clocks, &margins);
        let e_f2 = graph.endpoint_of_flop(1);
        assert!(
            after.endpoint_slack(e_f2) > before.endpoint_slack(e_f2),
            "capture skew should add setup slack"
        );
        // And the hold slack at that endpoint shrinks.
        assert!(after.endpoint_hold_slack(e_f2) < before.endpoint_hold_slack(e_f2));
    }

    #[test]
    fn launch_skew_decreases_downstream_slack() {
        let nl = two_stage();
        let graph = TimingGraph::new(&nl);
        let cons = Constraints::with_period(200.0);
        let margins = EndpointMargins::zero(&nl);
        let mut clocks = ClockSchedule::balanced(&nl, 100.0, 0.0, 50.0, 1);
        let before = analyze(&nl, &graph, &cons, &clocks, &margins);
        // Delaying register 0's clock hurts the f1→f2 path it launches.
        clocks.adjust(0, 20.0);
        let after = analyze(&nl, &graph, &cons, &clocks, &margins);
        let e_f2 = graph.endpoint_of_flop(1);
        assert!(after.endpoint_slack(e_f2) < before.endpoint_slack(e_f2));
    }

    #[test]
    fn margins_worsen_endpoint_slack() {
        let nl = two_stage();
        let graph = TimingGraph::new(&nl);
        let cons = Constraints::with_period(200.0);
        let clocks = ClockSchedule::balanced(&nl, 100.0, 0.0, 50.0, 1);
        let mut margins = EndpointMargins::zero(&nl);
        let before = analyze(&nl, &graph, &cons, &clocks, &margins);
        margins.set(0, 15.0);
        let after = analyze(&nl, &graph, &cons, &clocks, &margins);
        assert!((before.endpoint_slack(0) - after.endpoint_slack(0) - 15.0).abs() < 1e-3);
        // Other endpoints unaffected.
        assert_eq!(before.endpoint_slack(1), after.endpoint_slack(1));
    }

    #[test]
    fn cell_slack_matches_endpoint_on_single_path() {
        let nl = two_stage();
        let (graph, _, rep) = run(&nl, 200.0);
        // The inverter (only cell on the f1→f2 path) has the same slack as
        // the f2 endpoint.
        let inv = nl
            .cell_ids()
            .find(|&c| nl.kind(c) == GK::Inv)
            .expect("has inverter");
        let e_f2 = graph.endpoint_of_flop(1);
        assert!((rep.cell_slack(inv) - rep.endpoint_slack(e_f2)).abs() < 1e-3);
        assert!(rep.out_slew(inv) > 0.0);
        assert!(rep.worst_in_slew(inv) > 0.0);
        assert!(rep.out_arrival(inv) > 0.0);
    }

    #[test]
    fn ocv_derates_shift_checks_the_right_way() {
        let nl = two_stage();
        let graph = TimingGraph::new(&nl);
        let clocks = ClockSchedule::balanced(&nl, 100.0, 0.0, 50.0, 1);
        let margins = EndpointMargins::zero(&nl);
        let plain = Constraints::with_period(200.0);
        let derated = Constraints::with_period(200.0).with_ocv(1.1, 0.9);
        let a = analyze(&nl, &graph, &plain, &clocks, &margins);
        let b = analyze(&nl, &graph, &derated, &clocks, &margins);
        for i in 0..nl.endpoints().len() {
            // Late derate → later arrivals → smaller-or-equal setup slack.
            assert!(b.endpoint_slack(i) <= a.endpoint_slack(i) + 1e-4);
            // Early derate → earlier min arrivals → smaller-or-equal hold
            // slack.
            if a.endpoint_hold_slack(i).is_finite() {
                assert!(b.endpoint_hold_slack(i) <= a.endpoint_hold_slack(i) + 1e-4);
            }
        }
        assert!(b.tns() <= a.tns());
    }

    #[test]
    #[should_panic(expected = "late derate must be")]
    fn backwards_ocv_panics() {
        let _ = Constraints::with_period(100.0).with_ocv(0.9, 0.9);
    }

    #[test]
    fn generated_design_analyzes_cleanly() {
        let d = generate(&DesignSpec::new("a", 800, TechNode::N7, 3));
        let graph = TimingGraph::new(&d.netlist);
        let clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 0.12 * d.period_ps, 5);
        let cons = Constraints::with_period(d.period_ps);
        let rep = analyze(
            &d.netlist,
            &graph,
            &cons,
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        // Roughly the calibrated fraction of endpoints violates.
        let frac = rep.nve() as f32 / d.netlist.endpoints().len() as f32;
        assert!(frac > 0.05 && frac < 0.95, "violation fraction {frac}");
        // Every endpoint has a finite slack, every arrival is finite.
        for i in 0..d.netlist.endpoints().len() {
            assert!(rep.endpoint_slack(i).is_finite());
            assert!(rep.endpoint_arrival(i).is_finite());
        }
    }
}
