//! The delay model shared by forward and backward propagation.
//!
//! A slew-aware linear model: cell delay is intrinsic (with per-pin
//! asymmetry) plus output-resistance × load plus a fraction of the input
//! slew; wires use a lumped Elmore segment from driver to each sink.

use rl_ccd_netlist::{CellId, LibCell, Library, NetId, Netlist};

/// Computed timing of one net-segment hop into a sink pin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeTiming {
    /// Wire delay from the net driver to this sink, ps.
    pub wire_delay: f32,
    /// Slew arriving at the sink pin, ps.
    pub pin_slew: f32,
}

/// Wire + slew timing of the hop from `net`'s driver into `sink`.
pub fn edge_timing(
    netlist: &Netlist,
    net: NetId,
    sink: CellId,
    driver_out_slew: f32,
) -> EdgeTiming {
    let lib = netlist.library();
    let seg = netlist.segment_length(net, sink);
    let sink_cap = lib.cell(netlist.cell(sink).lib).input_cap;
    let wire_delay = lib.wire().delay(seg, sink_cap);
    EdgeTiming {
        wire_delay,
        // Long RC segments degrade the transition.
        pin_slew: driver_out_slew + 0.10 * wire_delay,
    }
}

/// Propagation delay through a cell from input pin `pin` to its output,
/// given the load on the output net and the slew at the pin, ps.
pub fn cell_delay(lib: &Library, lc: &LibCell, pin: u8, load: f32, pin_slew: f32) -> f32 {
    lc.intrinsic * (1.0 + lib.pin_asymmetry() * pin as f32)
        + lc.resistance * load
        + lib.slew_to_delay() * pin_slew
}

/// Output slew of a cell driving `load` fF, ps.
pub fn output_slew(lc: &LibCell, load: f32) -> f32 {
    lc.slew_intrinsic + lc.slew_resistance * load
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{Drive, GateKind, Library, TechNode};

    #[test]
    fn delay_grows_with_load_slew_and_pin() {
        let lib = Library::new(TechNode::N7);
        let lc = lib.cell(lib.variant(GateKind::Nand2, Drive::X1)).clone();
        let base = cell_delay(&lib, &lc, 0, 2.0, 10.0);
        assert!(cell_delay(&lib, &lc, 0, 4.0, 10.0) > base);
        assert!(cell_delay(&lib, &lc, 0, 2.0, 30.0) > base);
        assert!(cell_delay(&lib, &lc, 1, 2.0, 10.0) > base);
    }

    #[test]
    fn stronger_drive_is_faster_under_load() {
        let lib = Library::new(TechNode::N7);
        let x1 = lib.cell(lib.variant(GateKind::Nand2, Drive::X1)).clone();
        let x8 = lib.cell(lib.variant(GateKind::Nand2, Drive::X8)).clone();
        let load = 12.0;
        assert!(cell_delay(&lib, &x8, 0, load, 20.0) < cell_delay(&lib, &x1, 0, load, 20.0));
        assert!(output_slew(&x8, load) < output_slew(&x1, load));
    }
}
