//! Incremental static timing analysis.
//!
//! [`analyze`](crate::analyze) recomputes the whole design on every call,
//! which makes the useful-skew sweep and the datapath sizing loop quadratic:
//! each candidate move re-times every cell even though a single clock edit
//! only disturbs the fanout cone of one register. [`IncrementalTimer`] owns
//! the same arrays a [`TimingReport`] holds and exposes three mutators —
//! [`set_clock_arrival`](IncrementalTimer::set_clock_arrival),
//! [`set_margin`](IncrementalTimer::set_margin), and
//! [`touch_cell`](IncrementalTimer::touch_cell) — that push the affected
//! cells onto levelized worklists and re-propagate only the dirty region:
//! arrivals and slews forward through the fanout cone, required times and
//! hold headroom backward through the fan-in frontier. WNS/TNS/NVE are
//! maintained from per-endpoint slack deltas (with a lazy worst-slack
//! rescan), so after every edit the embedded report is equal to what a
//! fresh full [`analyze`](crate::analyze) would produce.
//!
//! The engine recomputes with *exactly* the arithmetic of the full pass
//! (same expressions, same reduction order), so converged values are
//! bit-identical, not merely close; the parity property test in
//! `crates/sta/tests` asserts this over random edit sequences. Structural
//! netlist changes (buffer insertion, placement legalization) invalidate
//! the cached topology and load model — callers handle those through the
//! [`full_recompute`](IncrementalTimer::full_recompute) escape hatch, and
//! the timer also re-times from scratch on its own whenever it observes
//! that the cell count changed under it.

use crate::clock::ClockSchedule;
use crate::constraints::{Constraints, EndpointMargins};
use crate::delay::{cell_delay, edge_timing, output_slew};
use crate::TimingReport;
use rl_ccd_netlist::{topological_comb, CellId, Endpoint, GateKind, Netlist};

/// Counters describing how much work the timer has done; useful for
/// benchmarks and for asserting that the incremental path is exercised.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimerStats {
    /// Number of full (non-incremental) propagation passes.
    pub full_passes: u64,
    /// Number of incremental edits applied (clock moves, margin edits,
    /// cell touches).
    pub edits: u64,
    /// Cells re-timed by the forward pass across all incremental edits.
    pub cells_retimed: u64,
}

/// An incrementally-maintained timing view of one netlist.
///
/// Create with [`IncrementalTimer::new`] (runs one full pass), then apply
/// edits through the mutators. [`report`](IncrementalTimer::report) is
/// always consistent with the edits applied so far.
#[derive(Clone, Debug)]
pub struct IncrementalTimer {
    // --- structure (rebuilt by full_recompute) ---
    topo: Vec<CellId>,
    /// Forward level per cell: sources 0, combinational cells
    /// `1 + max(level of input drivers)`.
    level: Vec<u32>,
    /// Endpoint index per cell (`u32::MAX` when the cell is no endpoint).
    endpoint_of_cell: Vec<u32>,
    /// Endpoint index per register index.
    flop_endpoint: Vec<u32>,
    /// Whether the cell has an output pin (false only for output ports).
    has_output: Vec<bool>,

    // --- constraint state owned by the timer ---
    constraints: Constraints,
    clock_arrival: Vec<f32>,
    margins: Vec<f32>,

    // --- caches mirroring the full pass ---
    load: Vec<f32>,
    out_arrival_min: Vec<f32>,
    endpoint_required: Vec<f32>,
    required_out: Vec<f32>,
    report: TimingReport,

    // --- worklists (persistent scratch, level-indexed) ---
    fwd_buckets: Vec<Vec<u32>>,
    bwd_buckets: Vec<Vec<u32>>,
    fwd_in: Vec<bool>,
    bwd_in: Vec<bool>,
    ep_dirty: Vec<bool>,
    ep_list: Vec<u32>,
    wns_stale: bool,

    stats: TimerStats,
}

impl IncrementalTimer {
    /// Builds a timer and runs one full propagation so the embedded report
    /// matches `analyze(netlist, …)` for the given constraint state.
    pub fn new(
        netlist: &Netlist,
        constraints: &Constraints,
        clocks: &ClockSchedule,
        margins: &EndpointMargins,
    ) -> Self {
        let n_eps = netlist.endpoints().len();
        let mut timer = Self {
            topo: Vec::new(),
            level: Vec::new(),
            endpoint_of_cell: Vec::new(),
            flop_endpoint: Vec::new(),
            has_output: Vec::new(),
            constraints: *constraints,
            clock_arrival: (0..netlist.flops().len())
                .map(|r| clocks.arrival(r))
                .collect(),
            margins: (0..n_eps).map(|ei| margins.get(ei)).collect(),
            load: Vec::new(),
            out_arrival_min: Vec::new(),
            endpoint_required: vec![0.0; n_eps],
            required_out: Vec::new(),
            report: TimingReport {
                endpoint_slack: vec![0.0; n_eps],
                endpoint_hold_slack: vec![f32::INFINITY; n_eps],
                endpoint_arrival: vec![0.0; n_eps],
                cell_slack: Vec::new(),
                out_arrival: Vec::new(),
                out_slew: Vec::new(),
                worst_in_slew: Vec::new(),
                downstream_hold: Vec::new(),
                wns: 0.0,
                tns: 0.0,
                nve: 0,
            },
            fwd_buckets: Vec::new(),
            bwd_buckets: Vec::new(),
            fwd_in: Vec::new(),
            bwd_in: Vec::new(),
            ep_dirty: vec![false; n_eps],
            ep_list: Vec::new(),
            wns_stale: false,
            stats: TimerStats::default(),
        };
        timer.full_recompute(netlist);
        timer
    }

    /// The timing report reflecting every edit applied so far.
    pub fn report(&self) -> &TimingReport {
        &self.report
    }

    /// Consumes the timer, yielding the report.
    pub fn into_report(self) -> TimingReport {
        self.report
    }

    /// The clock arrival the timer currently assumes for register `r`.
    pub fn clock_arrival(&self, r: usize) -> f32 {
        self.clock_arrival[r]
    }

    /// The margin the timer currently assumes for endpoint `ei`.
    pub fn margin(&self, ei: usize) -> f32 {
        self.margins[ei]
    }

    /// Work counters (full passes, edits, cells re-timed).
    pub fn stats(&self) -> TimerStats {
        self.stats
    }

    /// Sets register `r`'s clock arrival to `t` (absolute, ps) and
    /// re-times the affected cone.
    pub fn set_clock_arrival(&mut self, netlist: &Netlist, r: usize, t: f32) {
        self.clock_arrival[r] = t;
        if self.structure_stale(netlist) {
            self.full_recompute(netlist);
            return;
        }
        // Q-side launch arrival changes (forward cone) and the D-side
        // capture check changes (required + hold) — mark_fwd on a register
        // covers both because registers are endpoints too.
        self.mark_fwd(netlist.flops()[r]);
        self.propagate(netlist);
    }

    /// Sets endpoint `ei`'s required-time margin to `m` and re-times the
    /// affected fan-in frontier.
    pub fn set_margin(&mut self, netlist: &Netlist, ei: usize, m: f32) {
        self.margins[ei] = m;
        if self.structure_stale(netlist) {
            self.full_recompute(netlist);
            return;
        }
        self.mark_ep(ei);
        self.propagate(netlist);
    }

    /// Copies every margin from `margins`, re-timing only endpoints whose
    /// value actually changed.
    pub fn set_margins_from(&mut self, netlist: &Netlist, margins: &EndpointMargins) {
        if self.structure_stale(netlist) {
            for ei in 0..self.margins.len() {
                self.margins[ei] = margins.get(ei);
            }
            self.full_recompute(netlist);
            return;
        }
        for ei in 0..self.margins.len() {
            let m = margins.get(ei);
            if m != self.margins[ei] {
                self.margins[ei] = m;
                self.mark_ep(ei);
            }
        }
        self.propagate(netlist);
    }

    /// Copies every clock arrival from `clocks`, re-timing only registers
    /// whose arrival actually changed.
    pub fn set_clocks_from(&mut self, netlist: &Netlist, clocks: &ClockSchedule) {
        if self.structure_stale(netlist) {
            for r in 0..self.clock_arrival.len() {
                self.clock_arrival[r] = clocks.arrival(r);
            }
            self.full_recompute(netlist);
            return;
        }
        for r in 0..self.clock_arrival.len() {
            let t = clocks.arrival(r);
            if t != self.clock_arrival[r] {
                self.clock_arrival[r] = t;
                self.mark_fwd(netlist.flops()[r]);
            }
        }
        self.propagate(netlist);
    }

    /// Re-times around cell `c` after an in-place change (resize, pin swap,
    /// local rewire): refreshes the loads of its adjacent nets and marks
    /// the local frontier dirty. Structural changes that *add* cells
    /// (buffer insertion) or move many cells (legalization) need
    /// [`full_recompute`](Self::full_recompute) instead; if the cell count
    /// changed, this method falls back to a full pass on its own.
    pub fn touch_cell(&mut self, netlist: &Netlist, c: CellId) {
        if self.structure_stale(netlist) {
            self.full_recompute(netlist);
            return;
        }
        self.mark_touched(netlist, c);
        self.propagate(netlist);
    }

    /// Applies several cell touches as one propagation (cheaper than
    /// calling [`touch_cell`](Self::touch_cell) per cell when a pass edits
    /// a batch before needing fresh timing).
    pub fn touch_cells(&mut self, netlist: &Netlist, cells: &[CellId]) {
        if self.structure_stale(netlist) {
            self.full_recompute(netlist);
            return;
        }
        for &c in cells {
            self.mark_touched(netlist, c);
        }
        self.propagate(netlist);
    }

    /// Marks the dirty frontier around an in-place cell change: refreshed
    /// loads for every adjacent net, forward marks for the cell, its input
    /// drivers, and its output sinks, and backward marks for the input
    /// drivers (a pin swap changes a driver's required time even when no
    /// forward value moves).
    fn mark_touched(&mut self, netlist: &Netlist, c: CellId) {
        let cell = netlist.cell(c);
        if let Some(net) = cell.output {
            self.load[c.index()] = netlist.net_load(net);
            for si in 0..netlist.net(net).sinks.len() {
                let (s, _) = netlist.net(net).sinks[si];
                self.mark_fwd(s);
            }
        }
        self.mark_fwd(c);
        self.mark_bwd(c);
        for ni in 0..cell.inputs.len() {
            let net = netlist.cell(c).inputs[ni];
            let drv = netlist.net(net).driver;
            self.load[drv.index()] = netlist.net_load(net);
            self.mark_fwd(drv);
            self.mark_bwd(drv);
        }
    }

    /// Escape hatch: rebuilds the topology/load caches and re-times the
    /// whole design from scratch. Required after netlist mutations the
    /// incremental model cannot see — buffer insertion (new cells) and
    /// placement legalization (every wire length changes).
    pub fn full_recompute(&mut self, netlist: &Netlist) {
        self.stats.full_passes += 1;
        rl_ccd_obs::counter!("sta.incremental.full_recomputes", 1);
        let _obs_span = rl_ccd_obs::span!("sta.full_recompute", cells = netlist.cell_count());
        let lib = netlist.library();
        let n = netlist.cell_count();
        let eps = netlist.endpoints();

        // --- structure ------------------------------------------------------
        self.topo = topological_comb(netlist);
        self.endpoint_of_cell = vec![u32::MAX; n];
        self.flop_endpoint = vec![u32::MAX; netlist.flops().len()];
        for (ei, ep) in eps.iter().enumerate() {
            self.endpoint_of_cell[ep.cell().index()] = ei as u32;
            if let Endpoint::FlopD(cell) = ep {
                let r = netlist
                    .flop_index(*cell)
                    .expect("FlopD endpoint cell is a register");
                self.flop_endpoint[r] = ei as u32;
            }
        }
        self.has_output = (0..n)
            .map(|i| netlist.cell(CellId::new(i)).output.is_some())
            .collect();
        self.level = vec![0u32; n];
        for &id in &self.topo {
            let mut lvl = 0u32;
            for &net in &netlist.cell(id).inputs {
                lvl = lvl.max(self.level[netlist.net(net).driver.index()]);
            }
            self.level[id.index()] = lvl + 1;
        }
        let max_level = self.level.iter().copied().max().unwrap_or(0) as usize;
        self.fwd_buckets = vec![Vec::new(); max_level + 1];
        self.bwd_buckets = vec![Vec::new(); max_level + 1];
        self.fwd_in = vec![false; n];
        self.bwd_in = vec![false; n];
        self.ep_dirty = vec![false; eps.len()];
        self.ep_list.clear();
        self.wns_stale = false;

        // --- loads ----------------------------------------------------------
        self.load = vec![0.0f32; n];
        for id in netlist.cell_ids() {
            if let Some(net) = netlist.cell(id).output {
                self.load[id.index()] = netlist.net_load(net);
            }
        }

        // --- forward: sources (identical arithmetic to `analyze`) -----------
        let rep = &mut self.report;
        rep.out_arrival = vec![0.0f32; n];
        self.out_arrival_min = vec![0.0f32; n];
        rep.out_slew = vec![0.0f32; n];
        rep.worst_in_slew = vec![0.0f32; n];
        for id in netlist.cell_ids() {
            let lc = lib.cell(netlist.cell(id).lib);
            match lc.kind {
                GateKind::Input => {
                    let a = self.constraints.input_delay + lc.resistance * self.load[id.index()];
                    rep.out_arrival[id.index()] = a;
                    self.out_arrival_min[id.index()] = a;
                    rep.out_slew[id.index()] = output_slew(lc, self.load[id.index()]);
                }
                GateKind::Dff => {
                    let r = netlist.flop_index(id).expect("flop has register index");
                    let a = self.clock_arrival[r]
                        + lc.intrinsic
                        + lc.resistance * self.load[id.index()];
                    rep.out_arrival[id.index()] = a;
                    self.out_arrival_min[id.index()] = a;
                    rep.out_slew[id.index()] = output_slew(lc, self.load[id.index()]);
                }
                _ => {}
            }
        }

        // --- forward: combinational cells -----------------------------------
        let late = self.constraints.derate_late;
        let early = self.constraints.derate_early;
        for &id in &self.topo {
            let cell = netlist.cell(id);
            let lc = lib.cell(cell.lib);
            let my_load = self.load[id.index()];
            let mut max_a = f32::NEG_INFINITY;
            let mut min_a = f32::INFINITY;
            let mut wslew = 0.0f32;
            for (pin, &net) in cell.inputs.iter().enumerate() {
                let drv = netlist.net(net).driver;
                let et = edge_timing(netlist, net, id, rep.out_slew[drv.index()]);
                let d = cell_delay(lib, lc, pin as u8, my_load, et.pin_slew);
                max_a = max_a.max(rep.out_arrival[drv.index()] + late * (et.wire_delay + d));
                min_a = min_a.min(self.out_arrival_min[drv.index()] + early * (et.wire_delay + d));
                wslew = wslew.max(et.pin_slew);
            }
            rep.out_arrival[id.index()] = max_a;
            self.out_arrival_min[id.index()] = min_a;
            rep.out_slew[id.index()] = output_slew(lc, my_load);
            rep.worst_in_slew[id.index()] = wslew;
        }

        // --- endpoint checks -------------------------------------------------
        rep.endpoint_hold_slack = vec![f32::INFINITY; eps.len()];
        for ei in 0..eps.len() {
            Self::recheck_endpoint_raw(
                netlist,
                &self.constraints,
                &self.clock_arrival,
                &self.margins,
                &self.out_arrival_min,
                rep,
                &mut self.endpoint_required,
                ei,
            );
        }

        // --- backward: required times + hold headroom ------------------------
        self.required_out = vec![f32::INFINITY; n];
        rep.downstream_hold = vec![f32::INFINITY; n];
        for (ei, ep) in eps.iter().enumerate() {
            let cell = ep.cell();
            let net = netlist.cell(cell).inputs[0];
            let drv = netlist.net(net).driver;
            let et = edge_timing(netlist, net, cell, rep.out_slew[drv.index()]);
            let r = self.endpoint_required[ei] - late * et.wire_delay;
            if r < self.required_out[drv.index()] {
                self.required_out[drv.index()] = r;
            }
            let h = rep.endpoint_hold_slack[ei];
            if h.is_finite() && h < rep.downstream_hold[drv.index()] {
                rep.downstream_hold[drv.index()] = h;
            }
        }
        for &id in self.topo.iter().rev() {
            let req_here = self.required_out[id.index()];
            let hold_here = rep.downstream_hold[id.index()];
            if req_here == f32::INFINITY && hold_here == f32::INFINITY {
                continue;
            }
            let cell = netlist.cell(id);
            let lc = lib.cell(cell.lib);
            let my_load = self.load[id.index()];
            for (pin, &net) in cell.inputs.iter().enumerate() {
                let drv = netlist.net(net).driver;
                if req_here < f32::INFINITY {
                    let et = edge_timing(netlist, net, id, rep.out_slew[drv.index()]);
                    let d = cell_delay(lib, lc, pin as u8, my_load, et.pin_slew);
                    let r = req_here - late * (d + et.wire_delay);
                    if r < self.required_out[drv.index()] {
                        self.required_out[drv.index()] = r;
                    }
                }
                if hold_here < rep.downstream_hold[drv.index()] {
                    rep.downstream_hold[drv.index()] = hold_here;
                }
            }
        }
        rep.cell_slack = vec![f32::INFINITY; n];
        for id in netlist.cell_ids() {
            if netlist.cell(id).output.is_some() && self.required_out[id.index()] < f32::INFINITY {
                rep.cell_slack[id.index()] =
                    self.required_out[id.index()] - rep.out_arrival[id.index()];
            }
        }

        // --- QoR -------------------------------------------------------------
        let mut wns = 0.0f32;
        let mut tns = 0.0f64;
        let mut nve = 0usize;
        for &s in &rep.endpoint_slack {
            if s < 0.0 {
                nve += 1;
                tns += s as f64;
                if s < wns {
                    wns = s;
                }
            }
        }
        rep.wns = wns;
        rep.tns = tns;
        rep.nve = nve;
    }

    // --- internals ----------------------------------------------------------

    fn structure_stale(&self, netlist: &Netlist) -> bool {
        netlist.cell_count() != self.level.len()
    }

    fn mark_fwd(&mut self, c: CellId) {
        let i = c.index();
        let ei = self.endpoint_of_cell[i];
        if ei != u32::MAX {
            self.mark_ep(ei as usize);
        }
        if self.has_output[i] && !self.fwd_in[i] {
            self.fwd_in[i] = true;
            self.fwd_buckets[self.level[i] as usize].push(i as u32);
        }
    }

    fn mark_bwd(&mut self, c: CellId) {
        let i = c.index();
        if self.has_output[i] && !self.bwd_in[i] {
            self.bwd_in[i] = true;
            self.bwd_buckets[self.level[i] as usize].push(i as u32);
        }
    }

    fn mark_ep(&mut self, ei: usize) {
        if !self.ep_dirty[ei] {
            self.ep_dirty[ei] = true;
            self.ep_list.push(ei as u32);
        }
    }

    /// Drains the dirty worklists: forward by ascending level, then the
    /// dirty endpoints, then backward by descending level, then the lazy
    /// WNS rescan.
    fn propagate(&mut self, netlist: &Netlist) {
        self.stats.edits += 1;
        let retimed_before = self.stats.cells_retimed;

        // Forward: pushes always go to strictly higher levels (or to the
        // endpoint list), so one ascending sweep converges.
        for lvl in 0..self.fwd_buckets.len() {
            let mut bucket = std::mem::take(&mut self.fwd_buckets[lvl]);
            for &ci in &bucket {
                self.fwd_in[ci as usize] = false;
                self.retime_forward(netlist, CellId::new(ci as usize));
            }
            bucket.clear();
            self.fwd_buckets[lvl] = bucket;
        }

        // Endpoint checks: may mark drivers backward-dirty.
        let eps = std::mem::take(&mut self.ep_list);
        for &ei in &eps {
            self.ep_dirty[ei as usize] = false;
            self.recheck_endpoint(netlist, ei as usize);
        }
        let mut eps = eps;
        eps.clear();
        self.ep_list = eps;

        // Backward: pushes always go to strictly lower levels, so one
        // descending sweep converges.
        for lvl in (0..self.bwd_buckets.len()).rev() {
            let mut bucket = std::mem::take(&mut self.bwd_buckets[lvl]);
            for &ci in &bucket {
                self.bwd_in[ci as usize] = false;
                self.retime_backward(netlist, CellId::new(ci as usize));
            }
            bucket.clear();
            self.bwd_buckets[lvl] = bucket;
        }

        if self.wns_stale {
            self.wns_stale = false;
            let mut wns = 0.0f32;
            for &s in &self.report.endpoint_slack {
                if s < wns {
                    wns = s;
                }
            }
            self.report.wns = wns;
        }

        rl_ccd_obs::counter!("sta.incremental.moves", 1);
        rl_ccd_obs::observe!(
            "sta.incremental.frontier_cells",
            self.stats.cells_retimed - retimed_before
        );
    }

    /// Recomputes one cell's forward values (arrival, min arrival, slew,
    /// worst input slew) with the full pass's arithmetic; on change, pushes
    /// combinational sinks forward, marks endpoint sinks, and queues the
    /// cell for the backward pass.
    fn retime_forward(&mut self, netlist: &Netlist, id: CellId) {
        self.stats.cells_retimed += 1;
        let lib = netlist.library();
        let i = id.index();
        let cell = netlist.cell(id);
        let lc = lib.cell(cell.lib);
        let my_load = self.load[i];
        let (a, a_min, slew, wslew) = match lc.kind {
            GateKind::Input => {
                let a = self.constraints.input_delay + lc.resistance * my_load;
                (a, a, output_slew(lc, my_load), self.report.worst_in_slew[i])
            }
            GateKind::Dff => {
                let r = netlist.flop_index(id).expect("flop has register index");
                let a = self.clock_arrival[r] + lc.intrinsic + lc.resistance * my_load;
                (a, a, output_slew(lc, my_load), self.report.worst_in_slew[i])
            }
            GateKind::Output => return,
            _ => {
                let late = self.constraints.derate_late;
                let early = self.constraints.derate_early;
                let mut max_a = f32::NEG_INFINITY;
                let mut min_a = f32::INFINITY;
                let mut wslew = 0.0f32;
                for (pin, &net) in cell.inputs.iter().enumerate() {
                    let drv = netlist.net(net).driver;
                    let et = edge_timing(netlist, net, id, self.report.out_slew[drv.index()]);
                    let d = cell_delay(lib, lc, pin as u8, my_load, et.pin_slew);
                    max_a = max_a
                        .max(self.report.out_arrival[drv.index()] + late * (et.wire_delay + d));
                    min_a =
                        min_a.min(self.out_arrival_min[drv.index()] + early * (et.wire_delay + d));
                    wslew = wslew.max(et.pin_slew);
                }
                (max_a, min_a, output_slew(lc, my_load), wslew)
            }
        };
        let changed = a != self.report.out_arrival[i]
            || a_min != self.out_arrival_min[i]
            || slew != self.report.out_slew[i]
            || wslew != self.report.worst_in_slew[i];
        self.report.out_arrival[i] = a;
        self.out_arrival_min[i] = a_min;
        self.report.out_slew[i] = slew;
        self.report.worst_in_slew[i] = wslew;
        if !changed {
            return;
        }
        if let Some(net) = cell.output {
            // Collect sink ids first: marking needs `&mut self`.
            for si in 0..netlist.net(net).sinks.len() {
                let (s, _) = netlist.net(net).sinks[si];
                let ei = self.endpoint_of_cell[s.index()];
                if ei != u32::MAX {
                    self.mark_ep(ei as usize);
                }
                if !matches!(netlist.kind(s), GateKind::Dff | GateKind::Output) {
                    self.mark_fwd(s);
                }
            }
        }
        self.mark_bwd(id);
    }

    /// Shared endpoint-check arithmetic (identical to the full pass).
    /// Returns `(required_changed, hold_changed, old_slack, new_slack)`.
    #[allow(clippy::too_many_arguments)]
    fn recheck_endpoint_raw(
        netlist: &Netlist,
        constraints: &Constraints,
        clock_arrival: &[f32],
        margins: &[f32],
        out_arrival_min: &[f32],
        rep: &mut TimingReport,
        endpoint_required: &mut [f32],
        ei: usize,
    ) -> (bool, bool, f32, f32) {
        let lib = netlist.library();
        let late = constraints.derate_late;
        let early = constraints.derate_early;
        let ep = &netlist.endpoints()[ei];
        let cell = ep.cell();
        let net = netlist.cell(cell).inputs[0];
        let drv = netlist.net(net).driver;
        let et = edge_timing(netlist, net, cell, rep.out_slew[drv.index()]);
        let arr = rep.out_arrival[drv.index()] + late * et.wire_delay;
        let arr_min = out_arrival_min[drv.index()] + early * et.wire_delay;
        // `analyze` folds the pin slew in with `max`; endpoint cells start
        // at zero and are written nowhere else, so assignment is identical.
        rep.worst_in_slew[cell.index()] = et.pin_slew;
        let old_required = endpoint_required[ei];
        let old_hold = rep.endpoint_hold_slack[ei];
        let required = match ep {
            Endpoint::FlopD(f) => {
                let r = netlist.flop_index(*f).expect("register");
                let lc = lib.cell(netlist.cell(*f).lib);
                rep.endpoint_hold_slack[ei] = arr_min - (clock_arrival[r] + lc.hold);
                constraints.period + clock_arrival[r]
                    - lc.setup
                    - constraints.uncertainty
                    - margins[ei]
            }
            Endpoint::PrimaryOut(_) => constraints.period - constraints.output_delay - margins[ei],
        };
        let old_slack = rep.endpoint_slack[ei];
        rep.endpoint_arrival[ei] = arr;
        endpoint_required[ei] = required;
        rep.endpoint_slack[ei] = required - arr;
        (
            required != old_required,
            rep.endpoint_hold_slack[ei] != old_hold,
            old_slack,
            rep.endpoint_slack[ei],
        )
    }

    /// Re-checks one endpoint and folds the slack delta into WNS/TNS/NVE;
    /// marks the driver backward-dirty when its required-time or hold
    /// contribution changed.
    fn recheck_endpoint(&mut self, netlist: &Netlist, ei: usize) {
        let drv = {
            let cell = netlist.endpoints()[ei].cell();
            let net = netlist.cell(cell).inputs[0];
            netlist.net(net).driver
        };
        let (req_changed, hold_changed, old_slack, new_slack) = Self::recheck_endpoint_raw(
            netlist,
            &self.constraints,
            &self.clock_arrival,
            &self.margins,
            &self.out_arrival_min,
            &mut self.report,
            &mut self.endpoint_required,
            ei,
        );
        if new_slack != old_slack {
            self.note_slack_change(old_slack, new_slack);
        }
        if req_changed || hold_changed {
            self.mark_bwd(drv);
        }
    }

    fn note_slack_change(&mut self, old: f32, new: f32) {
        if old < 0.0 {
            self.report.tns -= old as f64;
            self.report.nve -= 1;
        }
        if new < 0.0 {
            self.report.tns += new as f64;
            self.report.nve += 1;
        }
        if new < self.report.wns {
            self.report.wns = new;
        } else if old == self.report.wns && new > old {
            // The worst endpoint improved; rescan lazily after propagation.
            self.wns_stale = true;
        }
        if self.report.nve == 0 {
            self.report.tns = 0.0;
            self.report.wns = 0.0;
            self.wns_stale = false;
        }
    }

    /// Recomputes one cell's required time, downstream hold headroom, and
    /// slack from its sinks; on change, marks its input drivers
    /// backward-dirty.
    fn retime_backward(&mut self, netlist: &Netlist, id: CellId) {
        let lib = netlist.library();
        let late = self.constraints.derate_late;
        let i = id.index();
        let cell = netlist.cell(id);
        let Some(net) = cell.output else { return };
        let mut req = f32::INFINITY;
        let mut dnh = f32::INFINITY;
        for &(s, pin) in &netlist.net(net).sinks {
            let et = edge_timing(netlist, net, s, self.report.out_slew[i]);
            let ei = self.endpoint_of_cell[s.index()];
            if ei != u32::MAX {
                let r = self.endpoint_required[ei as usize] - late * et.wire_delay;
                if r < req {
                    req = r;
                }
                let h = self.report.endpoint_hold_slack[ei as usize];
                if h.is_finite() && h < dnh {
                    dnh = h;
                }
            } else {
                if self.required_out[s.index()] < f32::INFINITY {
                    let slc = lib.cell(netlist.cell(s).lib);
                    let d = cell_delay(lib, slc, pin, self.load[s.index()], et.pin_slew);
                    let r = self.required_out[s.index()] - late * (d + et.wire_delay);
                    if r < req {
                        req = r;
                    }
                }
                let h = self.report.downstream_hold[s.index()];
                if h < dnh {
                    dnh = h;
                }
            }
        }
        let changed = req != self.required_out[i] || dnh != self.report.downstream_hold[i];
        self.required_out[i] = req;
        self.report.downstream_hold[i] = dnh;
        self.report.cell_slack[i] = if req < f32::INFINITY {
            req - self.report.out_arrival[i]
        } else {
            f32::INFINITY
        };
        if !changed {
            return;
        }
        for &net in &cell.inputs {
            self.mark_bwd(netlist.net(net).driver);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use crate::TimingGraph;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn assert_parity(timer: &IncrementalTimer, fresh: &TimingReport, what: &str) {
        assert_eq!(timer.report().nve(), fresh.nve(), "{what}: nve");
        assert!(
            (timer.report().wns() - fresh.wns()).abs() < 1e-4,
            "{what}: wns {} vs {}",
            timer.report().wns(),
            fresh.wns()
        );
        assert!(
            (timer.report().tns() - fresh.tns()).abs() < 1e-3 * (1.0 + fresh.tns().abs()),
            "{what}: tns {} vs {}",
            timer.report().tns(),
            fresh.tns()
        );
        for ei in 0..fresh.endpoint_slacks().len() {
            assert!(
                (timer.report().endpoint_slack(ei) - fresh.endpoint_slack(ei)).abs() < 1e-4,
                "{what}: endpoint {ei} slack {} vs {}",
                timer.report().endpoint_slack(ei),
                fresh.endpoint_slack(ei)
            );
            let (th, fh) = (
                timer.report().endpoint_hold_slack(ei),
                fresh.endpoint_hold_slack(ei),
            );
            assert!(
                (th.is_infinite() && fh.is_infinite()) || (th - fh).abs() < 1e-4,
                "{what}: endpoint {ei} hold {th} vs {fh}"
            );
        }
        for i in 0..fresh.endpoint_slacks().len() {
            assert!(
                (timer.report().endpoint_arrival(i) - fresh.endpoint_arrival(i)).abs() < 1e-4,
                "{what}: endpoint {i} arrival"
            );
        }
    }

    #[test]
    fn fresh_timer_matches_full_analyze() {
        let d = generate(&DesignSpec::new("inc", 600, TechNode::N7, 9));
        let graph = TimingGraph::new(&d.netlist);
        let cons = Constraints::with_period(d.period_ps);
        let clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 0.12 * d.period_ps, 5);
        let margins = EndpointMargins::zero(&d.netlist);
        let timer = IncrementalTimer::new(&d.netlist, &cons, &clocks, &margins);
        let fresh = analyze(&d.netlist, &graph, &cons, &clocks, &margins);
        assert_parity(&timer, &fresh, "fresh");
        // Cell-level arrays match too.
        for id in d.netlist.cell_ids() {
            assert!((timer.report().out_arrival(id) - fresh.out_arrival(id)).abs() < 1e-4);
            assert!((timer.report().out_slew(id) - fresh.out_slew(id)).abs() < 1e-4);
            let (tc, fc) = (timer.report().cell_slack(id), fresh.cell_slack(id));
            assert!(
                (tc.is_infinite() && fc.is_infinite()) || (tc - fc).abs() < 1e-4,
                "cell {id} slack {tc} vs {fc}"
            );
            let (td, fd) = (
                timer.report().downstream_hold_slack(id),
                fresh.downstream_hold_slack(id),
            );
            assert!((td.is_infinite() && fd.is_infinite()) || (td - fd).abs() < 1e-4);
        }
    }

    #[test]
    fn clock_moves_track_full_analyze() {
        let d = generate(&DesignSpec::new("incclk", 500, TechNode::N7, 17));
        let graph = TimingGraph::new(&d.netlist);
        let cons = Constraints::with_period(d.period_ps);
        let mut clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 0.12 * d.period_ps, 5);
        let margins = EndpointMargins::zero(&d.netlist);
        let mut timer = IncrementalTimer::new(&d.netlist, &cons, &clocks, &margins);
        let n_regs = d.netlist.flops().len();
        for step in 0..20 {
            let r = (step * 7) % n_regs;
            let delta = if step % 2 == 0 { 9.5 } else { -6.25 };
            let t = clocks.arrival(r) + delta;
            clocks.adjust(r, delta);
            timer.set_clock_arrival(&d.netlist, r, t);
        }
        let fresh = analyze(&d.netlist, &graph, &cons, &clocks, &margins);
        assert_parity(&timer, &fresh, "after clock moves");
        assert_eq!(timer.stats().full_passes, 1, "edits must stay incremental");
        assert_eq!(timer.stats().edits, 20);
    }

    #[test]
    fn margin_edits_track_full_analyze() {
        let d = generate(&DesignSpec::new("incmar", 400, TechNode::N7, 23));
        let graph = TimingGraph::new(&d.netlist);
        let cons = Constraints::with_period(d.period_ps);
        let clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 0.12 * d.period_ps, 5);
        let mut margins = EndpointMargins::zero(&d.netlist);
        let mut timer = IncrementalTimer::new(&d.netlist, &cons, &clocks, &margins);
        let n_eps = d.netlist.endpoints().len();
        for step in 0..15 {
            let ei = (step * 11) % n_eps;
            let m = (step % 4) as f32 * 7.5;
            margins.set(ei, m);
            timer.set_margin(&d.netlist, ei, m);
        }
        let fresh = analyze(&d.netlist, &graph, &cons, &clocks, &margins);
        assert_parity(&timer, &fresh, "after margin edits");
    }

    #[test]
    fn bulk_sync_only_retimes_changes() {
        let d = generate(&DesignSpec::new("incbulk", 300, TechNode::N7, 31));
        let cons = Constraints::with_period(d.period_ps);
        let mut clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 0.12 * d.period_ps, 5);
        let margins = EndpointMargins::zero(&d.netlist);
        let mut timer = IncrementalTimer::new(&d.netlist, &cons, &clocks, &margins);
        // Syncing an identical schedule re-times nothing.
        let before = timer.stats().cells_retimed;
        timer.set_clocks_from(&d.netlist, &clocks);
        assert_eq!(timer.stats().cells_retimed, before);
        // One changed register re-times only its cone.
        clocks.adjust(0, 5.0);
        timer.set_clocks_from(&d.netlist, &clocks);
        let retimed = timer.stats().cells_retimed - before;
        assert!(
            (retimed as usize) < d.netlist.cell_count() / 2,
            "cone re-time touched {retimed} of {} cells",
            d.netlist.cell_count()
        );
        let fresh = analyze(
            &d.netlist,
            &TimingGraph::new(&d.netlist),
            &cons,
            &clocks,
            &margins,
        );
        assert_parity(&timer, &fresh, "after bulk sync");
    }

    #[test]
    fn full_recompute_escape_hatch_recovers_structure_changes() {
        let mut d = generate(&DesignSpec::new("incesc", 300, TechNode::N7, 37));
        let cons = Constraints::with_period(d.period_ps);
        let clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 0.12 * d.period_ps, 5);
        let margins = EndpointMargins::zero(&d.netlist);
        let mut timer = IncrementalTimer::new(&d.netlist, &cons, &clocks, &margins);
        // Structural change: insert a buffer on some multi-sink net.
        let buf_lib = d
            .netlist
            .library()
            .variant(GateKind::Buf, rl_ccd_netlist::Drive::X2);
        let target = d
            .netlist
            .cell_ids()
            .find(|&c| {
                d.netlist
                    .cell(c)
                    .output
                    .is_some_and(|n| d.netlist.net(n).sinks.len() >= 2)
            })
            .expect("some net has fanout");
        let net = d.netlist.cell(target).output.expect("has output");
        let moved = vec![d.netlist.net(net).sinks[0]];
        let loc = d.netlist.cell(target).loc;
        d.netlist.insert_buffer(net, &moved, buf_lib, loc);
        timer.full_recompute(&d.netlist);
        let fresh = analyze(
            &d.netlist,
            &TimingGraph::new(&d.netlist),
            &cons,
            &clocks,
            &margins,
        );
        assert_parity(&timer, &fresh, "after buffer insertion + full_recompute");
    }
}
