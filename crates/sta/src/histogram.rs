//! Slack histograms and QoR comparisons — the summaries timing engineers
//! actually look at when judging an optimization step.

use crate::analysis::TimingReport;
use std::fmt;

/// A fixed-width histogram over endpoint setup slacks.
#[derive(Clone, Debug, PartialEq)]
pub struct SlackHistogram {
    edges: Vec<f32>,
    counts: Vec<usize>,
    below: usize,
    above: usize,
}

impl SlackHistogram {
    /// Buckets `report`'s endpoint slacks into `buckets` bins covering
    /// `[lo, hi)` ps; out-of-range endpoints land in the under/overflow
    /// counters.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `lo >= hi`.
    pub fn new(report: &TimingReport, lo: f32, hi: f32, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(lo < hi, "empty slack range");
        let width = (hi - lo) / buckets as f32;
        let edges = (0..=buckets).map(|i| lo + i as f32 * width).collect();
        let mut counts = vec![0usize; buckets];
        let mut below = 0;
        let mut above = 0;
        for &s in report.endpoint_slacks() {
            if s < lo {
                below += 1;
            } else if s >= hi {
                above += 1;
            } else {
                counts[((s - lo) / width) as usize] += 1;
            }
        }
        Self {
            edges,
            counts,
            below,
            above,
        }
    }

    /// Bucket edges (length = buckets + 1).
    pub fn edges(&self) -> &[f32] {
        &self.edges
    }

    /// Per-bucket endpoint counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Endpoints below the histogram range.
    pub fn underflow(&self) -> usize {
        self.below
    }

    /// Endpoints at or above the histogram range.
    pub fn overflow(&self) -> usize {
        self.above
    }

    /// Total endpoints covered (in-range + out-of-range).
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.below + self.above
    }
}

impl fmt::Display for SlackHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        if self.below > 0 {
            writeln!(
                f,
                "{:>20} {:>6}",
                format!("< {:.0}", self.edges[0]),
                self.below
            )?;
        }
        for i in 0..self.counts.len() {
            let bar = "#".repeat(self.counts[i] * 40 / max);
            writeln!(
                f,
                "[{:>8.0}, {:>8.0}) {:>6} {}",
                self.edges[i],
                self.edges[i + 1],
                self.counts[i],
                bar
            )?;
        }
        if self.above > 0 {
            writeln!(
                f,
                "{:>20} {:>6}",
                format!(">= {:.0}", self.edges[self.edges.len() - 1]),
                self.above
            )?;
        }
        Ok(())
    }
}

/// Per-endpoint QoR movement between two analyses of the same design.
#[derive(Clone, Debug, PartialEq)]
pub struct QorDelta {
    /// Endpoints whose slack improved by more than the tolerance.
    pub improved: usize,
    /// Endpoints whose slack regressed by more than the tolerance.
    pub regressed: usize,
    /// Endpoints that stayed within the tolerance.
    pub unchanged: usize,
    /// TNS change, ps (positive = better).
    pub tns_delta_ps: f64,
    /// NVE change (negative = better).
    pub nve_delta: isize,
}

/// Compares two reports endpoint-by-endpoint with a `tolerance_ps` dead-band.
///
/// # Panics
/// Panics if the endpoint counts differ (the reports must describe the same
/// design).
pub fn qor_delta(before: &TimingReport, after: &TimingReport, tolerance_ps: f32) -> QorDelta {
    assert_eq!(
        before.endpoint_slacks().len(),
        after.endpoint_slacks().len(),
        "reports cover different designs"
    );
    let mut improved = 0;
    let mut regressed = 0;
    let mut unchanged = 0;
    for (b, a) in before.endpoint_slacks().iter().zip(after.endpoint_slacks()) {
        let d = a - b;
        if d > tolerance_ps {
            improved += 1;
        } else if d < -tolerance_ps {
            regressed += 1;
        } else {
            unchanged += 1;
        }
    }
    QorDelta {
        improved,
        regressed,
        unchanged,
        tns_delta_ps: after.tns() - before.tns(),
        nve_delta: after.nve() as isize - before.nve() as isize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, TimingGraph};
    use crate::clock::ClockSchedule;
    use crate::constraints::{Constraints, EndpointMargins};
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn reports() -> (TimingReport, TimingReport, usize) {
        let d = generate(&DesignSpec::new("h", 500, TechNode::N7, 41));
        let graph = TimingGraph::new(&d.netlist);
        let cons = Constraints::with_period(d.period_ps);
        let margins = EndpointMargins::zero(&d.netlist);
        let mut clocks = ClockSchedule::balanced(&d.netlist, 60.0, 3.0, 300.0, 2);
        let before = analyze(&d.netlist, &graph, &cons, &clocks, &margins);
        clocks.adjust(0, 25.0);
        let after = analyze(&d.netlist, &graph, &cons, &clocks, &margins);
        (before, after, d.netlist.endpoints().len())
    }

    #[test]
    fn histogram_conserves_endpoints() {
        let (rep, _, n) = reports();
        let h = SlackHistogram::new(&rep, -500.0, 500.0, 10);
        assert_eq!(h.total(), n);
        assert_eq!(h.edges().len(), 11);
        assert_eq!(h.counts().len(), 10);
        let text = h.to_string();
        assert!(text.contains('['));
        // Extreme range captures everything in-range.
        let wide = SlackHistogram::new(&rep, -1e9, 1e9, 4);
        assert_eq!(wide.underflow() + wide.overflow(), 0);
        assert_eq!(wide.total(), n);
    }

    #[test]
    fn delta_counts_add_up() {
        let (before, after, n) = reports();
        let d = qor_delta(&before, &after, 0.5);
        assert_eq!(d.improved + d.regressed + d.unchanged, n);
        // Delaying a capture clock improves at least its own endpoint.
        assert!(d.improved >= 1);
        assert_eq!(d.tns_delta_ps, after.tns() - before.tns());
    }

    #[test]
    #[should_panic(expected = "empty slack range")]
    fn bad_range_panics() {
        let (rep, _, _) = reports();
        let _ = SlackHistogram::new(&rep, 10.0, 10.0, 4);
    }
}
