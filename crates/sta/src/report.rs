//! Human-readable timing reports and worst-path tracing.

use crate::analysis::TimingReport;
use crate::clock::ClockSchedule;
use rl_ccd_netlist::{CellId, Netlist};
use std::fmt::Write as _;

/// One hop of a traced timing path, endpoint-first.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathHop {
    /// The cell at this hop.
    pub cell: CellId,
    /// Arrival time at the cell's output (or at the endpoint pin for the
    /// first hop), ps.
    pub arrival: f32,
}

/// Traces the worst (latest-arrival) path into endpoint `endpoint_index`,
/// returned startpoint-first. The trace follows, at each cell, the input
/// pin whose driver has the latest output arrival — a close proxy for the
/// true worst path under the linear delay model.
pub fn worst_path(netlist: &Netlist, report: &TimingReport, endpoint_index: usize) -> Vec<PathHop> {
    let mut hops = Vec::new();
    let ep = netlist.endpoints()[endpoint_index];
    let mut cell = ep.cell();
    hops.push(PathHop {
        cell,
        arrival: report.endpoint_arrival(endpoint_index),
    });
    loop {
        let inputs = &netlist.cell(cell).inputs;
        if inputs.is_empty() {
            break;
        }
        // Worst driver by output arrival.
        let drv = inputs
            .iter()
            .map(|&n| netlist.net(n).driver)
            .max_by(|a, b| report.out_arrival(*a).total_cmp(&report.out_arrival(*b)))
            .expect("non-empty inputs");
        hops.push(PathHop {
            cell: drv,
            arrival: report.out_arrival(drv),
        });
        if !netlist.kind(drv).is_combinational() {
            break; // reached a startpoint
        }
        cell = drv;
    }
    hops.reverse();
    hops
}

/// Formats a QoR summary line (times converted to ns, as in Table II).
pub fn qor_line(report: &TimingReport) -> String {
    format!(
        "WNS {:+.3} ns | TNS {:+.2} ns | NVE {}",
        report.wns() / 1000.0,
        report.tns() / 1000.0,
        report.nve()
    )
}

/// Formats a detailed report: QoR summary, the K worst endpoints with their
/// traced paths, and the clock-skew spread.
pub fn full_report(
    netlist: &Netlist,
    report: &TimingReport,
    clocks: &ClockSchedule,
    worst_k: usize,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "design {}: {}", netlist.name(), qor_line(report));
    let viol = report.violating_endpoints();
    let _ = writeln!(
        s,
        "{} violating endpoints; showing worst {}",
        viol.len(),
        worst_k.min(viol.len())
    );
    for &ei in viol.iter().take(worst_k) {
        let path = worst_path(netlist, report, ei);
        let _ = writeln!(
            s,
            "  endpoint e{}  slack {:+.1} ps  path ({} hops):",
            ei,
            report.endpoint_slack(ei),
            path.len()
        );
        for hop in &path {
            let _ = writeln!(
                s,
                "    {:>8}  {}  arr {:>8.1} ps",
                hop.cell.to_string(),
                netlist.kind(hop.cell),
                hop.arrival
            );
        }
    }
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for r in 0..clocks.len() {
        lo = lo.min(clocks.skew(r));
        hi = hi.max(clocks.skew(r));
    }
    if !clocks.is_empty() {
        let _ = writeln!(
            s,
            "clock skews: [{lo:+.1}, {hi:+.1}] ps over {} regs",
            clocks.len()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, TimingGraph};
    use crate::constraints::{Constraints, EndpointMargins};
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    #[test]
    fn worst_path_starts_at_a_startpoint() {
        let d = generate(&DesignSpec::new("r", 500, TechNode::N7, 4));
        let graph = TimingGraph::new(&d.netlist);
        let clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 40.0, 5);
        let rep = analyze(
            &d.netlist,
            &graph,
            &Constraints::with_period(d.period_ps),
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        let viol = rep.violating_endpoints();
        assert!(!viol.is_empty(), "calibrated design must violate");
        let path = worst_path(&d.netlist, &rep, viol[0]);
        assert!(path.len() >= 2);
        // First hop is a startpoint (not combinational).
        assert!(!d.netlist.kind(path[0].cell).is_combinational());
        // Arrivals are non-decreasing along the path.
        for w in path.windows(2) {
            assert!(w[1].arrival >= w[0].arrival - 1e-3);
        }
    }

    #[test]
    fn report_text_mentions_qor() {
        let d = generate(&DesignSpec::new("r", 400, TechNode::N12, 4));
        let graph = TimingGraph::new(&d.netlist);
        let clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 40.0, 5);
        let rep = analyze(
            &d.netlist,
            &graph,
            &Constraints::with_period(d.period_ps),
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        let text = full_report(&d.netlist, &rep, &clocks, 3);
        assert!(text.contains("WNS"));
        assert!(text.contains("violating endpoints"));
        assert!(qor_line(&rep).contains("TNS"));
    }
}
