//! Static timing analysis engine for the RL-CCD reproduction.
//!
//! Implements a slew-aware linear-delay STA over the
//! [`rl_ccd_netlist`] substrate: forward max/min arrival and slew
//! propagation, backward required-time propagation, per-register clock
//! arrival scheduling (the useful-skew knob), endpoint margins (the RL-CCD
//! prioritization knob), and the WNS/TNS/NVE metrics of the paper's
//! Table II.
//!
//! # Quick start
//! ```
//! use rl_ccd_netlist::{generate, DesignSpec, TechNode};
//! use rl_ccd_sta::{analyze, ClockSchedule, Constraints, EndpointMargins, TimingGraph};
//!
//! let design = generate(&DesignSpec::new("demo", 400, TechNode::N7, 1));
//! let graph = TimingGraph::new(&design.netlist);
//! let clocks = ClockSchedule::balanced(&design.netlist, 80.0, 4.0, 40.0, 1);
//! let report = analyze(
//!     &design.netlist,
//!     &graph,
//!     &Constraints::with_period(design.period_ps),
//!     &clocks,
//!     &EndpointMargins::zero(&design.netlist),
//! );
//! println!("TNS = {:.2} ps over {} violations", report.tns(), report.nve());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod clock;
pub mod constraints;
pub mod delay;
pub mod histogram;
pub mod incremental;
pub mod paths;
pub mod report;

pub use analysis::{analyze, TimingGraph, TimingReport};
pub use clock::ClockSchedule;
pub use constraints::{Constraints, EndpointMargins};
pub use delay::{cell_delay, edge_timing, output_slew, EdgeTiming};
pub use histogram::{qor_delta, QorDelta, SlackHistogram};
pub use incremental::{IncrementalTimer, TimerStats};
pub use paths::{worst_paths, TimingPath};
pub use report::{full_report, qor_line, worst_path, PathHop};
