//! The daemon proper: a multi-tenant front-end wrapped around the serve
//! core, plus the admin port that drives hot reload and promotion.
//!
//! Two listeners, two protocols:
//!
//! * the **tenant port** speaks `rl-ccd-serve v1` — every query must
//!   carry [`Credentials`](rl_ccd_serve::Credentials); the
//!   [`TenantBook`] authenticates and
//!   throttles it, canary routing may rewrite the champion slot to the
//!   challenger, and only then does the request enter the serving queue;
//! * the **admin port** speaks `rl-ccd-admin v1` — checkpoint loads,
//!   gate runs, promote/rollback, tenant CRUD, drain.
//!
//! Promotion is zero-downtime by construction: `load` verifies and warms
//! the challenger off the request path, `promote` is one atomic registry
//! swap, and in-flight batches finish on the model version they resolved.

use crate::admin::{AdminReply, AdminRequest, DaemonStatus};
use crate::clock::Clock;
use crate::promotion::{escape_json, Promoter, CHALLENGER, CHAMPION};
use crate::tenant::{constant_time_eq, Admission, TenantBook, TenantConfig, TenantSummary};
use rl_ccd::gate::GateSpec;
use rl_ccd_serve::protocol::{read_frame, write_frame};
use rl_ccd_serve::{
    DrainReport, ModelRegistry, ModelVersion, RejectKind, Request, Response, ServeConfig,
    ServeHandle, Server,
};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon tuning: the serving core's knobs plus tenancy and promotion.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Serving-core configuration (batching, queue, workers, caches).
    pub serve: ServeConfig,
    /// Cone-overlap threshold applied to admin-loaded checkpoints when
    /// the `load` command does not override it.
    pub rho: f32,
    /// The held-out eval gate promotion is scored with.
    pub gate: GateSpec,
    /// Admin-port auth token; `None` trusts the (loopback) peer.
    pub admin_token: Option<String>,
    /// Where promote/rollback/canary audit records are appended (JSONL).
    pub audit_path: Option<PathBuf>,
    /// Where per-tenant usage is flushed (JSONL) — at shutdown, and
    /// periodically when [`DaemonConfig::usage_flush_ms`] is non-zero.
    pub usage_path: Option<PathBuf>,
    /// Flush per-tenant usage every this many clock milliseconds (0
    /// disables periodic flushing; shutdown always flushes). A crashed
    /// daemon then loses at most one window of usage accounting.
    pub usage_flush_ms: u64,
    /// Where sampled-query experience records are appended
    /// (`rl-ccd-exp v1` JSONL). When set, the daemon installs an
    /// [`rl_ccd_exp::ExpSink`] on the serving core and drains it at
    /// shutdown — the logging half of the closed learning loop.
    pub experience_path: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            rho: 0.3,
            gate: GateSpec::quick(0xCCD),
            admin_token: None,
            audit_path: None,
            usage_path: None,
            usage_flush_ms: 0,
            experience_path: None,
        }
    }
}

/// Final accounting returned by [`Daemon::shutdown`].
#[derive(Clone, Debug)]
pub struct DaemonReport {
    /// The serving core's drain report (`dropped()` must be 0).
    pub drain: DrainReport,
    /// Every tenant's final usage counters.
    pub tenants: Vec<TenantSummary>,
    /// The experience sink's accounting, when experience logging was on.
    pub experience: Option<rl_ccd_exp::SinkReport>,
}

struct DaemonShared {
    handle: ServeHandle,
    tenants: TenantBook,
    promoter: Promoter,
    rho: f32,
    admin_token: Option<String>,
    /// The daemon is shutting down (set by [`Daemon::shutdown`]).
    draining: AtomicBool,
    /// An admin asked for a drain (the daemon's owner polls this).
    drain_requested: AtomicBool,
    recorder: Option<rl_ccd_obs::Recorder>,
    write_timeout: Duration,
}

impl std::fmt::Debug for DaemonShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonShared")
            .field("tenants", &self.tenants.len())
            .field("draining", &self.draining.load(Ordering::SeqCst))
            .finish()
    }
}

#[derive(Debug)]
struct Front {
    addr: SocketAddr,
    accept_thread: JoinHandle<()>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// A running multi-tenant daemon.
#[derive(Debug)]
pub struct Daemon {
    server: Server,
    shared: Arc<DaemonShared>,
    usage_path: Option<PathBuf>,
    experience: Option<Arc<rl_ccd_exp::ExpSink>>,
    usage_flusher: Option<JoinHandle<()>>,
    query_front: Option<Front>,
    admin_front: Option<Front>,
}

impl Daemon {
    /// Starts the daemon over `registry` (typically with the champion
    /// slot already loaded). `clock` drives rate limits and quotas —
    /// [`crate::SystemClock`] in production, [`crate::ManualClock`] in
    /// tests.
    ///
    /// # Panics
    /// When [`DaemonConfig::experience_path`] is set but the log file
    /// cannot be opened — a daemon asked to log experience must not come
    /// up silently lossy.
    pub fn start(registry: ModelRegistry, config: DaemonConfig, clock: Arc<dyn Clock>) -> Self {
        let write_timeout = config.serve.write_timeout;
        let mut serve_config = config.serve.clone();
        let experience = config
            .experience_path
            .as_ref()
            .map(|path| rl_ccd_exp::ExpSink::create(path).expect("open experience log"));
        if let Some(sink) = &experience {
            serve_config.experience = Some(sink.clone() as Arc<dyn rl_ccd_serve::ExperienceHook>);
        }
        let server = Server::start(registry, serve_config);
        let shared = Arc::new(DaemonShared {
            handle: server.handle(),
            tenants: TenantBook::new(clock.clone()),
            promoter: Promoter::new(config.gate, clock.clone(), config.audit_path),
            rho: config.rho,
            admin_token: config.admin_token,
            draining: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            recorder: rl_ccd_obs::current(),
            write_timeout,
        });
        let usage_flusher = match (&config.usage_path, config.usage_flush_ms) {
            (Some(path), interval_ms) if interval_ms > 0 => Some(spawn_usage_flusher(
                shared.clone(),
                path.clone(),
                clock,
                interval_ms,
            )),
            _ => None,
        };
        Self {
            server,
            shared,
            usage_path: config.usage_path,
            experience,
            usage_flusher,
            query_front: None,
            admin_front: None,
        }
    }

    /// The tenant table (admin port and CLI mutate it through here).
    pub fn tenants(&self) -> &TenantBook {
        &self.shared.tenants
    }

    /// The promotion state machine.
    pub fn promoter(&self) -> &Promoter {
        &self.shared.promoter
    }

    /// The live model registry (shared with the serving core).
    pub fn registry(&self) -> &ModelRegistry {
        self.server.registry()
    }

    /// An in-process serving handle that bypasses tenancy — for the
    /// owning process only; network tenants always pass the book.
    pub fn handle(&self) -> ServeHandle {
        self.server.handle()
    }

    /// Whether an admin `drain` command has been received; the owner
    /// polls this and then calls [`Daemon::shutdown`].
    pub fn drain_requested(&self) -> bool {
        self.shared.drain_requested.load(Ordering::SeqCst)
    }

    /// Binds the tenant query port. Returns the bound address.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind_query(&mut self, addr: &str) -> std::io::Result<SocketAddr> {
        let front = bind_front(addr, self.shared.clone(), "daemon-query", query_conn)?;
        let local = front.addr;
        self.query_front = Some(front);
        Ok(local)
    }

    /// Binds the admin control port. Returns the bound address.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind_admin(&mut self, addr: &str) -> std::io::Result<SocketAddr> {
        let front = bind_front(addr, self.shared.clone(), "daemon-admin", admin_conn)?;
        let local = front.addr;
        self.admin_front = Some(front);
        Ok(local)
    }

    /// The bound tenant-port address, if [`Daemon::bind_query`] ran.
    pub fn query_addr(&self) -> Option<SocketAddr> {
        self.query_front.as_ref().map(|f| f.addr)
    }

    /// The bound admin-port address, if [`Daemon::bind_admin`] ran.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_front.as_ref().map(|f| f.addr)
    }

    /// Graceful shutdown: stop accepting, join every connection, flush
    /// per-tenant usage to the configured JSONL file, drain the serving
    /// core and the experience sink, and report the final accounting.
    pub fn shutdown(self) -> DaemonReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        for front in [self.query_front, self.admin_front].into_iter().flatten() {
            // Unblock the accept loop with one throwaway connection.
            let _ = TcpStream::connect(front.addr);
            let _ = front.accept_thread.join();
            let conns = std::mem::take(&mut *front.conns.lock().expect("conn list lock"));
            for conn in conns {
                let _ = conn.join();
            }
        }
        if let Some(flusher) = self.usage_flusher {
            let _ = flusher.join();
        }
        let tenants = self.shared.tenants.summaries();
        if let Some(path) = &self.usage_path {
            let _ = write_usage_jsonl(path, &tenants);
        }
        let drain = self.server.shutdown();
        // The serving core is drained, so every sampled query's event has
        // been enqueued; finish() drains the sink's backlog in turn.
        let experience = self.experience.and_then(|sink| sink.finish());
        DaemonReport {
            drain,
            tenants,
            experience,
        }
    }
}

/// Flushes per-tenant usage counters as versioned JSONL. The write is
/// atomic (temp file + rename) so a crash mid-flush can only lose the
/// window being written, never corrupt the previous snapshot.
fn write_usage_jsonl(path: &PathBuf, tenants: &[TenantSummary]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        for t in tenants {
            writeln!(
                f,
                "{{\"v\":\"rl-ccd-usage v1\",\"tenant\":\"{}\",\"accepted\":{},\"denied\":{},\"throttled\":{},\"used_in_window\":{},\"monthly_quota\":{}}}",
                escape_json(&t.id),
                t.usage.accepted,
                t.usage.denied,
                t.usage.throttled,
                t.usage.used_in_window,
                t.monthly_quota
            )?;
        }
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Spawns the periodic usage flusher: every `interval_ms` *clock*
/// milliseconds it snapshots tenant usage to `path`. The thread polls
/// the injected clock with short real sleeps, so tests drive it with a
/// [`crate::ManualClock`] and production gets wall-clock cadence.
fn spawn_usage_flusher(
    shared: Arc<DaemonShared>,
    path: PathBuf,
    clock: Arc<dyn Clock>,
    interval_ms: u64,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("daemon-usage-flush".into())
        .spawn(move || {
            let _obs = shared.recorder.as_ref().map(rl_ccd_obs::attach);
            let mut last_flush = clock.now_ms();
            while !shared.draining.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(10));
                let now = clock.now_ms();
                if now.saturating_sub(last_flush) >= interval_ms {
                    last_flush = now;
                    if write_usage_jsonl(&path, &shared.tenants.summaries()).is_ok() {
                        rl_ccd_obs::counter!("daemon.usage.flushed", 1);
                    }
                }
            }
        })
        .expect("spawn usage flusher")
}

/// Spawns an accept loop whose connections run `conn_fn`.
fn bind_front(
    addr: &str,
    shared: Arc<DaemonShared>,
    name: &'static str,
    conn_fn: fn(&DaemonShared, TcpStream),
) -> std::io::Result<Front> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let conns_in_accept = conns.clone();
    let accept_thread = std::thread::Builder::new()
        .name(format!("{name}-accept"))
        .spawn(move || {
            let _obs = shared.recorder.as_ref().map(rl_ccd_obs::attach);
            for stream in listener.incoming() {
                if shared.draining.load(Ordering::SeqCst) {
                    break; // the shutdown wake-up connection lands here
                }
                let Ok(stream) = stream else { continue };
                let shared = shared.clone();
                let conn = std::thread::Builder::new()
                    .name(format!("{name}-conn"))
                    .spawn(move || conn_fn(&shared, stream))
                    .expect("spawn daemon connection");
                conns_in_accept.lock().expect("conn list lock").push(conn);
            }
        })
        .expect("spawn daemon accept loop");
    Ok(Front {
        addr: local,
        accept_thread,
        conns,
    })
}

/// Prepares one connection's socket: short read timeout so idle
/// connections re-check the drain flag, bounded write stall.
fn framed_pair(stream: TcpStream, write_timeout: Duration) -> Option<(TcpStream, TcpStream)> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(write_timeout));
    let reader = stream.try_clone().ok()?;
    Some((reader, stream))
}

/// One tenant connection: authenticated, throttled, canaried queries.
fn query_conn(shared: &DaemonShared, stream: TcpStream) {
    let _obs = shared.recorder.as_ref().map(rl_ccd_obs::attach);
    let Some((mut reader, mut writer)) = framed_pair(stream, shared.write_timeout) else {
        return;
    };
    loop {
        match read_frame(&mut reader) {
            Ok(payload) => {
                let response = answer_query_frame(shared, &payload);
                if write_frame(&mut writer, &response.encode()).is_err() {
                    return;
                }
                let _ = writer.flush();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return, // EOF or fatal stream error
        }
    }
}

/// Decodes, admits, canaries, and executes one tenant-port frame.
fn answer_query_frame(shared: &DaemonShared, payload: &[u8]) -> Response {
    let request = match Request::decode(payload) {
        Ok(request) => request,
        Err(msg) => return Response::reject(RejectKind::BadRequest, msg),
    };
    match request {
        Request::Health => Response::Health(shared.handle.health()),
        Request::Shutdown => Response::reject(
            RejectKind::Denied,
            "admin operations are not available on the tenant port",
        ),
        Request::Query(mut q) => {
            let Some(creds) = q.auth.take() else {
                return Response::reject(RejectKind::Denied, "credentials required");
            };
            match shared.tenants.admit(&creds) {
                Admission::Denied(msg) => {
                    tenant_counter("daemon.tenant.denied", &creds.tenant);
                    Response::reject(RejectKind::Denied, msg)
                }
                Admission::Throttled { retry_after_ms } => {
                    tenant_counter("daemon.tenant.throttled", &creds.tenant);
                    Response::QuotaExceeded { retry_after_ms }
                }
                Admission::Granted => {
                    // Canary: a tenant-stable fraction of champion traffic
                    // is answered by the challenger, when one is staged.
                    if q.model == CHAMPION
                        && shared.promoter.routes_to_challenger(&creds.tenant)
                        && shared.handle.registry().get(CHALLENGER).is_some()
                    {
                        q.model = CHALLENGER.to_string();
                    }
                    let started = Instant::now();
                    let response = shared.handle.query(q);
                    tenant_counter("daemon.tenant.accepted", &creds.tenant);
                    rl_ccd_obs::with_recorder(|r| {
                        r.metrics()
                            .labeled_histogram("daemon.tenant.latency_ms", &creds.tenant)
                            .observe(started.elapsed().as_secs_f64() * 1e3);
                    });
                    response
                }
            }
        }
    }
}

fn tenant_counter(name: &'static str, tenant: &str) {
    rl_ccd_obs::with_recorder(|r| {
        r.metrics().labeled_counter(name, tenant).add(1);
    });
}

/// One admin connection: framed `rl-ccd-admin v1` commands.
fn admin_conn(shared: &DaemonShared, stream: TcpStream) {
    let _obs = shared.recorder.as_ref().map(rl_ccd_obs::attach);
    let Some((mut reader, mut writer)) = framed_pair(stream, shared.write_timeout) else {
        return;
    };
    loop {
        match read_frame(&mut reader) {
            Ok(payload) => {
                let reply = answer_admin_frame(shared, &payload);
                if write_frame(&mut writer, &reply.encode()).is_err() {
                    return;
                }
                let _ = writer.flush();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn slot_identity(registry: &ModelRegistry, slot: &str) -> Option<ModelVersion> {
    registry.get(slot).map(|m| ModelVersion {
        name: m.name.clone(),
        version: m.version,
        fingerprint: m.fingerprint,
    })
}

/// Decodes, authenticates, and executes one admin-port frame.
fn answer_admin_frame(shared: &DaemonShared, payload: &[u8]) -> AdminReply {
    let (request, token) = match AdminRequest::decode(payload) {
        Ok(decoded) => decoded,
        Err(msg) => return AdminReply::Err { msg },
    };
    if let Some(expected) = &shared.admin_token {
        let provided = token.unwrap_or_default();
        if !constant_time_eq(provided.as_bytes(), expected.as_bytes()) {
            return AdminReply::Err {
                msg: "unauthorized".into(),
            };
        }
    }
    let registry = shared.handle.registry();
    match request {
        AdminRequest::Status => {
            let health = shared.handle.health();
            AdminReply::Status(DaemonStatus {
                ready: health.ready && !shared.draining.load(Ordering::SeqCst),
                queue_depth: health.queue_depth,
                champion: slot_identity(registry, CHAMPION),
                challenger: slot_identity(registry, CHALLENGER),
                canary: shared.promoter.canary_fraction(),
                tenants: shared.tenants.len(),
            })
        }
        AdminRequest::Load { slot, dir, rho } => {
            if slot != CHAMPION && slot != CHALLENGER {
                return AdminReply::Err {
                    msg: format!("slot must be {CHAMPION:?} or {CHALLENGER:?}, got {slot:?}"),
                };
            }
            let rho = if rho.is_finite() && rho > 0.0 {
                rho
            } else {
                shared.rho
            };
            // Verify + assemble on this thread, off the request path;
            // install is the atomic pointer swap.
            match ModelRegistry::prepare(&slot, &dir, rho) {
                Ok(entry) => {
                    let identity = ModelVersion {
                        name: entry.name.clone(),
                        version: entry.version,
                        fingerprint: entry.fingerprint,
                    };
                    registry.install(entry);
                    shared
                        .promoter
                        .note("load", format!("{slot} <- {dir}: {identity}"));
                    AdminReply::Ok {
                        info: format!("loaded {identity}"),
                    }
                }
                Err(e) => AdminReply::Err {
                    msg: format!("load {dir}: {e}"),
                },
            }
        }
        AdminRequest::Gate => match shared.promoter.run_gate(registry) {
            Ok(verdict) => AdminReply::Ok {
                info: verdict.summary(),
            },
            Err(msg) => AdminReply::Err { msg },
        },
        AdminRequest::Promote { force } => match shared.promoter.promote(registry, force) {
            Ok((verdict, identity)) => AdminReply::Ok {
                info: format!(
                    "promoted {identity}; gate: {}",
                    verdict.map_or("skipped (no champion)".to_string(), |v| v.summary())
                ),
            },
            Err(msg) => AdminReply::Err { msg },
        },
        AdminRequest::Rollback => match shared.promoter.rollback(registry) {
            Ok(identity) => AdminReply::Ok {
                info: format!("rolled back to {identity}"),
            },
            Err(msg) => AdminReply::Err { msg },
        },
        AdminRequest::Canary { fraction } => match shared.promoter.set_canary(fraction) {
            Ok(()) => AdminReply::Ok {
                info: format!("canary fraction {fraction}"),
            },
            Err(msg) => AdminReply::Err { msg },
        },
        AdminRequest::TenantAdd { spec } => match spec.parse::<TenantConfig>() {
            Ok(config) => {
                let id = config.id.clone();
                let replaced = shared.tenants.add(config);
                AdminReply::Ok {
                    info: format!(
                        "{} tenant {id}",
                        if replaced { "replaced" } else { "added" }
                    ),
                }
            }
            Err(msg) => AdminReply::Err { msg },
        },
        AdminRequest::TenantDel { id } => {
            if shared.tenants.remove(&id) {
                AdminReply::Ok {
                    info: format!("removed tenant {id}"),
                }
            } else {
                AdminReply::Err {
                    msg: format!("no tenant {id:?}"),
                }
            }
        }
        AdminRequest::TenantList => AdminReply::Tenants(shared.tenants.summaries()),
        AdminRequest::Retrain {
            base,
            log,
            out,
            seed,
            steps,
        } => {
            let cfg = rl_ccd_exp::RetrainConfig {
                seed,
                steps,
                ..rl_ccd_exp::RetrainConfig::default()
            };
            // Retraining happens on this admin thread, off the request
            // path; tenants keep being served by the installed models.
            match rl_ccd_exp::retrain(&base, &log, &out, &cfg) {
                Ok(report) => match ModelRegistry::prepare(CHALLENGER, &out, shared.rho) {
                    Ok(entry) => {
                        let identity = ModelVersion {
                            name: entry.name.clone(),
                            version: entry.version,
                            fingerprint: entry.fingerprint,
                        };
                        registry.install(entry);
                        shared.promoter.note(
                            "retrain",
                            format!(
                                "challenger <- {out}: {identity} ({} records, {} offline steps)",
                                report.records_loaded, report.steps_taken
                            ),
                        );
                        AdminReply::Ok {
                            info: format!(
                                "retrained and staged {identity}: {} records, {} offline steps, mean importance weight {:.3}",
                                report.records_loaded,
                                report.steps_taken,
                                report.mean_importance_weight
                            ),
                        }
                    }
                    Err(e) => AdminReply::Err {
                        msg: format!("retrained but could not stage {out}: {e}"),
                    },
                },
                Err(e) => AdminReply::Err {
                    msg: format!("retrain: {e}"),
                },
            }
        }
        AdminRequest::Drain => {
            shared.drain_requested.store(true, Ordering::SeqCst);
            AdminReply::Ok {
                info: "draining".into(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::AdminClient;
    use crate::clock::ManualClock;
    use rl_ccd::{RlCcd, RlConfig};
    use rl_ccd_serve::protocol::{Credentials, DesignKey, Mode, QueryRequest};
    use rl_ccd_serve::ServeClient;

    fn registry() -> ModelRegistry {
        let (_, params) = RlCcd::init(RlConfig::fast());
        let reg = ModelRegistry::new();
        reg.insert_params(CHAMPION, params, 0.3).expect("insert");
        reg
    }

    fn query(auth: Option<Credentials>) -> QueryRequest {
        QueryRequest {
            model: CHAMPION.into(),
            design: DesignKey {
                name: "dmn".into(),
                cells: 360,
                tech: "7nm".into(),
                seed: 5,
            },
            mode: Mode::Greedy,
            deadline_ms: Some(30_000),
            auth,
        }
    }

    fn creds(tenant: &str, token: &str) -> Option<Credentials> {
        Some(Credentials {
            tenant: tenant.into(),
            token: token.into(),
        })
    }

    fn started_daemon(clock: &ManualClock) -> Daemon {
        let mut daemon =
            Daemon::start(registry(), DaemonConfig::default(), Arc::new(clock.clone()));
        daemon
            .tenants()
            .add("acme:s3cret:1000:1000:1000000".parse().unwrap());
        daemon.bind_query("127.0.0.1:0").expect("bind query");
        daemon.bind_admin("127.0.0.1:0").expect("bind admin");
        daemon
    }

    #[test]
    fn tenant_port_requires_valid_credentials() {
        let clock = ManualClock::at(0);
        let daemon = started_daemon(&clock);
        let addr = daemon.query_addr().unwrap();
        let mut client = ServeClient::connect(addr).expect("connect");
        // No credentials.
        let r = client.query(query(None)).unwrap();
        assert!(
            matches!(&r, Response::Err { kind: RejectKind::Denied, msg } if msg.contains("credentials")),
            "{r:?}"
        );
        // Bad token.
        let r = client.query(query(creds("acme", "wrong"))).unwrap();
        assert!(matches!(
            r,
            Response::Err {
                kind: RejectKind::Denied,
                ..
            }
        ));
        // Valid credentials reach the model.
        let r = client.query(query(creds("acme", "s3cret"))).unwrap();
        let Response::Ok(reply) = r else {
            panic!("expected selection, got {r:?}")
        };
        assert_eq!(reply.model, CHAMPION);
        assert!(!reply.selection.is_empty());
        let report = daemon.shutdown();
        assert_eq!(report.drain.dropped(), 0);
        let acme = &report.tenants[0];
        assert_eq!(acme.usage.accepted, 1);
        assert_eq!(acme.usage.denied, 1);
    }

    #[test]
    fn throttled_tenant_gets_quota_exceeded_with_the_refill_hint() {
        let clock = ManualClock::at(0);
        let mut daemon =
            Daemon::start(registry(), DaemonConfig::default(), Arc::new(clock.clone()));
        // 1 req/s, burst 1: the second immediate request throttles.
        daemon.tenants().add("slow:tok:1:1:100".parse().unwrap());
        let addr = daemon.bind_query("127.0.0.1:0").expect("bind");
        let mut client = ServeClient::connect(addr).expect("connect");
        assert!(matches!(
            client.query(query(creds("slow", "tok"))).unwrap(),
            Response::Ok(_)
        ));
        let r = client.query(query(creds("slow", "tok"))).unwrap();
        let Response::QuotaExceeded { retry_after_ms } = r else {
            panic!("expected QuotaExceeded, got {r:?}")
        };
        assert_eq!(retry_after_ms, 1_000, "one token at 1/s is a second away");
        assert_eq!(daemon.shutdown().drain.dropped(), 0);
    }

    #[test]
    fn admin_port_drives_status_tenants_and_drain() {
        let clock = ManualClock::at(0);
        let daemon = started_daemon(&clock);
        let admin = AdminClient::new(daemon.admin_addr().unwrap(), None);
        let AdminReply::Status(status) = admin.call(&AdminRequest::Status).unwrap() else {
            panic!("expected status")
        };
        assert!(status.ready);
        assert_eq!(status.tenants, 1);
        assert_eq!(status.champion.as_ref().unwrap().name, CHAMPION);
        assert!(status.challenger.is_none());
        assert_eq!(status.canary, 0.0);
        // Tenant CRUD over the wire.
        let r = admin
            .call(&AdminRequest::TenantAdd {
                spec: "globex:tok2:5:5:10".into(),
            })
            .unwrap();
        assert!(matches!(r, AdminReply::Ok { .. }), "{r:?}");
        let AdminReply::Tenants(list) = admin.call(&AdminRequest::TenantList).unwrap() else {
            panic!("expected tenants")
        };
        assert_eq!(list.len(), 2);
        assert_eq!(list[1].id, "globex");
        let r = admin
            .call(&AdminRequest::TenantDel {
                id: "globex".into(),
            })
            .unwrap();
        assert!(matches!(r, AdminReply::Ok { .. }));
        let r = admin
            .call(&AdminRequest::TenantDel {
                id: "globex".into(),
            })
            .unwrap();
        assert!(matches!(r, AdminReply::Err { .. }), "double delete errors");
        // Drain request is surfaced to the owner, not executed inline.
        assert!(!daemon.drain_requested());
        let r = admin.call(&AdminRequest::Drain).unwrap();
        assert!(matches!(r, AdminReply::Ok { .. }));
        assert!(daemon.drain_requested());
        assert_eq!(daemon.shutdown().drain.dropped(), 0);
    }

    #[test]
    fn admin_token_gates_every_command() {
        let clock = ManualClock::at(0);
        let mut daemon = Daemon::start(
            registry(),
            DaemonConfig {
                admin_token: Some("hunter2".into()),
                ..DaemonConfig::default()
            },
            Arc::new(clock.clone()),
        );
        let addr = daemon.bind_admin("127.0.0.1:0").expect("bind admin");
        let anonymous = AdminClient::new(addr, None);
        let r = anonymous.call(&AdminRequest::Status).unwrap();
        assert!(
            matches!(&r, AdminReply::Err { msg } if msg == "unauthorized"),
            "{r:?}"
        );
        let wrong = AdminClient::new(addr, Some("guess".into()));
        assert!(matches!(
            wrong.call(&AdminRequest::Status).unwrap(),
            AdminReply::Err { .. }
        ));
        let authed = AdminClient::new(addr, Some("hunter2".into()));
        assert!(matches!(
            authed.call(&AdminRequest::Status).unwrap(),
            AdminReply::Status(_)
        ));
        assert_eq!(daemon.shutdown().drain.dropped(), 0);
    }

    #[test]
    fn usage_flushes_periodically_on_the_injected_clock() {
        let dir = std::env::temp_dir().join("rl_ccd_daemon_usage_periodic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("usage.jsonl");
        std::fs::remove_file(&path).ok();
        let clock = ManualClock::at(0);
        let mut daemon = Daemon::start(
            registry(),
            DaemonConfig {
                usage_path: Some(path.clone()),
                usage_flush_ms: 1_000,
                ..DaemonConfig::default()
            },
            Arc::new(clock.clone()),
        );
        daemon.tenants().add("acme:tok:10:10:100".parse().unwrap());
        let addr = daemon.bind_query("127.0.0.1:0").expect("bind");
        let mut client = ServeClient::connect(addr).expect("connect");
        assert!(matches!(
            client.query(query(creds("acme", "tok"))).unwrap(),
            Response::Ok(_)
        ));
        assert!(!path.exists(), "no window elapsed, nothing flushed yet");
        // One window elapses on the manual clock; the flusher (which
        // polls with short real sleeps) must snapshot without a shutdown.
        clock.advance(1_001);
        let mut flushed = String::new();
        for _ in 0..500 {
            std::thread::sleep(Duration::from_millis(10));
            if let Ok(text) = std::fs::read_to_string(&path) {
                if !text.is_empty() {
                    flushed = text;
                    break;
                }
            }
        }
        assert!(
            flushed.contains("\"tenant\":\"acme\"") && flushed.contains("\"accepted\":1"),
            "periodic flush missing or wrong: {flushed:?}"
        );
        daemon.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn experience_logging_feeds_retrain_which_stages_the_challenger() {
        use rl_ccd::{save_training_state, TrainingState};
        let dir = std::env::temp_dir().join("rl_ccd_daemon_closed_loop");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let base_dir = dir.join("base");
        let out_dir = dir.join("retrained");
        let exp_path = dir.join("exp.jsonl");
        let config = RlConfig::fast();
        let (_, params) = RlCcd::init(config.clone());
        let state = TrainingState {
            next_iteration: 0,
            seed_base: config.seed,
            best_reward: -1.0e9,
            best_mean: -1.0e9,
            stale: 0,
            best_selection: vec![],
            params,
            adam: rl_ccd_nn::Adam::new(config.learning_rate),
            history: vec![],
            faults: vec![],
        };
        save_training_state(&state, &base_dir).expect("save base");
        let serve_one = |exp_on: bool| {
            let reg = ModelRegistry::new();
            reg.load(CHAMPION, &base_dir, 0.3).expect("load champion");
            let mut daemon = Daemon::start(
                reg,
                DaemonConfig {
                    experience_path: exp_on.then(|| exp_path.clone()),
                    ..DaemonConfig::default()
                },
                Arc::new(ManualClock::at(0)),
            );
            daemon
                .tenants()
                .add("acme:tok:100:100:1000".parse().unwrap());
            let addr = daemon.bind_query("127.0.0.1:0").expect("bind");
            let mut client = ServeClient::connect(addr).expect("connect");
            for seed in 0..4u64 {
                let mut q = query(creds("acme", "tok"));
                q.mode = Mode::Sample(seed);
                assert!(matches!(client.query(q).unwrap(), Response::Ok(_)));
            }
            daemon
        };
        // Phase 1: serve sampled traffic with logging on; the drain
        // report accounts for every record.
        let report = serve_one(true).shutdown();
        let sink = report.experience.expect("sink report");
        assert!(sink.written >= 1, "{sink:?}");
        assert_eq!(sink.dropped, 0);
        assert_eq!(sink.failed, 0);
        // Phase 2: a fresh daemon retrains from the captured log over the
        // admin port; the result lands in the challenger slot only.
        let reg = ModelRegistry::new();
        reg.load(CHAMPION, &base_dir, 0.3).expect("load champion");
        let mut daemon = Daemon::start(reg, DaemonConfig::default(), Arc::new(ManualClock::at(0)));
        daemon.bind_admin("127.0.0.1:0").expect("bind admin");
        let admin = AdminClient::new(daemon.admin_addr().unwrap(), None);
        let reply = admin
            .call(&AdminRequest::Retrain {
                base: base_dir.display().to_string(),
                log: exp_path.display().to_string(),
                out: out_dir.display().to_string(),
                seed: 0xE1,
                steps: 2,
            })
            .unwrap();
        let AdminReply::Ok { info } = reply else {
            panic!("retrain failed: {reply:?}")
        };
        assert!(info.contains("staged"), "{info}");
        let AdminReply::Status(status) = admin.call(&AdminRequest::Status).unwrap() else {
            panic!("expected status")
        };
        assert_eq!(status.champion.as_ref().unwrap().version, 0);
        let challenger = status.challenger.expect("challenger staged");
        assert_eq!(challenger.version, 2, "version bumps by the step count");
        // Phase 3: promotion is the only path to tenants.
        let reply = admin.call(&AdminRequest::Promote { force: true }).unwrap();
        assert!(matches!(reply, AdminReply::Ok { .. }), "{reply:?}");
        let AdminReply::Status(status) = admin.call(&AdminRequest::Status).unwrap() else {
            panic!("expected status")
        };
        assert_eq!(status.champion.as_ref().unwrap().version, 2);
        assert_eq!(daemon.shutdown().drain.dropped(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_flushes_usage_jsonl() {
        let dir = std::env::temp_dir().join("rl_ccd_daemon_usage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("usage.jsonl");
        std::fs::remove_file(&path).ok();
        let clock = ManualClock::at(0);
        let mut daemon = Daemon::start(
            registry(),
            DaemonConfig {
                usage_path: Some(path.clone()),
                ..DaemonConfig::default()
            },
            Arc::new(clock.clone()),
        );
        daemon.tenants().add("acme:tok:10:10:100".parse().unwrap());
        let addr = daemon.bind_query("127.0.0.1:0").expect("bind");
        let mut client = ServeClient::connect(addr).expect("connect");
        assert!(matches!(
            client.query(query(creds("acme", "tok"))).unwrap(),
            Response::Ok(_)
        ));
        daemon.shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"v\":\"rl-ccd-usage v1\""), "{text}");
        assert!(text.contains("\"tenant\":\"acme\""), "{text}");
        assert!(text.contains("\"accepted\":1"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
