//! rl-ccd-daemon: the multi-tenant serving daemon.
//!
//! Wraps the [`rl_ccd_serve`] inference core in production concerns:
//!
//! * [`tenant`] — per-tenant auth tokens (constant-time comparison),
//!   token-bucket rate limits, and 30-day quotas on an injectable
//!   [`Clock`], with per-tenant usage counters and labeled obs metrics;
//! * [`promotion`] — the champion/challenger state machine: staged
//!   checkpoint loads through the manifest gate, tenant-stable canary
//!   routing, the seeded held-out eval gate ([`rl_ccd::gate`]), atomic
//!   zero-downtime promotion, one-level rollback, and a versioned JSONL
//!   audit trail;
//! * [`admin`] — the framed `rl-ccd-admin v1` control protocol and its
//!   TCP client;
//! * [`Daemon`] — the process itself: a tenant query port speaking the
//!   serve protocol (credentials required) and an admin port, over one
//!   shared hot-swappable model registry.
//!
//! ```no_run
//! use rl_ccd_daemon::{Daemon, DaemonConfig, SystemClock};
//! use rl_ccd_serve::ModelRegistry;
//! use std::sync::Arc;
//!
//! let registry = ModelRegistry::new();
//! registry.load("champion", "ckpt/", 0.3)?;
//! let mut daemon = Daemon::start(registry, DaemonConfig::default(), Arc::new(SystemClock));
//! daemon.tenants().add("acme:s3cret:10:20:100000".parse().unwrap());
//! let query_addr = daemon.bind_query("127.0.0.1:7791")?;
//! let admin_addr = daemon.bind_admin("127.0.0.1:7792")?;
//! println!("serving tenants on {query_addr}, admin on {admin_addr}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admin;
pub mod clock;
pub mod daemon;
pub mod promotion;
pub mod tenant;

pub use admin::{AdminClient, AdminReply, AdminRequest, DaemonStatus, ADMIN_PROTOCOL_VERSION};
pub use clock::{Clock, ManualClock, SystemClock};
pub use daemon::{Daemon, DaemonConfig, DaemonReport};
pub use promotion::{in_canary, AuditRecord, Promoter, CHALLENGER, CHAMPION};
pub use tenant::{
    constant_time_eq, Admission, TenantBook, TenantConfig, TenantSummary, TenantUsage,
    QUOTA_WINDOW_MS,
};
