//! Champion/challenger promotion: canary routing, the eval gate, and a
//! versioned audit trail.
//!
//! The daemon serves production traffic from the `"champion"` registry
//! slot. A new checkpoint is loaded into `"challenger"`, optionally
//! canaried to a tenant-stable fraction of traffic, scored against the
//! champion on the held-out eval gate, and — only if the gate passes (or
//! an operator forces it) — promoted: the challenger's weights are
//! installed under the champion name in one atomic registry swap, with
//! the previous champion retained for instant rollback. Every promote,
//! rollback, and canary change appends a versioned JSONL audit record.

use crate::clock::Clock;
use rl_ccd::gate::{run_eval_gate, GateSpec, GateVerdict};
use rl_ccd_serve::{ModelRegistry, ModelVersion, ServeModel};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// Registry slot production traffic is answered from.
pub const CHAMPION: &str = "champion";
/// Registry slot a candidate checkpoint is staged in.
pub const CHALLENGER: &str = "challenger";

/// Basis points in a whole: canary fractions are stored as `0..=10_000`.
const CANARY_SCALE: u32 = 10_000;

/// Whether `tenant` falls inside a canary fraction of `bp` basis points.
///
/// The decision hashes only the tenant id, so it is *stable*: a tenant is
/// either in the canary or out of it for as long as the fraction holds,
/// rather than flapping between model versions per request. 0 routes
/// nobody, 10 000 routes everybody.
pub fn in_canary(tenant: &str, bp: u32) -> bool {
    (rl_ccd::fnv1a64(tenant.as_bytes()) % CANARY_SCALE as u64) < bp as u64
}

/// One audit-trail entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotone sequence number (1-based).
    pub seq: u64,
    /// Epoch milliseconds the action happened at.
    pub at_ms: u64,
    /// What happened: `load`, `promote`, `rollback`, `canary`.
    pub action: String,
    /// Human-readable detail (gate verdict, versions, fractions).
    pub detail: String,
}

impl AuditRecord {
    /// The versioned JSONL form, one line.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"v\":\"rl-ccd-audit v1\",\"seq\":{},\"at_ms\":{},\"action\":\"{}\",\"detail\":\"{}\"}}",
            self.seq,
            self.at_ms,
            escape_json(&self.action),
            escape_json(&self.detail)
        )
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Default)]
struct AuditLog {
    seq: u64,
    records: Vec<AuditRecord>,
    path: Option<PathBuf>,
}

impl AuditLog {
    fn append(&mut self, at_ms: u64, action: &str, detail: String) {
        self.seq += 1;
        let record = AuditRecord {
            seq: self.seq,
            at_ms,
            action: action.to_string(),
            detail,
        };
        if let Some(path) = &self.path {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{}", record.to_jsonl());
            }
        }
        self.records.push(record);
    }
}

/// The promotion state machine. All methods take `&self`; internal state
/// is locked, so the admin port and tests can drive it concurrently with
/// traffic.
#[derive(Debug)]
pub struct Promoter {
    gate: GateSpec,
    clock: Arc<dyn Clock>,
    canary_bp: AtomicU32,
    /// The champion evicted by the last promote, kept for rollback.
    previous: Mutex<Option<Arc<ServeModel>>>,
    audit: Mutex<AuditLog>,
}

impl Promoter {
    /// A promoter gating with `gate`, optionally appending audit records
    /// to the JSONL file at `audit_path`.
    pub fn new(gate: GateSpec, clock: Arc<dyn Clock>, audit_path: Option<PathBuf>) -> Self {
        Self {
            gate,
            clock,
            canary_bp: AtomicU32::new(0),
            previous: Mutex::new(None),
            audit: Mutex::new(AuditLog {
                path: audit_path,
                ..AuditLog::default()
            }),
        }
    }

    /// Current canary fraction in `0.0..=1.0`.
    pub fn canary_fraction(&self) -> f64 {
        f64::from(self.canary_bp.load(Ordering::SeqCst)) / f64::from(CANARY_SCALE)
    }

    /// Sets the canary fraction (audited).
    ///
    /// # Errors
    /// When `fraction` is not a finite value in `0.0..=1.0`.
    pub fn set_canary(&self, fraction: f64) -> Result<(), String> {
        if !(fraction.is_finite() && (0.0..=1.0).contains(&fraction)) {
            return Err(format!("canary fraction {fraction} is not in 0.0..=1.0"));
        }
        let bp = (fraction * f64::from(CANARY_SCALE)).round() as u32;
        self.canary_bp.store(bp, Ordering::SeqCst);
        self.note("canary", format!("fraction={fraction} bp={bp}"));
        Ok(())
    }

    /// Whether `tenant`'s champion-slot traffic should be answered by the
    /// challenger under the current canary fraction.
    pub fn routes_to_challenger(&self, tenant: &str) -> bool {
        let bp = self.canary_bp.load(Ordering::SeqCst);
        bp > 0 && in_canary(tenant, bp)
    }

    /// Runs the eval gate: challenger scored against champion on the
    /// held-out designs. Does not mutate anything — `promote` calls this
    /// itself, but admins can ask for a dry run.
    ///
    /// # Errors
    /// When either slot is empty.
    pub fn run_gate(&self, registry: &ModelRegistry) -> Result<GateVerdict, String> {
        let champion = registry
            .get(CHAMPION)
            .ok_or_else(|| format!("no {CHAMPION:?} in the registry"))?;
        let challenger = registry
            .get(CHALLENGER)
            .ok_or_else(|| format!("no {CHALLENGER:?} loaded"))?;
        Ok(run_eval_gate(
            (&champion.model, &champion.params),
            (&challenger.model, &challenger.params),
            &self.gate,
        ))
    }

    /// Promotes the challenger: runs the gate (unless `force`), then
    /// atomically installs the challenger's weights under the champion
    /// name. In-flight batches finish on the old champion; the evicted
    /// entry is retained for [`Promoter::rollback`]. Returns the gate
    /// verdict (`None` when forced past a missing champion) and the new
    /// champion's identity.
    ///
    /// # Errors
    /// No challenger loaded, or the gate failed and `force` was not set.
    pub fn promote(
        &self,
        registry: &ModelRegistry,
        force: bool,
    ) -> Result<(Option<GateVerdict>, ModelVersion), String> {
        let challenger = registry
            .get(CHALLENGER)
            .ok_or_else(|| format!("no {CHALLENGER:?} loaded"))?;
        let verdict = match registry.get(CHAMPION) {
            Some(champion) => Some(run_eval_gate(
                (&champion.model, &champion.params),
                (&challenger.model, &challenger.params),
                &self.gate,
            )),
            None if force => None,
            None => return Err(format!("no {CHAMPION:?} to gate against (use force)")),
        };
        if let Some(v) = &verdict {
            if !v.passed && !force {
                self.note("promote", format!("refused: {}", v.summary()));
                return Err(format!("gate failed: {}", v.summary()));
            }
        }
        // Same weights, champion name: the registry swap is atomic, and
        // the identical fingerprint keeps the selection cache (keyed on
        // it) serving bit-identical answers for bit-identical weights.
        let promoted = Arc::new(ServeModel {
            name: CHAMPION.to_string(),
            version: challenger.version,
            fingerprint: challenger.fingerprint,
            model: challenger.model.clone(),
            params: challenger.params.clone(),
        });
        let identity = ModelVersion {
            name: promoted.name.clone(),
            version: promoted.version,
            fingerprint: promoted.fingerprint,
        };
        let evicted = registry.install(promoted);
        *self.previous.lock().expect("previous lock") = evicted;
        let gate_note = verdict
            .as_ref()
            .map_or("no champion (forced)".to_string(), GateVerdict::summary);
        self.note(
            "promote",
            format!("now {identity}; gate: {gate_note}; force={force}"),
        );
        Ok((verdict, identity))
    }

    /// Reinstalls the champion evicted by the last promote (audited).
    ///
    /// # Errors
    /// When there is nothing to roll back to.
    pub fn rollback(&self, registry: &ModelRegistry) -> Result<ModelVersion, String> {
        let previous = self
            .previous
            .lock()
            .expect("previous lock")
            .take()
            .ok_or("nothing to roll back to")?;
        let identity = ModelVersion {
            name: previous.name.clone(),
            version: previous.version,
            fingerprint: previous.fingerprint,
        };
        registry.install(previous);
        self.note("rollback", format!("restored {identity}"));
        Ok(identity)
    }

    /// Appends a free-form audit record (the daemon notes loads here).
    pub fn note(&self, action: &str, detail: String) {
        let at_ms = self.clock.now_ms();
        self.audit
            .lock()
            .expect("audit lock")
            .append(at_ms, action, detail);
    }

    /// The in-memory audit trail, oldest first.
    pub fn audit_records(&self) -> Vec<AuditRecord> {
        self.audit.lock().expect("audit lock").records.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use rl_ccd::{RlCcd, RlConfig};

    fn promoter() -> Promoter {
        Promoter::new(GateSpec::quick(3), Arc::new(ManualClock::at(1_000)), None)
    }

    fn registry_with(slots: &[&str]) -> ModelRegistry {
        let (_, params) = RlCcd::init(RlConfig::fast());
        let reg = ModelRegistry::new();
        for slot in slots {
            reg.insert_params(*slot, params.clone(), 0.3)
                .expect("insert");
        }
        reg
    }

    #[test]
    fn canary_boundaries_route_nobody_and_everybody() {
        for tenant in ["acme", "globex", "initech", "t0", "t1", "t2"] {
            assert!(!in_canary(tenant, 0), "{tenant} routed at fraction 0.0");
            assert!(
                in_canary(tenant, 10_000),
                "{tenant} skipped at fraction 1.0"
            );
        }
        // Stability: the same tenant hashes the same way every time.
        assert_eq!(in_canary("acme", 5_000), in_canary("acme", 5_000));
    }

    #[test]
    fn canary_fraction_is_validated_and_audited() {
        let p = promoter();
        assert!(p.set_canary(1.5).is_err());
        assert!(p.set_canary(-0.1).is_err());
        assert!(p.set_canary(f64::NAN).is_err());
        p.set_canary(0.0).unwrap();
        assert!(!p.routes_to_challenger("anyone"));
        p.set_canary(1.0).unwrap();
        assert!(p.routes_to_challenger("anyone"));
        assert_eq!(p.canary_fraction(), 1.0);
        let audit = p.audit_records();
        assert_eq!(audit.len(), 2);
        assert_eq!(audit[1].action, "canary");
        assert_eq!(audit[1].seq, 2);
    }

    #[test]
    fn promote_swaps_weights_and_rollback_restores_them() {
        let p = promoter();
        let reg = registry_with(&[CHAMPION, CHALLENGER]);
        let old_champion = reg.get(CHAMPION).unwrap();
        let (verdict, identity) = p.promote(&reg, false).expect("identical weights pass");
        assert!(verdict.expect("gated").passed);
        assert_eq!(identity.name, CHAMPION);
        let now = reg.get(CHAMPION).unwrap();
        assert!(!Arc::ptr_eq(&now, &old_champion), "entry was swapped");
        assert_eq!(now.fingerprint, old_champion.fingerprint, "same weights");
        let restored = p.rollback(&reg).expect("previous champion retained");
        assert_eq!(restored.fingerprint, old_champion.fingerprint);
        assert!(Arc::ptr_eq(&reg.get(CHAMPION).unwrap(), &old_champion));
        assert!(p.rollback(&reg).is_err(), "rollback is one level deep");
        let records = p.audit_records();
        let actions: Vec<&str> = records.iter().map(|r| r.action.as_str()).collect();
        assert_eq!(actions, ["promote", "rollback"]);
    }

    #[test]
    fn promote_without_a_challenger_or_champion_is_typed() {
        let p = promoter();
        let empty = ModelRegistry::new();
        assert!(p.promote(&empty, false).unwrap_err().contains("challenger"));
        let only_challenger = registry_with(&[CHALLENGER]);
        assert!(p
            .promote(&only_challenger, false)
            .unwrap_err()
            .contains("force"));
        let (verdict, identity) = p.promote(&only_challenger, true).expect("forced");
        assert!(verdict.is_none(), "nothing to gate against");
        assert_eq!(identity.name, CHAMPION);
        assert!(only_challenger.get(CHAMPION).is_some());
    }

    #[test]
    fn audit_records_serialize_as_versioned_jsonl() {
        let record = AuditRecord {
            seq: 7,
            at_ms: 42,
            action: "promote".into(),
            detail: "said \"ok\"\nnewline".into(),
        };
        let line = record.to_jsonl();
        assert!(line.starts_with("{\"v\":\"rl-ccd-audit v1\""), "{line}");
        assert!(line.contains("\\\"ok\\\""), "{line}");
        assert!(line.contains("\\n"), "{line}");
        assert!(!line.contains('\n'), "one line per record");
    }

    #[test]
    fn audit_log_appends_to_the_jsonl_file() {
        let dir = std::env::temp_dir().join("rl_ccd_daemon_audit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audit.jsonl");
        std::fs::remove_file(&path).ok();
        let p = Promoter::new(
            GateSpec::quick(3),
            Arc::new(ManualClock::at(9)),
            Some(path.clone()),
        );
        p.set_canary(0.25).unwrap();
        p.note("load", "challenger staged".into());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"action\":\"canary\""));
        assert!(lines[1].contains("\"seq\":2"));
        assert!(lines[1].contains("\"at_ms\":9"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
