//! The admin control protocol: `rl-ccd-admin v1` framed text over TCP.
//!
//! Same envelope discipline as the serve protocol — 4-byte BE length
//! frames ([`rl_ccd_wire`]), line 1 the version token, line 2 a head with
//! `key=value` fields, unknown keys ignored for forward compatibility.
//! The admin port is separate from the tenant port: operators load
//! checkpoints, run the gate, promote/roll back, manage tenants, and
//! drain — none of which a tenant credential can reach.

use crate::tenant::{TenantSummary, TenantUsage};
use rl_ccd_serve::ModelVersion;
use rl_ccd_wire::{read_frame, write_frame};
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Version token on the first line of every admin payload.
pub const ADMIN_PROTOCOL_VERSION: &str = "rl-ccd-admin v1";

/// One admin command.
#[derive(Clone, Debug, PartialEq)]
pub enum AdminRequest {
    /// Point-in-time daemon status.
    Status,
    /// Verify + warm the checkpoint in `dir` into a registry slot
    /// (`champion` or `challenger`), off the request path.
    Load {
        /// Target slot name.
        slot: String,
        /// Checkpoint directory (no whitespace).
        dir: String,
        /// Cone-overlap threshold the checkpoint does not store.
        rho: f32,
    },
    /// Run the eval gate without promoting (a dry run).
    Gate,
    /// Gate (unless forced) and atomically promote the challenger.
    Promote {
        /// Promote even if the gate fails or there is no champion.
        force: bool,
    },
    /// Restore the champion evicted by the last promote.
    Rollback,
    /// Set the tenant-stable canary fraction.
    Canary {
        /// Fraction of tenants routed to the challenger, `0.0..=1.0`.
        fraction: f64,
    },
    /// Add or replace a tenant from its `id:token:rate:burst:quota` spec.
    TenantAdd {
        /// The spec string.
        spec: String,
    },
    /// Remove a tenant.
    TenantDel {
        /// Tenant id.
        id: String,
    },
    /// List tenants and their usage (tokens never travel back).
    TenantList,
    /// Retrain offline from an experience log and stage the result in the
    /// challenger slot: the closed learning loop's admin hook. The
    /// retrained checkpoint reaches tenants only through `gate`/`promote`.
    Retrain {
        /// Base checkpoint directory (the policy the log was served by).
        base: String,
        /// `rl-ccd-exp v1` experience log path (no whitespace).
        log: String,
        /// Output checkpoint directory for the retrained state.
        out: String,
        /// Seed for the deterministic replay order.
        seed: u64,
        /// Offline update steps.
        steps: usize,
    },
    /// Ask the daemon to drain and exit.
    Drain,
}

impl AdminRequest {
    /// Serializes with an optional admin token on the head line.
    pub fn encode(&self, token: Option<&str>) -> Vec<u8> {
        let mut head = match self {
            AdminRequest::Status => "status".to_string(),
            AdminRequest::Load { slot, dir, rho } => {
                format!("load slot={slot} dir={dir} rho={rho}")
            }
            AdminRequest::Gate => "gate".to_string(),
            AdminRequest::Promote { force } => format!("promote force={}", u8::from(*force)),
            AdminRequest::Rollback => "rollback".to_string(),
            AdminRequest::Canary { fraction } => format!("canary fraction={fraction}"),
            AdminRequest::TenantAdd { spec } => format!("tenant_add spec={spec}"),
            AdminRequest::TenantDel { id } => format!("tenant_del id={id}"),
            AdminRequest::TenantList => "tenant_list".to_string(),
            AdminRequest::Retrain {
                base,
                log,
                out,
                seed,
                steps,
            } => format!("retrain base={base} log={log} out={out} seed={seed} steps={steps}"),
            AdminRequest::Drain => "drain".to_string(),
        };
        if let Some(token) = token {
            let _ = write!(head, " token={token}");
        }
        format!("{ADMIN_PROTOCOL_VERSION}\n{head}\n").into_bytes()
    }

    /// Parses a payload into the command and the token it carried.
    ///
    /// # Errors
    /// A human-readable description of the first violation.
    pub fn decode(payload: &[u8]) -> Result<(Self, Option<String>), String> {
        let (head, _rest) = rl_ccd_wire::split_versioned(payload, ADMIN_PROTOCOL_VERSION)?;
        let (verb, fields) = head.split_once(' ').unwrap_or((head, ""));
        let mut token = None;
        let mut slot = None;
        let mut dir = None;
        let mut rho = None;
        let mut force = None;
        let mut fraction = None;
        let mut spec = None;
        let mut id = None;
        let mut base = None;
        let mut log = None;
        let mut out = None;
        let mut seed = None;
        let mut steps = None;
        for field in fields.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))?;
            match key {
                "token" => token = Some(value.to_string()),
                "slot" => slot = Some(value.to_string()),
                "dir" => dir = Some(value.to_string()),
                "rho" => {
                    rho = Some(value.parse().map_err(|_| format!("bad rho {value:?}"))?);
                }
                "force" => force = Some(value == "1"),
                "fraction" => {
                    fraction = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad fraction {value:?}"))?,
                    );
                }
                "spec" => spec = Some(value.to_string()),
                "id" => id = Some(value.to_string()),
                "base" => base = Some(value.to_string()),
                "log" => log = Some(value.to_string()),
                "out" => out = Some(value.to_string()),
                "seed" => {
                    seed = Some(value.parse().map_err(|_| format!("bad seed {value:?}"))?);
                }
                "steps" => {
                    steps = Some(value.parse().map_err(|_| format!("bad steps {value:?}"))?);
                }
                _ => {} // forward compatibility
            }
        }
        let request = match verb {
            "status" => AdminRequest::Status,
            "load" => AdminRequest::Load {
                slot: slot.ok_or("load missing slot=")?,
                dir: dir.ok_or("load missing dir=")?,
                rho: rho.ok_or("load missing rho=")?,
            },
            "gate" => AdminRequest::Gate,
            "promote" => AdminRequest::Promote {
                force: force.unwrap_or(false),
            },
            "rollback" => AdminRequest::Rollback,
            "canary" => AdminRequest::Canary {
                fraction: fraction.ok_or("canary missing fraction=")?,
            },
            "tenant_add" => AdminRequest::TenantAdd {
                spec: spec.ok_or("tenant_add missing spec=")?,
            },
            "tenant_del" => AdminRequest::TenantDel {
                id: id.ok_or("tenant_del missing id=")?,
            },
            "tenant_list" => AdminRequest::TenantList,
            "retrain" => {
                let defaults = rl_ccd_exp::RetrainConfig::default();
                AdminRequest::Retrain {
                    base: base.ok_or("retrain missing base=")?,
                    log: log.ok_or("retrain missing log=")?,
                    out: out.ok_or("retrain missing out=")?,
                    seed: seed.unwrap_or(defaults.seed),
                    steps: steps.unwrap_or(defaults.steps),
                }
            }
            "drain" => AdminRequest::Drain,
            other => return Err(format!("unknown admin request {other:?}")),
        };
        Ok((request, token))
    }
}

/// A point-in-time view of the daemon, answered to `status`.
#[derive(Clone, Debug, PartialEq)]
pub struct DaemonStatus {
    /// Whether the daemon is accepting tenant queries.
    pub ready: bool,
    /// Requests queued in the serving scheduler.
    pub queue_depth: usize,
    /// The champion slot's identity, if loaded.
    pub champion: Option<ModelVersion>,
    /// The challenger slot's identity, if loaded.
    pub challenger: Option<ModelVersion>,
    /// Canary fraction in `0.0..=1.0`.
    pub canary: f64,
    /// Registered tenants.
    pub tenants: usize,
}

/// A decoded admin answer.
#[derive(Clone, Debug, PartialEq)]
pub enum AdminReply {
    /// The command succeeded; `info` is a one-line human summary.
    Ok {
        /// What happened.
        info: String,
    },
    /// Status snapshot.
    Status(DaemonStatus),
    /// Tenant listing.
    Tenants(Vec<TenantSummary>),
    /// The command failed.
    Err {
        /// Why.
        msg: String,
    },
}

fn slot_field(v: &Option<ModelVersion>) -> String {
    v.as_ref().map_or("-".to_string(), ModelVersion::to_string)
}

fn parse_slot(value: &str) -> Result<Option<ModelVersion>, String> {
    if value == "-" {
        Ok(None)
    } else {
        value.parse().map(Some)
    }
}

impl AdminReply {
    /// Serializes to an admin payload.
    pub fn encode(&self) -> Vec<u8> {
        let body = match self {
            AdminReply::Ok { info } => format!("ok info={}", info.replace(['\n', '\r'], " ")),
            AdminReply::Status(s) => format!(
                "status ready={} queue={} champion={} challenger={} canary={} tenants={}",
                u8::from(s.ready),
                s.queue_depth,
                slot_field(&s.champion),
                slot_field(&s.challenger),
                s.canary,
                s.tenants
            ),
            AdminReply::Tenants(list) => {
                let mut body = format!("tenants count={}", list.len());
                for t in list {
                    let _ = write!(
                        body,
                        "\ntenant id={} rate={} burst={} quota={} used={} accepted={} denied={} throttled={}",
                        t.id,
                        t.rate_per_sec,
                        t.burst,
                        t.monthly_quota,
                        t.usage.used_in_window,
                        t.usage.accepted,
                        t.usage.denied,
                        t.usage.throttled
                    );
                }
                body
            }
            AdminReply::Err { msg } => format!("err msg={}", msg.replace(['\n', '\r'], " ")),
        };
        format!("{ADMIN_PROTOCOL_VERSION}\n{body}\n").into_bytes()
    }

    /// Parses an admin payload.
    ///
    /// # Errors
    /// A human-readable description of the first violation.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let (head, rest) = rl_ccd_wire::split_versioned(payload, ADMIN_PROTOCOL_VERSION)?;
        if let Some(info) = head.strip_prefix("ok") {
            let info = info
                .trim_start()
                .strip_prefix("info=")
                .unwrap_or("")
                .to_string();
            return Ok(AdminReply::Ok { info });
        }
        if let Some(msg) = head.strip_prefix("err") {
            let msg = msg
                .trim_start()
                .strip_prefix("msg=")
                .unwrap_or("")
                .to_string();
            return Ok(AdminReply::Err { msg });
        }
        if let Some(fields) = head.strip_prefix("status ") {
            let mut ready = None;
            let mut queue = None;
            let mut champion = None;
            let mut challenger = None;
            let mut canary = None;
            let mut tenants = None;
            for field in fields.split_whitespace() {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("field {field:?} is not key=value"))?;
                match key {
                    "ready" => ready = Some(value == "1"),
                    "queue" => {
                        queue = Some(value.parse().map_err(|_| format!("bad queue {value:?}"))?);
                    }
                    "champion" => champion = Some(parse_slot(value)?),
                    "challenger" => challenger = Some(parse_slot(value)?),
                    "canary" => {
                        canary = Some(value.parse().map_err(|_| format!("bad canary {value:?}"))?);
                    }
                    "tenants" => {
                        tenants = Some(
                            value
                                .parse()
                                .map_err(|_| format!("bad tenants {value:?}"))?,
                        );
                    }
                    _ => {}
                }
            }
            return Ok(AdminReply::Status(DaemonStatus {
                ready: ready.ok_or("status missing ready=")?,
                queue_depth: queue.ok_or("status missing queue=")?,
                champion: champion.ok_or("status missing champion=")?,
                challenger: challenger.ok_or("status missing challenger=")?,
                canary: canary.ok_or("status missing canary=")?,
                tenants: tenants.ok_or("status missing tenants=")?,
            }));
        }
        if head.starts_with("tenants") {
            let mut list = Vec::new();
            for line in rest.lines().filter(|l| !l.is_empty()) {
                let fields = line
                    .strip_prefix("tenant ")
                    .ok_or_else(|| format!("bad tenant line {line:?}"))?;
                let mut summary = TenantSummary {
                    id: String::new(),
                    rate_per_sec: 0.0,
                    burst: 0.0,
                    monthly_quota: 0,
                    usage: TenantUsage::default(),
                };
                for field in fields.split_whitespace() {
                    let (key, value) = field
                        .split_once('=')
                        .ok_or_else(|| format!("field {field:?} is not key=value"))?;
                    let bad = |k: &str| format!("bad {k} {value:?}");
                    match key {
                        "id" => summary.id = value.to_string(),
                        "rate" => summary.rate_per_sec = value.parse().map_err(|_| bad(key))?,
                        "burst" => summary.burst = value.parse().map_err(|_| bad(key))?,
                        "quota" => summary.monthly_quota = value.parse().map_err(|_| bad(key))?,
                        "used" => {
                            summary.usage.used_in_window = value.parse().map_err(|_| bad(key))?;
                        }
                        "accepted" => {
                            summary.usage.accepted = value.parse().map_err(|_| bad(key))?;
                        }
                        "denied" => summary.usage.denied = value.parse().map_err(|_| bad(key))?,
                        "throttled" => {
                            summary.usage.throttled = value.parse().map_err(|_| bad(key))?;
                        }
                        _ => {}
                    }
                }
                if summary.id.is_empty() {
                    return Err(format!("tenant line missing id=: {line:?}"));
                }
                list.push(summary);
            }
            return Ok(AdminReply::Tenants(list));
        }
        Err(format!("unknown admin reply {head:?}"))
    }
}

/// A blocking TCP client for the admin port. Each call opens a fresh
/// connection — admin traffic is rare and tiny, and a connection per
/// command keeps the client free of session state.
#[derive(Clone, Debug)]
pub struct AdminClient {
    addr: SocketAddr,
    token: Option<String>,
    timeout: Duration,
}

impl AdminClient {
    /// A client for the daemon's admin port.
    pub fn new(addr: SocketAddr, token: Option<String>) -> Self {
        Self {
            addr,
            token,
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the per-command I/O timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sends one command and decodes the answer.
    ///
    /// # Errors
    /// Transport failures and protocol violations, as strings; an
    /// [`AdminReply::Err`] is a *successful* call.
    pub fn call(&self, request: &AdminRequest) -> Result<AdminReply, String> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream.set_read_timeout(Some(self.timeout)).ok();
        stream.set_write_timeout(Some(self.timeout)).ok();
        let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let mut reader = stream;
        write_frame(&mut writer, &request.encode(self.token.as_deref()))
            .map_err(|e| format!("send: {e}"))?;
        let payload = read_frame(&mut reader).map_err(|e| format!("recv: {e}"))?;
        AdminReply::decode(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_with_and_without_tokens() {
        let requests = [
            AdminRequest::Status,
            AdminRequest::Load {
                slot: "challenger".into(),
                dir: "ckpt/run7".into(),
                rho: 0.3,
            },
            AdminRequest::Gate,
            AdminRequest::Promote { force: false },
            AdminRequest::Promote { force: true },
            AdminRequest::Rollback,
            AdminRequest::Canary { fraction: 0.25 },
            AdminRequest::TenantAdd {
                spec: "acme:tok:2:5:1000".into(),
            },
            AdminRequest::TenantDel { id: "acme".into() },
            AdminRequest::TenantList,
            AdminRequest::Retrain {
                base: "ckpt/base".into(),
                log: "exp.jsonl".into(),
                out: "ckpt/retrained".into(),
                seed: 0xE1,
                steps: 4,
            },
            AdminRequest::Drain,
        ];
        for req in requests {
            let (decoded, token) = AdminRequest::decode(&req.encode(None)).unwrap();
            assert_eq!(decoded, req);
            assert_eq!(token, None);
            let (decoded, token) = AdminRequest::decode(&req.encode(Some("hunter2"))).unwrap();
            assert_eq!(decoded, req);
            assert_eq!(token.as_deref(), Some("hunter2"));
        }
    }

    #[test]
    fn replies_roundtrip() {
        let replies = [
            AdminReply::Ok {
                info: "promoted champion@12@00000000deadbeef".into(),
            },
            AdminReply::Err {
                msg: "gate failed: fail: challenger -120 vs champion -80".into(),
            },
            AdminReply::Status(DaemonStatus {
                ready: true,
                queue_depth: 3,
                champion: Some(ModelVersion {
                    name: "champion".into(),
                    version: 12,
                    fingerprint: 0xdead_beef,
                }),
                challenger: None,
                canary: 0.25,
                tenants: 2,
            }),
            AdminReply::Tenants(vec![
                TenantSummary {
                    id: "acme".into(),
                    rate_per_sec: 2.5,
                    burst: 10.0,
                    monthly_quota: 1000,
                    usage: TenantUsage {
                        accepted: 7,
                        denied: 1,
                        throttled: 2,
                        used_in_window: 7,
                    },
                },
                TenantSummary {
                    id: "globex".into(),
                    rate_per_sec: 1.0,
                    burst: 1.0,
                    monthly_quota: 0,
                    usage: TenantUsage::default(),
                },
            ]),
            AdminReply::Tenants(vec![]),
        ];
        for reply in replies {
            assert_eq!(AdminReply::decode(&reply.encode()).unwrap(), reply);
        }
    }

    #[test]
    fn version_and_verb_violations_are_rejected() {
        assert!(AdminRequest::decode(b"rl-ccd-admin v2\nstatus\n")
            .unwrap_err()
            .contains("version"));
        let payload = format!("{ADMIN_PROTOCOL_VERSION}\nreboot now=1\n");
        assert!(AdminRequest::decode(payload.as_bytes())
            .unwrap_err()
            .contains("unknown admin request"));
        let payload = format!("{ADMIN_PROTOCOL_VERSION}\nload slot=champion\n");
        assert!(AdminRequest::decode(payload.as_bytes())
            .unwrap_err()
            .contains("dir="));
    }

    #[test]
    fn unknown_fields_are_ignored_for_forward_compatibility() {
        let payload = format!("{ADMIN_PROTOCOL_VERSION}\npromote force=1 future=x\n");
        let (req, _) = AdminRequest::decode(payload.as_bytes()).unwrap();
        assert_eq!(req, AdminRequest::Promote { force: true });
    }
}
