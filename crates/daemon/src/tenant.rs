//! Tenancy: authentication, token-bucket rate limits, monthly quotas,
//! per-tenant usage accounting.
//!
//! Every query on the daemon's tenant port carries [`Credentials`]; the
//! [`TenantBook`] admits or rejects it before the request touches the
//! serving queue. Token comparison is constant-time (no early exit a
//! timing probe could learn a prefix from), and unknown tenants get the
//! same "invalid credentials" answer as a bad token so the endpoint is
//! not a tenant-existence oracle.
//!
//! Rate limiting is a classic token bucket (capacity `burst`, refill
//! `rate_per_sec`); the monthly quota counts admitted requests in fixed
//! 30-day windows from the epoch. Both run off an injected [`Clock`], so
//! tests step time explicitly instead of sleeping.

use crate::clock::Clock;
use rl_ccd_serve::Credentials;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex};

/// Length of one quota window: 30 days in milliseconds.
pub const QUOTA_WINDOW_MS: u64 = 30 * 24 * 60 * 60 * 1000;

/// Constant-time byte-string equality: scans both inputs fully whatever
/// the outcome, so response timing does not leak how much of a token
/// matched.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    let n = a.len().max(b.len());
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= (x ^ y) as usize;
    }
    diff == 0
}

/// One tenant's declared identity and limits.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantConfig {
    /// Tenant identity (no `:` or whitespace).
    pub id: String,
    /// Secret auth token (no `:` or whitespace).
    pub token: String,
    /// Token-bucket refill rate, requests per second.
    pub rate_per_sec: f64,
    /// Token-bucket capacity: how many requests may burst at once.
    pub burst: f64,
    /// Admitted requests allowed per 30-day window. 0 means the tenant
    /// may authenticate but never query (a disabled account).
    pub monthly_quota: u64,
}

impl fmt::Display for TenantConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}:{}:{}",
            self.id, self.token, self.rate_per_sec, self.burst, self.monthly_quota
        )
    }
}

impl FromStr for TenantConfig {
    type Err = String;

    /// Parses the CLI/admin spec form `id:token:rate:burst:quota`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 5 {
            return Err(format!(
                "tenant spec {s:?} is not id:token:rate:burst:quota"
            ));
        }
        if parts[0].is_empty() || parts[0].contains(char::is_whitespace) {
            return Err(format!("bad tenant id {:?}", parts[0]));
        }
        if parts[1].is_empty() || parts[1].contains(char::is_whitespace) {
            return Err(format!("bad tenant token for {:?}", parts[0]));
        }
        let rate_per_sec: f64 = parts[2]
            .parse()
            .map_err(|_| format!("bad rate {:?}", parts[2]))?;
        let burst: f64 = parts[3]
            .parse()
            .map_err(|_| format!("bad burst {:?}", parts[3]))?;
        let monthly_quota = parts[4]
            .parse()
            .map_err(|_| format!("bad quota {:?}", parts[4]))?;
        if !(rate_per_sec.is_finite() && rate_per_sec > 0.0) {
            return Err(format!("rate must be positive, got {rate_per_sec}"));
        }
        if !(burst.is_finite() && burst >= 1.0) {
            return Err(format!("burst must be at least 1, got {burst}"));
        }
        Ok(Self {
            id: parts[0].to_string(),
            token: parts[1].to_string(),
            rate_per_sec,
            burst,
            monthly_quota,
        })
    }
}

/// Outcome of admitting one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Authenticated and within limits; one bucket token was consumed
    /// and the quota counter advanced.
    Granted,
    /// Authentication failed or the operation is not allowed.
    Denied(String),
    /// Authenticated, but the bucket is empty or the quota is spent;
    /// retry after the hinted delay (the bucket's refill horizon, or the
    /// remainder of the quota window).
    Throttled {
        /// Milliseconds until the tenant may retry.
        retry_after_ms: u64,
    },
}

/// Lifetime usage counters for one tenant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Requests admitted.
    pub accepted: u64,
    /// Requests rejected for a bad token.
    pub denied: u64,
    /// Requests throttled by the bucket or quota.
    pub throttled: u64,
    /// Admitted requests in the current quota window.
    pub used_in_window: u64,
}

/// A tenant's configuration and usage, as reported to admins.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSummary {
    /// Tenant identity.
    pub id: String,
    /// Token-bucket refill rate (requests/second).
    pub rate_per_sec: f64,
    /// Token-bucket capacity.
    pub burst: f64,
    /// Requests allowed per 30-day window.
    pub monthly_quota: u64,
    /// Usage counters.
    pub usage: TenantUsage,
}

#[derive(Debug)]
struct TenantState {
    config: TenantConfig,
    /// Fractional tokens currently in the bucket.
    tokens: f64,
    /// Last refill instant (epoch ms).
    refilled_ms: u64,
    /// Quota window index (`now_ms / QUOTA_WINDOW_MS`) the counter is for.
    window: u64,
    usage: TenantUsage,
}

impl TenantState {
    fn new(config: TenantConfig, now_ms: u64) -> Self {
        Self {
            tokens: config.burst,
            refilled_ms: now_ms,
            window: now_ms / QUOTA_WINDOW_MS,
            config,
            usage: TenantUsage::default(),
        }
    }
}

/// The live tenant table: admit requests, mutate tenants, report usage.
#[derive(Debug)]
pub struct TenantBook {
    clock: Arc<dyn Clock>,
    tenants: Mutex<BTreeMap<String, TenantState>>,
}

impl TenantBook {
    /// An empty book running on `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// Adds (or replaces) a tenant; returns whether a previous entry with
    /// that id was replaced. A replaced tenant's bucket, window, and
    /// usage counters start fresh.
    pub fn add(&self, config: TenantConfig) -> bool {
        let now = self.clock.now_ms();
        let mut tenants = self.tenants.lock().expect("tenant lock");
        tenants
            .insert(config.id.clone(), TenantState::new(config, now))
            .is_some()
    }

    /// Removes a tenant; returns whether it existed.
    pub fn remove(&self, id: &str) -> bool {
        self.tenants
            .lock()
            .expect("tenant lock")
            .remove(id)
            .is_some()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.lock().expect("tenant lock").len()
    }

    /// Whether no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.lock().expect("tenant lock").is_empty()
    }

    /// Admits or rejects one request for `creds`, consuming a bucket
    /// token and advancing the quota counter on success.
    pub fn admit(&self, creds: &Credentials) -> Admission {
        let now = self.clock.now_ms();
        let mut tenants = self.tenants.lock().expect("tenant lock");
        let Some(state) = tenants.get_mut(&creds.tenant) else {
            // Burn comparable time to a real comparison so an unknown id
            // is not distinguishable from a bad token by latency alone,
            // and reuse the same message (no tenant-existence oracle).
            let _ = constant_time_eq(creds.token.as_bytes(), creds.token.as_bytes());
            return Admission::Denied("invalid credentials".into());
        };
        if !constant_time_eq(creds.token.as_bytes(), state.config.token.as_bytes()) {
            state.usage.denied += 1;
            return Admission::Denied("invalid credentials".into());
        }
        // Quota windows are fixed 30-day slots from the epoch; crossing
        // into a new slot resets the counter.
        let window = now / QUOTA_WINDOW_MS;
        if window != state.window {
            state.window = window;
            state.usage.used_in_window = 0;
        }
        if state.usage.used_in_window >= state.config.monthly_quota {
            state.usage.throttled += 1;
            let window_end = (window + 1) * QUOTA_WINDOW_MS;
            return Admission::Throttled {
                retry_after_ms: window_end.saturating_sub(now).max(1),
            };
        }
        // Token bucket: refill for the elapsed time, capped at burst.
        let elapsed_ms = now.saturating_sub(state.refilled_ms);
        state.tokens = (state.tokens + state.config.rate_per_sec * elapsed_ms as f64 / 1e3)
            .min(state.config.burst);
        state.refilled_ms = now;
        if state.tokens < 1.0 {
            state.usage.throttled += 1;
            let deficit = 1.0 - state.tokens;
            let horizon_ms = (deficit / state.config.rate_per_sec * 1e3).ceil() as u64;
            return Admission::Throttled {
                retry_after_ms: horizon_ms.max(1),
            };
        }
        state.tokens -= 1.0;
        state.usage.used_in_window += 1;
        state.usage.accepted += 1;
        Admission::Granted
    }

    /// Every tenant's configuration and usage, sorted by id. Tokens are
    /// deliberately absent — this is what `tenant-list` shows admins.
    pub fn summaries(&self) -> Vec<TenantSummary> {
        self.tenants
            .lock()
            .expect("tenant lock")
            .values()
            .map(|s| TenantSummary {
                id: s.config.id.clone(),
                rate_per_sec: s.config.rate_per_sec,
                burst: s.config.burst,
                monthly_quota: s.config.monthly_quota,
                usage: s.usage,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn creds(tenant: &str, token: &str) -> Credentials {
        Credentials {
            tenant: tenant.into(),
            token: token.into(),
        }
    }

    fn book_with(spec: &str, clock: &ManualClock) -> TenantBook {
        let book = TenantBook::new(Arc::new(clock.clone()));
        book.add(spec.parse().expect("spec"));
        book
    }

    #[test]
    fn spec_roundtrips_and_rejects_malformed_forms() {
        let spec: TenantConfig = "acme:s3cret:2.5:10:1000".parse().unwrap();
        assert_eq!(spec.id, "acme");
        assert_eq!(spec.rate_per_sec, 2.5);
        assert_eq!(spec.burst, 10.0);
        assert_eq!(spec.monthly_quota, 1000);
        assert_eq!(spec.to_string().parse::<TenantConfig>().unwrap(), spec);
        for bad in [
            "acme:s3cret:2.5:10", // missing quota
            ":s3cret:1:1:1",      // empty id
            "acme::1:1:1",        // empty token
            "acme:t:0:1:1",       // zero rate
            "acme:t:1:0.5:1",     // burst below one request
            "acme:t:nope:1:1",    // unparsable rate
        ] {
            assert!(bad.parse::<TenantConfig>().is_err(), "{bad}");
        }
    }

    #[test]
    fn constant_time_eq_matches_plain_equality() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(!constant_time_eq(b"", b"x"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn unknown_tenant_and_bad_token_get_the_same_answer() {
        let clock = ManualClock::at(0);
        let book = book_with("acme:s3cret:10:5:100", &clock);
        let unknown = book.admit(&creds("ghost", "s3cret"));
        let wrong = book.admit(&creds("acme", "guess"));
        assert_eq!(unknown, wrong, "no tenant-existence oracle");
        assert!(matches!(unknown, Admission::Denied(_)));
        assert_eq!(book.summaries()[0].usage.denied, 1);
    }

    #[test]
    fn bucket_drains_at_burst_and_refills_with_the_clock() {
        let clock = ManualClock::at(0);
        // 2 req/s, burst of 3.
        let book = book_with("acme:tok:2:3:1000000", &clock);
        for _ in 0..3 {
            assert_eq!(book.admit(&creds("acme", "tok")), Admission::Granted);
        }
        let Admission::Throttled { retry_after_ms } = book.admit(&creds("acme", "tok")) else {
            panic!("bucket should be empty");
        };
        // Refill horizon for one token at 2/s is 500 ms.
        assert_eq!(retry_after_ms, 500);
        // Honoring the hint admits exactly one more.
        clock.advance(retry_after_ms);
        assert_eq!(book.admit(&creds("acme", "tok")), Admission::Granted);
        assert!(matches!(
            book.admit(&creds("acme", "tok")),
            Admission::Throttled { .. }
        ));
        // A long idle refills to burst, never beyond.
        clock.advance(60_000);
        for _ in 0..3 {
            assert_eq!(book.admit(&creds("acme", "tok")), Admission::Granted);
        }
        assert!(matches!(
            book.admit(&creds("acme", "tok")),
            Admission::Throttled { .. }
        ));
        let usage = book.summaries()[0].usage;
        assert_eq!(usage.accepted, 7);
        assert_eq!(usage.throttled, 3);
    }

    #[test]
    fn zero_quota_tenant_authenticates_but_never_queries() {
        let clock = ManualClock::at(12_345);
        let book = book_with("frozen:tok:10:5:0", &clock);
        let Admission::Throttled { retry_after_ms } = book.admit(&creds("frozen", "tok")) else {
            panic!("zero quota must throttle, not grant or deny");
        };
        // The hint is the remainder of the 30-day window — far beyond any
        // bucket horizon, so clients surface it instead of sleeping.
        assert_eq!(retry_after_ms, QUOTA_WINDOW_MS - 12_345);
        // A bad token is still a denial, proving auth ran first.
        assert!(matches!(
            book.admit(&creds("frozen", "wrong")),
            Admission::Denied(_)
        ));
    }

    #[test]
    fn quota_resets_when_the_window_rolls_over() {
        let clock = ManualClock::at(0);
        let book = book_with("acme:tok:1000:1000:2", &clock);
        assert_eq!(book.admit(&creds("acme", "tok")), Admission::Granted);
        assert_eq!(book.admit(&creds("acme", "tok")), Admission::Granted);
        let Admission::Throttled { retry_after_ms } = book.admit(&creds("acme", "tok")) else {
            panic!("quota spent");
        };
        assert_eq!(retry_after_ms, QUOTA_WINDOW_MS);
        clock.advance(QUOTA_WINDOW_MS);
        assert_eq!(
            book.admit(&creds("acme", "tok")),
            Admission::Granted,
            "new window, fresh quota"
        );
        assert_eq!(book.summaries()[0].usage.used_in_window, 1);
    }

    #[test]
    fn replacing_a_tenant_resets_its_limits() {
        let clock = ManualClock::at(0);
        let book = book_with("acme:tok:1:1:10", &clock);
        assert_eq!(book.admit(&creds("acme", "tok")), Admission::Granted);
        assert!(matches!(
            book.admit(&creds("acme", "tok")),
            Admission::Throttled { .. }
        ));
        assert!(book.add("acme:newtok:1:1:10".parse().unwrap()));
        assert!(matches!(
            book.admit(&creds("acme", "tok")),
            Admission::Denied(_)
        ));
        assert_eq!(book.admit(&creds("acme", "newtok")), Admission::Granted);
        assert!(book.remove("acme"));
        assert!(!book.remove("acme"));
        assert!(book.is_empty());
    }
}
