//! Injectable time source for the tenancy layer.
//!
//! Token-bucket refill and monthly-quota windows are pure functions of
//! "milliseconds since the epoch", so tests drive them with a
//! [`ManualClock`] stepped explicitly — no wall-clock sleeps, no flaky
//! timing — while production uses [`SystemClock`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone-enough millisecond clock.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Milliseconds since the Unix epoch.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time from [`std::time::SystemTime`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }
}

/// A hand-stepped clock for deterministic tests. Clones share the same
/// underlying instant.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    ms: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at `ms` milliseconds since the epoch.
    pub fn at(ms: u64) -> Self {
        let clock = Self::default();
        clock.set(ms);
        clock
    }

    /// Moves time forward by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::SeqCst);
    }

    /// Jumps to an absolute instant.
    pub fn set(&self, ms: u64) {
        self.ms.store(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_steps_and_shares_state_across_clones() {
        let clock = ManualClock::at(1_000);
        let other = clock.clone();
        assert_eq!(clock.now_ms(), 1_000);
        other.advance(250);
        assert_eq!(clock.now_ms(), 1_250);
        clock.set(5);
        assert_eq!(other.now_ms(), 5);
    }

    #[test]
    fn system_clock_is_past_2020() {
        // 2020-01-01 in epoch ms; a sanity floor, not an exact pin.
        assert!(SystemClock.now_ms() > 1_577_836_800_000);
    }
}
