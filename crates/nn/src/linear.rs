//! Fully-connected layer.

use crate::init::xavier;
use crate::module::{ParamBinding, ParamSet};
use crate::tape::{TapeOps, Var};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// A dense layer `y = x·W + b`, with parameters registered in a [`ParamSet`]
/// under `"{name}.w"` / `"{name}.b"`.
#[derive(Clone, Debug)]
pub struct Linear {
    name: String,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates the layer and registers freshly-initialized parameters.
    pub fn init(
        name: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Self {
        let name = name.into();
        params.insert(format!("{name}.w"), xavier(in_dim, out_dim, rng));
        params.insert(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Self {
            name,
            in_dim,
            out_dim,
        }
    }

    /// Re-attaches to parameters that already exist in a set (e.g. after
    /// loading from disk).
    ///
    /// # Panics
    /// Panics if the parameters are missing or have the wrong shape.
    pub fn attach(name: impl Into<String>, params: &ParamSet) -> Self {
        let name = name.into();
        let w = params
            .get(&format!("{name}.w"))
            .unwrap_or_else(|| panic!("missing parameter {name}.w"));
        let b = params
            .get(&format!("{name}.b"))
            .unwrap_or_else(|| panic!("missing parameter {name}.b"));
        assert_eq!(b.shape(), (1, w.cols()), "bias shape mismatch for {name}");
        Self {
            in_dim: w.rows(),
            out_dim: w.cols(),
            name,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to `x` (n×in) on the tape, yielding n×out.
    pub fn forward<T: TapeOps>(&self, tape: &mut T, binding: &ParamBinding, x: Var) -> Var {
        let w = binding.var(&format!("{}.w", self.name));
        let b = binding.var(&format!("{}.b", self.name));
        tape.linear(x, w, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = ParamSet::new();
        let layer = Linear::init("fc", 4, 2, &mut params, &mut rng);
        assert_eq!((layer.in_dim(), layer.out_dim()), (4, 2));
        // Set bias to something visible.
        params.get_mut("fc.b").expect("bias").set(0, 1, 5.0);
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::zeros(3, 4));
        let y = layer.forward(&mut tape, &binding, x);
        assert_eq!(tape.value(y).shape(), (3, 2));
        // Zero input → bias shows through on every row.
        for r in 0..3 {
            assert_eq!(tape.value(y).at(r, 1), 5.0);
        }
    }

    #[test]
    fn attach_recovers_dims() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = ParamSet::new();
        Linear::init("fc", 7, 3, &mut params, &mut rng);
        let layer = Linear::attach("fc", &params);
        assert_eq!((layer.in_dim(), layer.out_dim()), (7, 3));
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn attach_missing_panics() {
        let params = ParamSet::new();
        let _ = Linear::attach("nope", &params);
    }
}
