//! Deterministic weight initialization.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier/Glorot uniform initialization: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect(),
    )
}

/// Uniform initialization in `(−scale, scale)`.
pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut StdRng) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_and_determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ta = xavier(16, 32, &mut a);
        let tb = xavier(16, 32, &mut b);
        assert_eq!(ta, tb);
        let bound = (6.0 / 48.0f32).sqrt();
        assert!(ta.data().iter().all(|&v| v.abs() <= bound));
        // Not all zero.
        assert!(ta.norm() > 0.0);
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(4, 4, 0.1, &mut rng);
        assert!(t.data().iter().all(|&v| v.abs() <= 0.1));
    }
}
