//! CSR sparse matrices (constants in the autodiff graph).
//!
//! EP-GNN's neighbourhood aggregation and fan-in-cone readout are sparse
//! matrix × dense feature products; the sparse operand never needs a
//! gradient, so CSR matrices live outside the tape and ops reference them
//! via `Arc`.

use crate::tensor::Tensor;
use std::sync::Arc;

/// A compressed-sparse-row matrix with `f32` weights.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    /// Panics if the parts are inconsistent (lengths, column bounds).
    pub fn new(
        rows: usize,
        cols: usize,
        indptr: Vec<u32>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indices.len(), values.len(), "indices/values length");
        assert_eq!(
            *indptr.last().expect("non-empty indptr") as usize,
            indices.len()
        );
        assert!(
            indices.iter().all(|&c| (c as usize) < cols),
            "column index out of bounds"
        );
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Sparse × dense product: `self (r×c) · dense (c×m) → (r×m)`.
    ///
    /// # Panics
    /// Panics if `dense.rows() != self.cols()`.
    pub fn matmul(&self, dense: &Tensor) -> Tensor {
        assert_eq!(dense.rows(), self.cols, "spmm inner dimension");
        let m = dense.cols();
        let mut out = Tensor::zeros(self.rows, m);
        let dd = dense.data();
        let od = out.data_mut();
        for r in 0..self.rows {
            let (s, e) = (self.indptr[r] as usize, self.indptr[r + 1] as usize);
            let dst = r * m;
            for k in s..e {
                let c = self.indices[k] as usize;
                let w = self.values[k];
                let src = c * m;
                for j in 0..m {
                    od[dst + j] += w * dd[src + j];
                }
            }
        }
        out
    }

    /// Like [`Csr::matmul`] but accumulates into a caller-provided zeroed
    /// buffer of length `self.rows() * dense.cols()`. The inner row update
    /// runs through the lane-unrolled axpy, which keeps the same
    /// (r, k)-ascending per-element accumulation order as [`Csr::matmul`],
    /// so the result is bit-identical while the loop vectorizes.
    pub fn matmul_into(&self, out: &mut [f32], dense: &Tensor) {
        assert_eq!(dense.rows(), self.cols, "spmm inner dimension");
        let m = dense.cols();
        assert_eq!(out.len(), self.rows * m, "spmm output length");
        let dd = dense.data();
        for r in 0..self.rows {
            let (s, e) = (self.indptr[r] as usize, self.indptr[r + 1] as usize);
            let orow = &mut out[r * m..(r + 1) * m];
            for k in s..e {
                let c = self.indices[k] as usize;
                crate::kernels::axpy(orow, self.values[k], &dd[c * m..(c + 1) * m]);
            }
        }
    }

    /// Like [`Csr::t_matmul`] but accumulates into a caller-provided zeroed
    /// buffer of length `self.cols() * dense.cols()`, bit-identical to the
    /// allocating form (same accumulation order, unrolled inner loop).
    pub fn t_matmul_into(&self, out: &mut [f32], dense: &Tensor) {
        assert_eq!(dense.rows(), self.rows, "spmm-t inner dimension");
        let m = dense.cols();
        assert_eq!(out.len(), self.cols * m, "spmm-t output length");
        let dd = dense.data();
        for r in 0..self.rows {
            let (s, e) = (self.indptr[r] as usize, self.indptr[r + 1] as usize);
            let src = &dd[r * m..(r + 1) * m];
            for k in s..e {
                let c = self.indices[k] as usize;
                crate::kernels::axpy(&mut out[c * m..(c + 1) * m], self.values[k], src);
            }
        }
    }

    /// Transposed sparse × dense product: `selfᵀ (c×r) · dense (r×m) → (c×m)`.
    /// This is the backward pass of [`Csr::matmul`] with respect to the dense
    /// operand.
    pub fn t_matmul(&self, dense: &Tensor) -> Tensor {
        assert_eq!(dense.rows(), self.rows, "spmm-t inner dimension");
        let m = dense.cols();
        let mut out = Tensor::zeros(self.cols, m);
        let dd = dense.data();
        let od = out.data_mut();
        for r in 0..self.rows {
            let (s, e) = (self.indptr[r] as usize, self.indptr[r + 1] as usize);
            let src = r * m;
            for k in s..e {
                let c = self.indices[k] as usize;
                let w = self.values[k];
                let dst = c * m;
                for j in 0..m {
                    od[dst + j] += w * dd[src + j];
                }
            }
        }
        out
    }
}

/// Shared handle used by tape ops.
pub type SharedCsr = Arc<Csr>;

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr {
        // [[1, 0, 2],
        //  [0, 3, 0]]
        Csr::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn spmm_matches_dense() {
        let s = example();
        let d = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = s.matmul(&d);
        assert_eq!(out.data(), &[11.0, 14.0, 9.0, 12.0]);
        assert_eq!(s.nnz(), 3);
        assert_eq!((s.rows(), s.cols()), (2, 3));
    }

    #[test]
    fn transposed_spmm_matches_dense() {
        let s = example();
        let d = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let out = s.t_matmul(&d);
        // sᵀ = [[1,0],[0,3],[2,0]]
        assert_eq!(out.data(), &[1.0, 2.0, 9.0, 12.0, 2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "column index out of bounds")]
    fn bad_column_panics() {
        let _ = Csr::new(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }
}
