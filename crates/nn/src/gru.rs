//! GRU cell — the lighter recurrent alternative to [`crate::LstmCell`],
//! used by the encoder-architecture ablation.

use crate::init::xavier;
use crate::module::{ParamBinding, ParamSet};
use crate::tape::{TapeOps, Var};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

const GATES: [&str; 3] = ["r", "z", "n"];

/// One GRU cell with input width `in_dim` and state width `hidden`.
///
/// Parameters: `"{name}.wx_{g}"`, `"{name}.wh_{g}"`, `"{name}.b_{g}"` for
/// gates `r` (reset), `z` (update), `n` (candidate).
#[derive(Clone, Debug)]
pub struct GruCell {
    name: String,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Creates the cell and registers freshly-initialized parameters.
    pub fn init(
        name: impl Into<String>,
        in_dim: usize,
        hidden: usize,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Self {
        let name = name.into();
        for g in GATES {
            params.insert(format!("{name}.wx_{g}"), xavier(in_dim, hidden, rng));
            params.insert(format!("{name}.wh_{g}"), xavier(hidden, hidden, rng));
            params.insert(format!("{name}.b_{g}"), Tensor::zeros(1, hidden));
        }
        Self {
            name,
            in_dim,
            hidden,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Zero initial hidden state.
    pub fn zero_state<T: TapeOps>(&self, tape: &mut T) -> Var {
        tape.leaf(Tensor::zeros(1, self.hidden))
    }

    fn gate_pre<T: TapeOps>(
        &self,
        tape: &mut T,
        binding: &ParamBinding,
        g: &str,
        x: Var,
        h: Var,
    ) -> Var {
        let wx = binding.var(&format!("{}.wx_{g}", self.name));
        let wh = binding.var(&format!("{}.wh_{g}", self.name));
        let b = binding.var(&format!("{}.b_{g}", self.name));
        tape.linear2(x, wx, h, wh, b)
    }

    /// One recurrence step: `h' = (1−z)⊙n + z⊙h`.
    pub fn step<T: TapeOps>(&self, tape: &mut T, binding: &ParamBinding, x: Var, h: Var) -> Var {
        let r_pre = self.gate_pre(tape, binding, "r", x, h);
        let r = tape.sigmoid(r_pre);
        let z_pre = self.gate_pre(tape, binding, "z", x, h);
        let z = tape.sigmoid(z_pre);
        // Candidate uses the reset-gated hidden state.
        let rh = tape.mul(r, h);
        let wx = binding.var(&format!("{}.wx_n", self.name));
        let wh = binding.var(&format!("{}.wh_n", self.name));
        let b = binding.var(&format!("{}.b_n", self.name));
        let pre = tape.linear2(x, wx, rh, wh, b);
        let n = tape.tanh(pre);
        // h' = n − z⊙n + z⊙h.
        let zn = tape.mul(z, n);
        let neg_zn = tape.scale(zn, -1.0);
        let zh = tape.mul(z, h);
        let part = tape.add(n, neg_zn);
        tape.add(part, zh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::GradSet;
    use crate::tape::Tape;
    use rand::SeedableRng;

    fn build() -> (ParamSet, GruCell) {
        let mut rng = StdRng::seed_from_u64(13);
        let mut params = ParamSet::new();
        let cell = GruCell::init("gru", 3, 4, &mut params, &mut rng);
        (params, cell)
    }

    #[test]
    fn state_evolves_and_shapes_hold() {
        let (params, cell) = build();
        assert_eq!((cell.in_dim(), cell.hidden()), (3, 4));
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let h0 = cell.zero_state(&mut tape);
        let x = tape.leaf(Tensor::from_vec(1, 3, vec![0.5, -1.0, 0.25]));
        let h1 = cell.step(&mut tape, &binding, x, h0);
        assert_eq!(tape.value(h1).shape(), (1, 4));
        assert!(tape.value(h1).norm() > 0.0);
        let h2 = cell.step(&mut tape, &binding, x, h1);
        assert_ne!(tape.value(h2).data(), tape.value(h1).data());
    }

    #[test]
    fn gradients_flow_through_all_gates() {
        let (params, cell) = build();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let mut h = cell.zero_state(&mut tape);
        for i in 0..3 {
            let x = tape.leaf(Tensor::from_vec(1, 3, vec![i as f32 * 0.3, 1.0, -0.5]));
            h = cell.step(&mut tape, &binding, x, h);
        }
        let ones = tape.leaf(Tensor::from_vec(4, 1, vec![1.0; 4]));
        let loss = tape.matmul(h, ones);
        let mut grads = tape.backward(loss);
        let mut gs = GradSet::new();
        gs.accumulate(&binding, &mut grads);
        for g in GATES {
            assert!(
                gs.get(&format!("gru.wx_{g}"))
                    .map(|t| t.norm() > 0.0)
                    .unwrap_or(false),
                "gate {g} got no gradient"
            );
        }
    }

    #[test]
    fn update_gate_interpolates() {
        // With z forced toward 1 (large bias), h' ≈ h (state preserved).
        let (mut params, cell) = build();
        params
            .get_mut("gru.b_z")
            .expect("update bias")
            .data_mut()
            .iter_mut()
            .for_each(|v| *v = 50.0);
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let h0 = tape.leaf(Tensor::from_vec(1, 4, vec![0.3, -0.2, 0.8, -0.9]));
        let x = tape.leaf(Tensor::from_vec(1, 3, vec![1.0, 1.0, 1.0]));
        let h1 = cell.step(&mut tape, &binding, x, h0);
        for i in 0..4 {
            assert!((tape.value(h1).at(0, i) - tape.value(h0).at(0, i)).abs() < 1e-3);
        }
    }
}
