//! Per-op compute kernels with two implementations behind one seam.
//!
//! Every forward/backward op of the tape executes through this module in
//! one of two [`KernelMode`]s:
//!
//! * [`KernelMode::Fast`] — chunked, lane-unrolled loops written so the
//!   autovectorizer can emit SIMD (8-wide `f32` lanes via
//!   `chunks_exact`, no bounds checks in the hot loops), with outputs
//!   written into buffers recycled through a [`BufferPool`] so a
//!   steady-state rollout allocates nothing per step.
//! * [`KernelMode::Scalar`] — the original textbook loops, kept verbatim
//!   as the pinned reference implementation (fresh allocation per op,
//!   `Tensor`-level helpers). The `nn_kernels` bench times the fast
//!   executor against this mode; the parity proptests assert the two
//!   modes agree **bit-for-bit**.
//!
//! Bit-parity is by construction, not by tolerance: every fast kernel
//! accumulates each output element in exactly the same order as its
//! scalar twin (k-ascending for matrix products, r-ascending for
//! transposed/sparse products, sequential for reductions), and uses the
//! same `a == 0.0` skip the scalar loops use. Only memory traffic and
//! instruction-level parallelism differ, never float rounding — which is
//! why swapping the fast kernels in changed no training trajectory, no
//! serve selection, and no checkpoint digest.

use crate::sparse::SharedCsr;
use crate::tensor::Tensor;

/// How many `f32` lanes the unrolled inner loops process per iteration.
/// Matches one AVX2 register; on narrower ISAs the autovectorizer splits
/// the chunk, on wider ones it merges two.
pub const LANES: usize = 8;

/// Selects which implementation executes each op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelMode {
    /// Blocked/unrolled kernels with pooled output buffers (the default).
    #[default]
    Fast,
    /// The original scalar loops with per-op allocation — the pinned
    /// reference the fast kernels are benchmarked and parity-tested
    /// against.
    Scalar,
}

/// A free-list of `Vec<f32>` buffers recycled across tape operations.
///
/// [`crate::Tape::reset`] and [`crate::NoGradTape::truncate`] return the
/// storage of dropped values here; fast kernels draw their output buffers
/// from it, so after the first step of a selection loop the steady state
/// performs no heap allocation at all.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently parked in the free list.
    pub fn parked(&self) -> usize {
        self.free.len()
    }

    /// A buffer of exactly `len` zeros, reusing parked capacity when
    /// available.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        match self.free.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => vec![0.0; len],
        }
    }

    /// A buffer initialized to a copy of `src`, reusing parked capacity.
    pub fn take_copy(&mut self, src: &[f32]) -> Vec<f32> {
        match self.free.pop() {
            Some(mut v) => {
                v.clear();
                v.extend_from_slice(src);
                v
            }
            None => src.to_vec(),
        }
    }

    /// Parks a buffer for reuse (zero-capacity buffers are dropped).
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Parks a tensor's storage for reuse.
    pub fn give_tensor(&mut self, t: Tensor) {
        self.give(t.into_data());
    }
}

/// `out[j] += a * b[j]` over a row, unrolled to [`LANES`]-wide chunks.
/// Element order is unchanged versus the plain loop — each `out[j]` sees
/// exactly one fused read-modify-write — so this is bit-identical to the
/// scalar axpy while letting the compiler vectorize it.
#[inline]
pub(crate) fn axpy(out: &mut [f32], a: f32, b: &[f32]) {
    debug_assert_eq!(out.len(), b.len());
    let mut oc = out.chunks_exact_mut(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (o, x) in (&mut oc).zip(&mut bc) {
        for l in 0..LANES {
            o[l] += a * x[l];
        }
    }
    for (o, &x) in oc.into_remainder().iter_mut().zip(bc.remainder()) {
        *o += a * x;
    }
}

/// Four [`axpy`] passes fused into one traversal of `out`: element `j`
/// receives its four terms strictly in pass order (`a[0]`, `a[1]`, `a[2]`,
/// `a[3]`), so the result is bit-identical to four sequential axpy calls
/// while loading and storing `out` once instead of four times.
#[inline]
fn quad_axpy(out: &mut [f32], a: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    let n = out.len();
    // Re-slicing to a shared length lets the bounds checks hoist out of
    // the loop, which is what unlocks vectorization here.
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    for (j, o) in out.iter_mut().enumerate() {
        let mut t = *o;
        t += a[0] * b0[j];
        t += a[1] * b1[j];
        t += a[2] * b2[j];
        t += a[3] * b3[j];
        *o = t;
    }
}

/// [`quad_axpy`] over two independent output rows that share the same
/// four `b` rows, so each `b` row is loaded once per pass instead of once
/// per output row. The two rows never mix — per element the four terms
/// still arrive in pass order — so bit-parity is untouched.
#[inline]
#[allow(clippy::too_many_arguments)]
fn quad_axpy2(
    out0: &mut [f32],
    out1: &mut [f32],
    a0: [f32; 4],
    a1: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let n = out0.len();
    let out1 = &mut out1[..n];
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    for (j, o) in out0.iter_mut().enumerate() {
        let (x0, x1, x2, x3) = (b0[j], b1[j], b2[j], b3[j]);
        let mut t = *o;
        t += a0[0] * x0;
        t += a0[1] * x1;
        t += a0[2] * x2;
        t += a0[3] * x3;
        *o = t;
        let mut u = out1[j];
        u += a1[0] * x0;
        u += a1[1] * x1;
        u += a1[2] * x2;
        u += a1[3] * x3;
        out1[j] = u;
    }
}

/// `out[i] = a[i] OP b[i]` without bounds checks in the loop body.
#[inline]
fn zip_map_into(out: &mut [f32], a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32) {
    debug_assert!(out.len() == a.len() && a.len() == b.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f(x, y);
    }
}

/// Writes `a · b` into `out` (must be zeroed, `a.rows()*b.cols()` long).
/// Same ikj loop order and `a == 0.0` skip as [`Tensor::matmul`]; each
/// output element accumulates its k-terms in ascending order, so the
/// result is bit-identical to the scalar product.
pub fn matmul_into(out: &mut [f32], a: &Tensor, b: &Tensor) {
    let (m, kk) = a.shape();
    let n = b.cols();
    assert_eq!(kk, b.rows(), "matmul {}x{} by {}x{}", m, kk, b.rows(), n);
    assert_eq!(out.len(), m * n, "matmul output length");
    let ad = a.data();
    let bd = b.data();
    // Two output rows at a time share each loaded quad of `b` rows; four
    // k-terms per pass over an output row, k-ascending inside the quad —
    // still bit-identical to the scalar ikj loop. The all-nonzero test
    // keeps the scalar reference's `a == 0.0` skip semantics exactly.
    let mut i = 0;
    while i + 2 <= m {
        let (orow0, orow1) = out[i * n..(i + 2) * n].split_at_mut(n);
        let arow0 = &ad[i * kk..(i + 1) * kk];
        let arow1 = &ad[(i + 1) * kk..(i + 2) * kk];
        let mut k = 0;
        while k + 4 <= kk {
            let a4_0 = [arow0[k], arow0[k + 1], arow0[k + 2], arow0[k + 3]];
            let a4_1 = [arow1[k], arow1[k + 1], arow1[k + 2], arow1[k + 3]];
            let b0 = &bd[k * n..(k + 1) * n];
            let b1 = &bd[(k + 1) * n..(k + 2) * n];
            let b2 = &bd[(k + 2) * n..(k + 3) * n];
            let b3 = &bd[(k + 3) * n..(k + 4) * n];
            let nz0 = a4_0.iter().all(|&v| v != 0.0);
            let nz1 = a4_1.iter().all(|&v| v != 0.0);
            if nz0 && nz1 {
                quad_axpy2(orow0, orow1, a4_0, a4_1, b0, b1, b2, b3);
            } else {
                row_quad(orow0, a4_0, nz0, b0, b1, b2, b3);
                row_quad(orow1, a4_1, nz1, b0, b1, b2, b3);
            }
            k += 4;
        }
        while k < kk {
            let brow = &bd[k * n..(k + 1) * n];
            if arow0[k] != 0.0 {
                axpy(orow0, arow0[k], brow);
            }
            if arow1[k] != 0.0 {
                axpy(orow1, arow1[k], brow);
            }
            k += 1;
        }
        i += 2;
    }
    if i < m {
        let arow = &ad[i * kk..(i + 1) * kk];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut k = 0;
        while k + 4 <= kk {
            let a4 = [arow[k], arow[k + 1], arow[k + 2], arow[k + 3]];
            row_quad(
                orow,
                a4,
                a4.iter().all(|&v| v != 0.0),
                &bd[k * n..(k + 1) * n],
                &bd[(k + 1) * n..(k + 2) * n],
                &bd[(k + 2) * n..(k + 3) * n],
                &bd[(k + 3) * n..(k + 4) * n],
            );
            k += 4;
        }
        while k < kk {
            let av = arow[k];
            if av != 0.0 {
                axpy(orow, av, &bd[k * n..(k + 1) * n]);
            }
            k += 1;
        }
    }
}

/// One output row's quad step: fused when all four coefficients are
/// nonzero, per-term skip-axpy otherwise (the scalar skip semantics).
#[inline]
#[allow(clippy::too_many_arguments)]
fn row_quad(
    orow: &mut [f32],
    a4: [f32; 4],
    all_nz: bool,
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    if all_nz {
        quad_axpy(orow, a4, b0, b1, b2, b3);
    } else {
        let rows = [b0, b1, b2, b3];
        for (d, &av) in a4.iter().enumerate() {
            if av != 0.0 {
                axpy(orow, av, rows[d]);
            }
        }
    }
}

/// Writes `a · bᵀ` into `out` (`a.rows()*b.rows()` long, `scratch` holds
/// the transposed `b`). [`Tensor::matmul_t`] is the dot-product loop,
/// whose per-output accumulator chain cannot use SIMD lanes without
/// reassociating the sum. Instead `b` is transposed once into `scratch`
/// and the product runs in vectorized axpy form — per output element the
/// k-terms still accumulate in ascending order, and **no** zero-skip is
/// applied (the scalar dot product has none), so the result is
/// bit-identical to the reference.
pub fn matmul_t_into(out: &mut [f32], scratch: &mut Vec<f32>, a: &Tensor, b: &Tensor) {
    let (m, kk) = a.shape();
    let n = b.rows();
    assert_eq!(kk, b.cols(), "matmul_t col mismatch");
    assert_eq!(out.len(), m * n, "matmul_t output length");
    scratch.clear();
    scratch.resize(kk * n, 0.0);
    let bd = b.data();
    for j in 0..n {
        for (k, bt) in scratch.chunks_exact_mut(n).enumerate() {
            bt[j] = bd[j * kk + k];
        }
    }
    let ad = a.data();
    let bt = &scratch[..];
    let mut i = 0;
    while i + 2 <= m {
        let (orow0, orow1) = out[i * n..(i + 2) * n].split_at_mut(n);
        let arow0 = &ad[i * kk..(i + 1) * kk];
        let arow1 = &ad[(i + 1) * kk..(i + 2) * kk];
        let mut k = 0;
        while k + 4 <= kk {
            let a4_0 = [arow0[k], arow0[k + 1], arow0[k + 2], arow0[k + 3]];
            let a4_1 = [arow1[k], arow1[k + 1], arow1[k + 2], arow1[k + 3]];
            quad_axpy2(
                orow0,
                orow1,
                a4_0,
                a4_1,
                &bt[k * n..(k + 1) * n],
                &bt[(k + 1) * n..(k + 2) * n],
                &bt[(k + 2) * n..(k + 3) * n],
                &bt[(k + 3) * n..(k + 4) * n],
            );
            k += 4;
        }
        while k < kk {
            let brow = &bt[k * n..(k + 1) * n];
            axpy(orow0, arow0[k], brow);
            axpy(orow1, arow1[k], brow);
            k += 1;
        }
        i += 2;
    }
    if i < m {
        let arow = &ad[i * kk..(i + 1) * kk];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut k = 0;
        while k + 4 <= kk {
            quad_axpy(
                orow,
                [arow[k], arow[k + 1], arow[k + 2], arow[k + 3]],
                &bt[k * n..(k + 1) * n],
                &bt[(k + 1) * n..(k + 2) * n],
                &bt[(k + 2) * n..(k + 3) * n],
                &bt[(k + 3) * n..(k + 4) * n],
            );
            k += 4;
        }
        while k < kk {
            axpy(orow, arow[k], &bt[k * n..(k + 1) * n]);
            k += 1;
        }
    }
}

/// Writes `aᵀ · b` into `out` (must be zeroed, `a.cols()*b.cols()` long).
/// Same rik order and zero-skip as [`Tensor::t_matmul`] — per output
/// element the r-terms accumulate in ascending order.
pub fn t_matmul_into(out: &mut [f32], a: &Tensor, b: &Tensor) {
    let (rr, m) = a.shape();
    let n = b.cols();
    assert_eq!(rr, b.rows(), "t_matmul row mismatch");
    assert_eq!(out.len(), m * n, "t_matmul output length");
    let ad = a.data();
    let bd = b.data();
    // Four r-terms per pass over each output row (r-ascending inside the
    // quad — bit-identical to four sequential passes); the per-coefficient
    // nonzero test preserves the scalar reference's `a == 0.0` skip.
    let mut r = 0;
    while r + 4 <= rr {
        let a0 = &ad[r * m..(r + 1) * m];
        let a1 = &ad[(r + 1) * m..(r + 2) * m];
        let a2 = &ad[(r + 2) * m..(r + 3) * m];
        let a3 = &ad[(r + 3) * m..(r + 4) * m];
        let b0 = &bd[r * n..(r + 1) * n];
        let b1 = &bd[(r + 1) * n..(r + 2) * n];
        let b2 = &bd[(r + 2) * n..(r + 3) * n];
        let b3 = &bd[(r + 3) * n..(r + 4) * n];
        // Pairs of output rows reuse the loaded quad of `b` rows.
        let mut i = 0;
        while i + 2 <= m {
            let c4_0 = [a0[i], a1[i], a2[i], a3[i]];
            let c4_1 = [a0[i + 1], a1[i + 1], a2[i + 1], a3[i + 1]];
            let (orow0, orow1) = out[i * n..(i + 2) * n].split_at_mut(n);
            let nz0 = c4_0.iter().all(|&v| v != 0.0);
            let nz1 = c4_1.iter().all(|&v| v != 0.0);
            if nz0 && nz1 {
                quad_axpy2(orow0, orow1, c4_0, c4_1, b0, b1, b2, b3);
            } else {
                row_quad(orow0, c4_0, nz0, b0, b1, b2, b3);
                row_quad(orow1, c4_1, nz1, b0, b1, b2, b3);
            }
            i += 2;
        }
        if i < m {
            let c4 = [a0[i], a1[i], a2[i], a3[i]];
            let orow = &mut out[i * n..(i + 1) * n];
            row_quad(orow, c4, c4.iter().all(|&v| v != 0.0), b0, b1, b2, b3);
        }
        r += 4;
    }
    while r < rr {
        let arow = &ad[r * m..(r + 1) * m];
        let brow = &bd[r * n..(r + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            axpy(&mut out[i * n..(i + 1) * n], av, brow);
        }
        r += 1;
    }
}

/// Dense matrix product `a · b`.
pub fn matmul(mode: KernelMode, pool: &mut BufferPool, a: &Tensor, b: &Tensor) -> Tensor {
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(a.rows() * b.cols());
            matmul_into(&mut out, a, b);
            Tensor::from_vec(a.rows(), b.cols(), out)
        }
        KernelMode::Scalar => a.matmul(b),
    }
}

/// Matrix product `a · bᵀ` (backward of matmul w.r.t. its left operand).
pub fn matmul_t(mode: KernelMode, pool: &mut BufferPool, a: &Tensor, b: &Tensor) -> Tensor {
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(a.rows() * b.rows());
            let mut scratch = pool.take_zeroed(0);
            matmul_t_into(&mut out, &mut scratch, a, b);
            pool.give(scratch);
            Tensor::from_vec(a.rows(), b.rows(), out)
        }
        KernelMode::Scalar => a.matmul_t(b),
    }
}

/// Matrix product `aᵀ · b` (backward of matmul w.r.t. its right operand).
pub fn t_matmul(mode: KernelMode, pool: &mut BufferPool, a: &Tensor, b: &Tensor) -> Tensor {
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(a.cols() * b.cols());
            t_matmul_into(&mut out, a, b);
            Tensor::from_vec(a.cols(), b.cols(), out)
        }
        KernelMode::Scalar => a.t_matmul(b),
    }
}

/// Sparse × dense product `csr · a`.
pub fn spmm(mode: KernelMode, pool: &mut BufferPool, csr: &SharedCsr, a: &Tensor) -> Tensor {
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(csr.rows() * a.cols());
            csr.matmul_into(&mut out, a);
            Tensor::from_vec(csr.rows(), a.cols(), out)
        }
        KernelMode::Scalar => csr.matmul(a),
    }
}

/// Transposed sparse × dense product `csrᵀ · a` (backward of [`spmm`]).
pub fn spmm_t(mode: KernelMode, pool: &mut BufferPool, csr: &SharedCsr, a: &Tensor) -> Tensor {
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(csr.cols() * a.cols());
            csr.t_matmul_into(&mut out, a);
            Tensor::from_vec(csr.cols(), a.cols(), out)
        }
        KernelMode::Scalar => csr.t_matmul(a),
    }
}

/// Elementwise sum of two same-shape tensors.
pub fn add(mode: KernelMode, pool: &mut BufferPool, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add shapes");
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(a.len());
            zip_map_into(&mut out, a.data(), b.data(), |x, y| x + y);
            Tensor::from_vec(a.rows(), a.cols(), out)
        }
        KernelMode::Scalar => {
            let mut v = a.clone();
            v.add_assign(b);
            v
        }
    }
}

/// Adds a 1×m row vector to every row of an n×m matrix.
pub fn add_row(mode: KernelMode, pool: &mut BufferPool, a: &Tensor, row: &Tensor) -> Tensor {
    let (n, m) = a.shape();
    assert_eq!(row.shape(), (1, m), "add_row shapes");
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_copy(a.data());
            let r = row.data();
            for orow in out.chunks_exact_mut(m.max(1)) {
                for (o, &x) in orow.iter_mut().zip(r) {
                    *o += x;
                }
            }
            Tensor::from_vec(n, m, out)
        }
        KernelMode::Scalar => {
            let mut v = a.clone();
            {
                let r = row.data().to_vec();
                let d = v.data_mut();
                for i in 0..n {
                    for j in 0..m {
                        d[i * m + j] += r[j];
                    }
                }
            }
            v
        }
    }
}

/// Elementwise (Hadamard) product.
pub fn mul(mode: KernelMode, pool: &mut BufferPool, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "mul shapes");
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(a.len());
            zip_map_into(&mut out, a.data(), b.data(), |x, y| x * y);
            Tensor::from_vec(a.rows(), a.cols(), out)
        }
        KernelMode::Scalar => {
            let bv = b.data().to_vec();
            let mut v = a.clone();
            for (x, y) in v.data_mut().iter_mut().zip(bv) {
                *x *= y;
            }
            v
        }
    }
}

/// Multiplies by a compile-time constant.
pub fn scale(mode: KernelMode, pool: &mut BufferPool, a: &Tensor, k: f32) -> Tensor {
    map_unary(mode, pool, a, |x| k * x)
}

/// Multiplies a tensor by a trainable 1×1 scalar.
pub fn scalar_mul(mode: KernelMode, pool: &mut BufferPool, s: &Tensor, a: &Tensor) -> Tensor {
    assert_eq!(s.shape(), (1, 1), "scalar_mul gate shape");
    let k = s.data()[0];
    map_unary(mode, pool, a, |x| k * x)
}

/// Fused gated interpolation `s·a + (1−s)·b` with a trainable 1×1 gate.
pub fn mix(mode: KernelMode, pool: &mut BufferPool, s: &Tensor, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(s.shape(), (1, 1), "mix gate shape");
    assert_eq!(a.shape(), b.shape(), "mix shapes");
    let k = s.data()[0];
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(a.len());
            zip_map_into(&mut out, a.data(), b.data(), |x, y| k * x + (1.0 - k) * y);
            Tensor::from_vec(a.rows(), a.cols(), out)
        }
        KernelMode::Scalar => {
            let bv = b.data().to_vec();
            let mut v = a.clone();
            for (x, y) in v.data_mut().iter_mut().zip(bv) {
                *x = k * *x + (1.0 - k) * y;
            }
            v
        }
    }
}

/// Elementwise affine map `k·x + c`.
pub fn affine(mode: KernelMode, pool: &mut BufferPool, a: &Tensor, k: f32, c: f32) -> Tensor {
    map_unary(mode, pool, a, |x| k * x + c)
}

/// Elementwise logistic sigmoid.
pub fn sigmoid(mode: KernelMode, pool: &mut BufferPool, a: &Tensor) -> Tensor {
    map_unary(mode, pool, a, |x| 1.0 / (1.0 + (-x).exp()))
}

/// Elementwise tanh.
pub fn tanh(mode: KernelMode, pool: &mut BufferPool, a: &Tensor) -> Tensor {
    map_unary(mode, pool, a, f32::tanh)
}

/// Elementwise ReLU.
pub fn relu(mode: KernelMode, pool: &mut BufferPool, a: &Tensor) -> Tensor {
    map_unary(mode, pool, a, |x| x.max(0.0))
}

/// Shared unary elementwise dispatch: the fast path writes through a
/// pooled buffer, the scalar path is [`Tensor::map`] (fresh collect) —
/// identical math per element either way.
fn map_unary(
    mode: KernelMode,
    pool: &mut BufferPool,
    a: &Tensor,
    f: impl Fn(f32) -> f32,
) -> Tensor {
    match mode {
        KernelMode::Fast => {
            // Single pass: compute straight into the pooled buffer instead
            // of memcpy-then-mutate.
            let mut out = pool.take_zeroed(0);
            out.extend(a.data().iter().map(|&x| f(x)));
            Tensor::from_vec(a.rows(), a.cols(), out)
        }
        KernelMode::Scalar => a.map(f),
    }
}

/// Gathers the given rows of `a` into a new (k×m) tensor.
pub fn gather_rows(mode: KernelMode, pool: &mut BufferPool, a: &Tensor, rows: &[u32]) -> Tensor {
    let (n, m) = a.shape();
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(rows.len() * m);
            for (i, &r) in rows.iter().enumerate() {
                assert!((r as usize) < n, "gather row out of bounds");
                out[i * m..(i + 1) * m].copy_from_slice(a.row(r as usize));
            }
            Tensor::from_vec(rows.len(), m, out)
        }
        KernelMode::Scalar => {
            let mut v = Tensor::zeros(rows.len(), m);
            for (i, &r) in rows.iter().enumerate() {
                assert!((r as usize) < n, "gather row out of bounds");
                let src = a.row(r as usize).to_vec();
                v.data_mut()[i * m..(i + 1) * m].copy_from_slice(&src);
            }
            v
        }
    }
}

/// Extracts element `(r, c)` as a 1×1 tensor.
pub fn pick(_mode: KernelMode, _pool: &mut BufferPool, a: &Tensor, r: usize, c: usize) -> Tensor {
    Tensor::from_vec(1, 1, vec![a.at(r, c)])
}

/// Masked log-softmax over all elements of `a` (treated flat). Masked-out
/// entries get `-∞`.
pub fn masked_log_softmax(
    mode: KernelMode,
    pool: &mut BufferPool,
    value: &Tensor,
    mask: &[bool],
) -> Tensor {
    assert_eq!(mask.len(), value.len(), "mask length");
    assert!(mask.iter().any(|&m| m), "all entries masked");
    let mut max = f32::NEG_INFINITY;
    for (i, &x) in value.data().iter().enumerate() {
        if mask[i] && x > max {
            max = x;
        }
    }
    let mut lse = 0.0f32;
    for (i, &x) in value.data().iter().enumerate() {
        if mask[i] {
            lse += (x - max).exp();
        }
    }
    let lse = lse.ln() + max;
    let (r, c) = value.shape();
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(value.len());
            for ((o, &x), &m) in out.iter_mut().zip(value.data()).zip(mask) {
                *o = if m { x - lse } else { f32::NEG_INFINITY };
            }
            Tensor::from_vec(r, c, out)
        }
        KernelMode::Scalar => {
            let data: Vec<f32> = value
                .data()
                .iter()
                .enumerate()
                .map(|(i, &x)| if mask[i] { x - lse } else { f32::NEG_INFINITY })
                .collect();
            Tensor::from_vec(r, c, data)
        }
    }
}

/// Fused dense layer `x·w + b` (one op instead of matmul + add_row).
/// Bit-identical to the decomposition: the product accumulates first
/// (k-ascending), then the bias adds — the same per-element order the
/// two-op form produced.
pub fn linear(
    mode: KernelMode,
    pool: &mut BufferPool,
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
) -> Tensor {
    let (n, m) = (x.rows(), w.cols());
    assert_eq!(b.shape(), (1, m), "linear bias shape");
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(n * m);
            matmul_into(&mut out, x, w);
            let bd = b.data();
            for orow in out.chunks_exact_mut(m.max(1)) {
                for (o, &bv) in orow.iter_mut().zip(bd) {
                    *o += bv;
                }
            }
            Tensor::from_vec(n, m, out)
        }
        KernelMode::Scalar => {
            // The original two-op sequence, allocation for allocation.
            let h = x.matmul(w);
            add_row(KernelMode::Scalar, pool, &h, b)
        }
    }
}

/// Fused gate pre-activation `x·wx + h·wh + b` — the LSTM/GRU gate body
/// (previously four tape ops: two matmuls, an add, an add_row) in one op.
/// The two products accumulate into separate buffers and then combine,
/// preserving the exact `(Σx·wx) + (Σh·wh) + b` ordering of the
/// decomposed form.
pub fn linear2(
    mode: KernelMode,
    pool: &mut BufferPool,
    x: &Tensor,
    wx: &Tensor,
    h: &Tensor,
    wh: &Tensor,
    b: &Tensor,
) -> Tensor {
    let (n, m) = (x.rows(), wx.cols());
    assert_eq!(h.rows(), n, "linear2 row mismatch");
    assert_eq!(wh.cols(), m, "linear2 width mismatch");
    assert_eq!(b.shape(), (1, m), "linear2 bias shape");
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(n * m);
            matmul_into(&mut out, x, wx);
            let mut hs = pool.take_zeroed(n * m);
            matmul_into(&mut hs, h, wh);
            for (o, &y) in out.iter_mut().zip(hs.iter()) {
                *o += y;
            }
            pool.give(hs);
            let bd = b.data();
            for orow in out.chunks_exact_mut(m.max(1)) {
                for (o, &bv) in orow.iter_mut().zip(bd) {
                    *o += bv;
                }
            }
            Tensor::from_vec(n, m, out)
        }
        KernelMode::Scalar => {
            // The original four-op sequence.
            let xs = x.matmul(wx);
            let hs = h.matmul(wh);
            let s = add(KernelMode::Scalar, pool, &xs, &hs);
            add_row(KernelMode::Scalar, pool, &s, b)
        }
    }
}

/// Column sums of an n×m matrix as a 1×m row (backward of the broadcast
/// bias add). Rows accumulate in ascending order, like the scalar loop.
pub fn col_sum(mode: KernelMode, pool: &mut BufferPool, g: &Tensor) -> Tensor {
    let (n, m) = g.shape();
    match mode {
        KernelMode::Fast => {
            let mut out = pool.take_zeroed(m);
            for grow in g.data().chunks_exact(m.max(1)) {
                for (o, &x) in out.iter_mut().zip(grow) {
                    *o += x;
                }
            }
            Tensor::from_vec(1, m, out)
        }
        KernelMode::Scalar => {
            let mut gr = Tensor::zeros(1, m);
            for i in 0..n {
                for j in 0..m {
                    gr.data_mut()[j] += g.at(i, j);
                }
            }
            gr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, seed: u32) -> Tensor {
        // Deterministic pseudo-random fill with some exact zeros so the
        // zero-skip path executes.
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 8) as f32;
                let x = v / 8_388_608.0 - 1.0;
                if i % 7 == 3 {
                    0.0
                } else {
                    x
                }
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn fast_products_bit_match_scalar() {
        let mut pool = BufferPool::new();
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (8, 8, 8), (13, 17, 9), (0, 4, 6)] {
            let a = t(m, k, 1);
            let b = t(k, n, 2);
            let fast = matmul(KernelMode::Fast, &mut pool, &a, &b);
            let slow = matmul(KernelMode::Scalar, &mut pool, &a, &b);
            assert_eq!(fast.data(), slow.data(), "matmul {m}x{k}x{n}");
            let bt = t(n, k, 3);
            let fast = matmul_t(KernelMode::Fast, &mut pool, &a, &bt);
            let slow = matmul_t(KernelMode::Scalar, &mut pool, &a, &bt);
            assert_eq!(fast.data(), slow.data(), "matmul_t {m}x{k}x{n}");
            let g = t(m, n, 4);
            let fast = t_matmul(KernelMode::Fast, &mut pool, &a, &g);
            let slow = t_matmul(KernelMode::Scalar, &mut pool, &a, &g);
            assert_eq!(fast.data(), slow.data(), "t_matmul {m}x{k}x{n}");
        }
    }

    #[test]
    fn fused_linear_ops_bit_match_their_decompositions() {
        let mut pool = BufferPool::new();
        let x = t(9, 5, 10);
        let w = t(5, 11, 11);
        let b = t(1, 11, 12);
        let fast = linear(KernelMode::Fast, &mut pool, &x, &w, &b);
        let slow = linear(KernelMode::Scalar, &mut pool, &x, &w, &b);
        assert_eq!(fast.data(), slow.data());
        let h = t(9, 6, 13);
        let wh = t(6, 11, 14);
        let fast = linear2(KernelMode::Fast, &mut pool, &x, &w, &h, &wh, &b);
        let slow = linear2(KernelMode::Scalar, &mut pool, &x, &w, &h, &wh, &b);
        assert_eq!(fast.data(), slow.data());
    }

    #[test]
    fn pool_recycles_capacity() {
        let mut pool = BufferPool::new();
        let a = pool.take_zeroed(64);
        let ptr = a.as_ptr();
        pool.give(a);
        assert_eq!(pool.parked(), 1);
        let b = pool.take_zeroed(32);
        assert_eq!(b.as_ptr(), ptr, "buffer was not recycled");
        assert_eq!(b.len(), 32);
        assert!(b.iter().all(|&v| v == 0.0));
        let c = pool.take_copy(&[1.0, 2.0]);
        assert_eq!(c, vec![1.0, 2.0]);
        pool.give(Vec::new());
        assert_eq!(pool.parked(), 0, "empty buffers are not parked");
    }
}
