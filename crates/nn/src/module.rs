//! Named parameter sets: persistent storage, gradient accumulation across
//! rollouts/workers, and text serialization (transfer learning reloads
//! pre-trained EP-GNN weights from these files).

use crate::tape::{Gradients, TapeOps, Var};
use crate::tensor::Tensor;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};

/// A named collection of parameter tensors that outlives any single tape.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParamSet {
    params: BTreeMap<String, Tensor>,
}

/// Accumulated gradients per parameter name.
#[derive(Clone, Debug, Default)]
pub struct GradSet {
    grads: BTreeMap<String, Tensor>,
    /// Number of rollouts accumulated (used for averaging).
    count: usize,
}

/// Error produced when loading a parameter file fails.
#[derive(Debug)]
pub struct LoadParamsError {
    message: String,
}

impl fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid parameter file: {}", self.message)
    }
}

impl std::error::Error for LoadParamsError {}

impl LoadParamsError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl ParamSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a parameter.
    pub fn insert(&mut self, name: impl Into<String>, tensor: Tensor) {
        self.params.insert(name.into(), tensor);
    }

    /// Borrow a parameter by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.params.get(name)
    }

    /// Mutable borrow of a parameter by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Tensor> {
        self.params.get_mut(name)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all tensors.
    pub fn scalar_count(&self) -> usize {
        self.params.values().map(Tensor::len).sum()
    }

    /// Iterates parameters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Copies the subset of parameters whose names start with `prefix` from
    /// `other` into `self` (the transfer-learning reload: EP-GNN weights
    /// carry over, encoder/decoder start fresh). Returns how many tensors
    /// were copied.
    pub fn adopt_prefixed(&mut self, other: &ParamSet, prefix: &str) -> usize {
        let mut n = 0;
        for (name, tensor) in &other.params {
            if name.starts_with(prefix) {
                self.params.insert(name.clone(), tensor.clone());
                n += 1;
            }
        }
        n
    }

    /// Whether every scalar in every tensor is finite (no NaN or ±Inf).
    /// Training uses this as a post-update divergence guard.
    pub fn all_finite(&self) -> bool {
        self.params.values().all(Tensor::all_finite)
    }

    /// Records every parameter as a leaf on `tape` (the training [`Tape`](crate::Tape)
    /// or the inference [`crate::NoGradTape`] — anything implementing
    /// [`TapeOps`]), returning the handle map used by the forward pass and
    /// by [`GradSet::accumulate`].
    pub fn bind<T: TapeOps>(&self, tape: &mut T) -> ParamBinding {
        let mut vars = BTreeMap::new();
        for (name, tensor) in &self.params {
            vars.insert(name.clone(), tape.leaf(tensor.clone()));
        }
        ParamBinding { vars }
    }

    /// Writes the set to a plain-text stream (name, shape, values per line).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "rl-ccd-params v1 {}", self.params.len())?;
        for (name, t) in &self.params {
            write!(w, "{} {} {}", name, t.rows(), t.cols())?;
            for v in t.data() {
                write!(w, " {v}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Reads a set previously written by [`ParamSet::save`].
    ///
    /// # Errors
    /// Returns [`LoadParamsError`] on malformed content.
    pub fn load<R: BufRead>(r: R) -> Result<Self, LoadParamsError> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| LoadParamsError::new("empty file"))?
            .map_err(|e| LoadParamsError::new(e.to_string()))?;
        let mut hp = header.split_whitespace();
        if hp.next() != Some("rl-ccd-params") || hp.next() != Some("v1") {
            return Err(LoadParamsError::new("bad header"));
        }
        let count: usize = hp
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadParamsError::new("bad count"))?;
        let mut set = ParamSet::new();
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| LoadParamsError::new("truncated file"))?
                .map_err(|e| LoadParamsError::new(e.to_string()))?;
            let mut parts = line.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| LoadParamsError::new("missing name"))?;
            let rows: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| LoadParamsError::new("missing rows"))?;
            let cols: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| LoadParamsError::new("missing cols"))?;
            let data: Vec<f32> = parts
                .map(|s| s.parse::<f32>())
                .collect::<Result<_, _>>()
                .map_err(|e| LoadParamsError::new(e.to_string()))?;
            if data.len() != rows * cols {
                return Err(LoadParamsError::new(format!(
                    "tensor {name}: expected {} values, got {}",
                    rows * cols,
                    data.len()
                )));
            }
            set.insert(name, Tensor::from_vec(rows, cols, data));
        }
        Ok(set)
    }
}

/// Tape handles of a bound [`ParamSet`].
#[derive(Clone, Debug)]
pub struct ParamBinding {
    vars: BTreeMap<String, Var>,
}

impl ParamBinding {
    /// The tape variable of parameter `name`.
    ///
    /// # Panics
    /// Panics if the parameter was not bound.
    pub fn var(&self, name: &str) -> Var {
        *self
            .vars
            .get(name)
            .unwrap_or_else(|| panic!("parameter {name} not bound"))
    }

    /// Iterates (name, var) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Var)> {
        self.vars.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl GradSet {
    /// An empty gradient accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates the gradients of one rollout into the set.
    pub fn accumulate(&mut self, binding: &ParamBinding, grads: &mut Gradients) {
        for (name, var) in binding.iter() {
            if let Some(g) = grads.take(var) {
                match self.grads.get_mut(name) {
                    Some(acc) => acc.add_assign(&g),
                    None => {
                        self.grads.insert(name.to_string(), g);
                    }
                }
            }
        }
        self.count += 1;
    }

    /// Merges another accumulator (e.g. from a worker thread) into this one.
    pub fn merge(&mut self, other: GradSet) {
        for (name, g) in other.grads {
            match self.grads.get_mut(&name) {
                Some(acc) => acc.add_assign(&g),
                None => {
                    self.grads.insert(name, g);
                }
            }
        }
        self.count += other.count;
    }

    /// Number of accumulated rollouts.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Gradient for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.grads.get(name)
    }

    /// Divides all gradients by the rollout count, producing the mini-batch
    /// average used by the optimizer. No-op when empty.
    pub fn average(&mut self) {
        if self.count > 1 {
            let k = 1.0 / self.count as f32;
            for g in self.grads.values_mut() {
                g.scale_assign(k);
            }
            self.count = 1;
        }
    }

    /// Multiplies every gradient by `k` (REINFORCE weights a trajectory's
    /// gradient by its advantage).
    pub fn scale(&mut self, k: f32) {
        for g in self.grads.values_mut() {
            g.scale_assign(k);
        }
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .values()
            .map(|g| {
                let n = g.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            let k = max_norm / n;
            for g in self.grads.values_mut() {
                g.scale_assign(k);
            }
        }
    }

    /// Iterates (name, grad) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.grads.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether every gradient element is finite (no NaN or ±Inf). A rollout
    /// whose gradients fail this check must be quarantined, not merged.
    pub fn all_finite(&self) -> bool {
        self.grads.values().all(Tensor::all_finite)
    }

    /// Inserts or replaces one raw gradient tensor without touching the
    /// rollout count (fault injection and tests; normal accumulation goes
    /// through [`GradSet::accumulate`]).
    pub fn set(&mut self, name: impl Into<String>, g: Tensor) {
        self.grads.insert(name.into(), g);
    }

    /// Writes the accumulator to a plain-text stream — the [`ParamSet::save`]
    /// line format, with the rollout count in the header so a transported
    /// gradient behaves identically under [`GradSet::average`]. Rust's
    /// shortest-roundtrip float formatting makes the text round-trip
    /// bit-exact, which the distributed trainer relies on.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "rl-ccd-grads v1 {} {}", self.grads.len(), self.count)?;
        for (name, t) in &self.grads {
            write!(w, "{} {} {}", name, t.rows(), t.cols())?;
            for v in t.data() {
                write!(w, " {v}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Reads a set previously written by [`GradSet::save`].
    ///
    /// # Errors
    /// Returns [`LoadParamsError`] on malformed content.
    pub fn load<R: BufRead>(r: R) -> Result<Self, LoadParamsError> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| LoadParamsError::new("empty gradient text"))?
            .map_err(|e| LoadParamsError::new(e.to_string()))?;
        let mut hp = header.split_whitespace();
        if hp.next() != Some("rl-ccd-grads") || hp.next() != Some("v1") {
            return Err(LoadParamsError::new("bad gradient header"));
        }
        let count: usize = hp
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadParamsError::new("bad gradient tensor count"))?;
        let rollouts: usize = hp
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadParamsError::new("bad gradient rollout count"))?;
        let mut set = GradSet::new();
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| LoadParamsError::new("truncated gradient text"))?
                .map_err(|e| LoadParamsError::new(e.to_string()))?;
            let mut parts = line.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| LoadParamsError::new("missing gradient name"))?;
            let rows: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| LoadParamsError::new("missing gradient rows"))?;
            let cols: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| LoadParamsError::new("missing gradient cols"))?;
            let data: Vec<f32> = parts
                .map(|s| s.parse::<f32>())
                .collect::<Result<_, _>>()
                .map_err(|e| LoadParamsError::new(e.to_string()))?;
            if data.len() != rows * cols {
                return Err(LoadParamsError::new(format!(
                    "gradient {name}: expected {} values, got {}",
                    rows * cols,
                    data.len()
                )));
            }
            set.grads
                .insert(name.to_string(), Tensor::from_vec(rows, cols, data));
        }
        set.count = rollouts;
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    fn demo_params() -> ParamSet {
        let mut p = ParamSet::new();
        p.insert("gnn.w1", Tensor::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]));
        p.insert("dec.v", Tensor::from_vec(1, 2, vec![0.25, -0.75]));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let p = demo_params();
        let mut buf = Vec::new();
        p.save(&mut buf).expect("write to memory");
        let loaded = ParamSet::load(&buf[..]).expect("parse");
        assert_eq!(p, loaded);
        assert_eq!(loaded.scalar_count(), 6);
    }

    #[test]
    fn gradset_save_load_roundtrip_preserves_count() {
        let p = demo_params();
        let mut tape = Tape::new();
        let binding = p.bind(&mut tape);
        let picks: Vec<Var> = binding.iter().map(|(_, v)| v).collect();
        let mut sum = tape.pick(picks[0], 0, 0);
        for &v in &picks[1..] {
            let p = tape.pick(v, 0, 0);
            sum = tape.add(sum, p);
        }
        let mut grads = tape.backward(sum);
        let mut gs = GradSet::new();
        gs.accumulate(&binding, &mut grads);
        assert_eq!(gs.count(), 1);
        let mut buf = Vec::new();
        gs.save(&mut buf).expect("write to memory");
        let loaded = GradSet::load(&buf[..]).expect("parse");
        assert_eq!(loaded.count(), gs.count());
        for (name, g) in gs.iter() {
            assert_eq!(loaded.get(name).map(|t| t.data()), Some(g.data()));
        }
        assert!(GradSet::load(&b"rl-ccd-grads v1 1\nw 1 1 0.5\n"[..]).is_err());
        assert!(GradSet::load(&b"nope"[..]).is_err());
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(ParamSet::load(&b"nope"[..]).is_err());
        assert!(ParamSet::load(&b"rl-ccd-params v1 1\nw 2 2 1.0\n"[..]).is_err());
        let err = ParamSet::load(&b""[..]).expect_err("empty");
        assert!(err.to_string().contains("invalid parameter file"));
    }

    #[test]
    fn adopt_prefixed_copies_subset() {
        let donor = demo_params();
        let mut target = ParamSet::new();
        target.insert("dec.v", Tensor::zeros(1, 2));
        let n = target.adopt_prefixed(&donor, "gnn.");
        assert_eq!(n, 1);
        assert_eq!(target.get("gnn.w1"), donor.get("gnn.w1"));
        // dec.v untouched.
        assert_eq!(target.get("dec.v"), Some(&Tensor::zeros(1, 2)));
    }

    #[test]
    fn binding_and_grad_accumulation() {
        let p = demo_params();
        let run = |scale: f32| {
            let mut tape = Tape::new();
            let binding = p.bind(&mut tape);
            let w = binding.var("gnn.w1");
            let x = tape.leaf(Tensor::from_vec(1, 2, vec![scale, 1.0]));
            let h = tape.matmul(x, w);
            let ones = tape.leaf(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
            let loss = tape.matmul(h, ones);
            let grads = tape.backward(loss);
            (binding, grads)
        };
        let mut acc = GradSet::new();
        let (b1, mut g1) = run(1.0);
        acc.accumulate(&b1, &mut g1);
        let (b2, mut g2) = run(3.0);
        let mut acc2 = GradSet::new();
        acc2.accumulate(&b2, &mut g2);
        acc.merge(acc2);
        assert_eq!(acc.count(), 2);
        acc.average();
        // d loss/d w1 = xᵀ·1: averaged over scale 1 and 3 → x ≈ (2, 1).
        let g = acc.get("gnn.w1").expect("grad");
        assert!((g.at(0, 0) - 2.0).abs() < 1e-5);
        assert!((g.at(1, 0) - 1.0).abs() < 1e-5);
        assert!(acc.global_norm() > 0.0);
        let before = acc.global_norm();
        acc.clip_global_norm(before / 2.0);
        assert!((acc.global_norm() - before / 2.0).abs() < 1e-4);
    }
}
