//! Reverse-mode automatic differentiation on a tape of tensor operations.
//!
//! A [`Tape`] records every operation of a forward pass; [`Tape::backward`]
//! replays it in reverse, producing gradients for every recorded variable.
//! The op set is exactly what the RL-CCD networks need: dense/sparse matrix
//! products, broadcasting adds, elementwise nonlinearities, gather/pick, a
//! trainable-scalar gate, a masked log-softmax for the pointer-attention
//! decoder, and fused linear layers ([`TapeOps::linear`],
//! [`TapeOps::linear2`]) for the dense/recurrent gate bodies.
//!
//! Inference does not need gradients: [`NoGradTape`] executes the same op
//! set while storing only the computed values (no op records, so nothing to
//! replay and nothing for [`Tape::backward`] to walk), and supports
//! [`NoGradTape::truncate`] so a selection loop can reclaim each step's
//! intermediates. Both executors implement [`TapeOps`] and route every op
//! through the shared kernels in [`crate::kernels`], which is what makes
//! training-mode and inference-mode forwards bit-identical.
//!
//! Each executor runs in a [`KernelMode`]: `Fast` (the default) executes
//! the blocked kernels over buffers recycled through an internal
//! [`BufferPool`] — [`Tape::reset`] and [`NoGradTape::truncate`] return
//! dropped values to the pool, so steady-state rollouts allocate nothing
//! per step. [`Tape::scalar_reference`] / [`NoGradTape::scalar_reference`]
//! select the original scalar loops (per-op allocation, fused ops recorded
//! as their multi-op decompositions) as a pinned baseline; the two modes
//! agree bit-for-bit on every value and gradient, which the kernel parity
//! proptests assert.

use crate::kernels::{self, BufferPool, KernelMode};
use crate::sparse::SharedCsr;
use crate::tensor::Tensor;
use std::sync::Arc;

/// Handle to a tensor recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Raw node index (stable for the lifetime of the tape).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug)]
enum Op {
    Leaf,
    Matmul(Var, Var),
    Spmm(SharedCsr, Var),
    Add(Var, Var),
    AddRow(Var, Var),
    Mul(Var, Var),
    ScaleConst(Var, f32),
    ScalarMul(Var, Var),
    AffineScalar(Var, f32, f32),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    GatherRows(Var, Arc<Vec<u32>>),
    Pick(Var, usize, usize),
    MaskedLogSoftmax(Var, Arc<Vec<bool>>),
    Mix(Var, Var, Var),
    Linear(Var, Var, Var),
    Linear2(Var, Var, Var, Var, Var),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

/// The autodiff tape: a growing list of computed tensors plus the recipe
/// that produced each.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    mode: KernelMode,
    pool: BufferPool,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`, if it received any.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.index()).and_then(|g| g.as_ref())
    }

    /// Takes ownership of the gradient for `v`.
    pub fn take(&mut self, v: Var) -> Option<Tensor> {
        self.grads.get_mut(v.index()).and_then(|g| g.take())
    }
}

/// `clone()` that draws from the pool in fast mode.
fn clone_grad(mode: KernelMode, pool: &mut BufferPool, g: &Tensor) -> Tensor {
    match mode {
        KernelMode::Fast => Tensor::from_vec(g.rows(), g.cols(), pool.take_copy(g.data())),
        KernelMode::Scalar => g.clone(),
    }
}

/// `Tensor::zeros()` that draws from the pool in fast mode.
fn zeroed(mode: KernelMode, pool: &mut BufferPool, rows: usize, cols: usize) -> Tensor {
    match mode {
        KernelMode::Fast => Tensor::from_vec(rows, cols, pool.take_zeroed(rows * cols)),
        KernelMode::Scalar => Tensor::zeros(rows, cols),
    }
}

/// Parks a finished gradient buffer in fast mode; plain drop in scalar
/// mode (the reference implementation never pools).
fn recycle(mode: KernelMode, pool: &mut BufferPool, t: Tensor) {
    if mode == KernelMode::Fast {
        pool.give_tensor(t);
    }
}

impl Tape {
    /// An empty tape running the fast kernels.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty tape running the original scalar loops — the pinned
    /// reference implementation the fast kernels are parity-tested and
    /// benchmarked against. Fused ops record their multi-op
    /// decompositions, reproducing the pre-fusion tape exactly.
    pub fn scalar_reference() -> Self {
        Self {
            mode: KernelMode::Scalar,
            ..Self::default()
        }
    }

    /// Which kernel implementation this tape executes.
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the tape for reuse, recycling every node's storage through
    /// the internal buffer pool (fast mode). A rollout loop that resets
    /// one tape per trajectory reaches a steady state where forward ops
    /// allocate nothing.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            if self.mode == KernelMode::Fast {
                self.pool.give_tensor(node.value);
            }
        }
    }

    /// Records an input/parameter tensor.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The value of a recorded variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.index()].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Dense matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = kernels::matmul(
            self.mode,
            &mut self.pool,
            &self.nodes[a.index()].value,
            &self.nodes[b.index()].value,
        );
        self.push(v, Op::Matmul(a, b))
    }

    /// Sparse × dense product `csr · a` (no gradient flows to the CSR).
    pub fn spmm(&mut self, csr: &SharedCsr, a: Var) -> Var {
        let v = kernels::spmm(self.mode, &mut self.pool, csr, &self.nodes[a.index()].value);
        self.push(v, Op::Spmm(Arc::clone(csr), a))
    }

    /// Elementwise sum of two same-shape tensors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = kernels::add(
            self.mode,
            &mut self.pool,
            &self.nodes[a.index()].value,
            &self.nodes[b.index()].value,
        );
        self.push(v, Op::Add(a, b))
    }

    /// Adds a 1×m row vector to every row of an n×m matrix.
    ///
    /// # Panics
    /// Panics if `row` is not 1×m.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let v = kernels::add_row(
            self.mode,
            &mut self.pool,
            &self.nodes[a.index()].value,
            &self.nodes[row.index()].value,
        );
        self.push(v, Op::AddRow(a, row))
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = kernels::mul(
            self.mode,
            &mut self.pool,
            &self.nodes[a.index()].value,
            &self.nodes[b.index()].value,
        );
        self.push(v, Op::Mul(a, b))
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let v = kernels::scale(self.mode, &mut self.pool, &self.nodes[a.index()].value, k);
        self.push(v, Op::ScaleConst(a, k))
    }

    /// Multiplies a tensor by a trainable 1×1 scalar.
    ///
    /// # Panics
    /// Panics if `s` is not 1×1.
    pub fn scalar_mul(&mut self, s: Var, a: Var) -> Var {
        let v = kernels::scalar_mul(
            self.mode,
            &mut self.pool,
            &self.nodes[s.index()].value,
            &self.nodes[a.index()].value,
        );
        self.push(v, Op::ScalarMul(s, a))
    }

    /// Fused gated interpolation `s·a + (1−s)·b` with a trainable 1×1 gate
    /// `s` (EP-GNN's Eq. 2 mixing in one op instead of four).
    ///
    /// # Panics
    /// Panics if `s` is not 1×1 or `a`/`b` shapes differ.
    pub fn mix(&mut self, s: Var, a: Var, b: Var) -> Var {
        let v = kernels::mix(
            self.mode,
            &mut self.pool,
            &self.nodes[s.index()].value,
            &self.nodes[a.index()].value,
            &self.nodes[b.index()].value,
        );
        self.push(v, Op::Mix(s, a, b))
    }

    /// Elementwise affine map `k·x + c`.
    pub fn affine(&mut self, a: Var, k: f32, c: f32) -> Var {
        let v = kernels::affine(
            self.mode,
            &mut self.pool,
            &self.nodes[a.index()].value,
            k,
            c,
        );
        self.push(v, Op::AffineScalar(a, k, c))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = kernels::sigmoid(self.mode, &mut self.pool, &self.nodes[a.index()].value);
        self.push(v, Op::Sigmoid(a))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = kernels::tanh(self.mode, &mut self.pool, &self.nodes[a.index()].value);
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = kernels::relu(self.mode, &mut self.pool, &self.nodes[a.index()].value);
        self.push(v, Op::Relu(a))
    }

    /// Gathers the given rows of `a` into a new (k×m) tensor.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&mut self, a: Var, rows: Arc<Vec<u32>>) -> Var {
        let v = kernels::gather_rows(
            self.mode,
            &mut self.pool,
            &self.nodes[a.index()].value,
            &rows,
        );
        self.push(v, Op::GatherRows(a, rows))
    }

    /// Extracts element `(r, c)` as a 1×1 tensor.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn pick(&mut self, a: Var, r: usize, c: usize) -> Var {
        let v = kernels::pick(
            self.mode,
            &mut self.pool,
            &self.nodes[a.index()].value,
            r,
            c,
        );
        self.push(v, Op::Pick(a, r, c))
    }

    /// Masked log-softmax over all elements of `a` (treated flat, e.g. an
    /// n×1 score vector). Masked-out entries get `-∞` log-probability and
    /// receive zero gradient.
    ///
    /// # Panics
    /// Panics if the mask length differs from the element count or no entry
    /// is valid.
    pub fn masked_log_softmax(&mut self, a: Var, mask: Arc<Vec<bool>>) -> Var {
        let v = kernels::masked_log_softmax(
            self.mode,
            &mut self.pool,
            &self.nodes[a.index()].value,
            &mask,
        );
        self.push(v, Op::MaskedLogSoftmax(a, mask))
    }

    /// Fused dense layer `x·w + b`: one tape node instead of the
    /// matmul + add_row pair, bit-identical to that pair. In scalar
    /// reference mode the decomposed pair is recorded instead, so the
    /// baseline tape matches the pre-fusion implementation op for op.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        if self.mode == KernelMode::Scalar {
            let h = self.matmul(x, w);
            return self.add_row(h, b);
        }
        let v = kernels::linear(
            self.mode,
            &mut self.pool,
            &self.nodes[x.index()].value,
            &self.nodes[w.index()].value,
            &self.nodes[b.index()].value,
        );
        self.push(v, Op::Linear(x, w, b))
    }

    /// Fused gate pre-activation `x·wx + h·wh + b` — the LSTM/GRU gate
    /// body as one tape node instead of four (two matmuls, add, add_row),
    /// bit-identical to the decomposition (which scalar reference mode
    /// records instead).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn linear2(&mut self, x: Var, wx: Var, h: Var, wh: Var, b: Var) -> Var {
        if self.mode == KernelMode::Scalar {
            let xs = self.matmul(x, wx);
            let hs = self.matmul(h, wh);
            let s = self.add(xs, hs);
            return self.add_row(s, b);
        }
        let v = kernels::linear2(
            self.mode,
            &mut self.pool,
            &self.nodes[x.index()].value,
            &self.nodes[wx.index()].value,
            &self.nodes[h.index()].value,
            &self.nodes[wh.index()].value,
            &self.nodes[b.index()].value,
        );
        self.push(v, Op::Linear2(x, wx, h, wh, b))
    }

    /// Runs reverse-mode differentiation from `loss` (which must be 1×1)
    /// and returns the gradient of every variable that participates.
    ///
    /// Gradient temporaries cycle through a per-call buffer pool in fast
    /// mode, so a backward pass performs O(live gradients) allocations
    /// rather than O(ops).
    ///
    /// # Panics
    /// Panics if `loss` is not a scalar.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        rl_ccd_obs::counter!("nn.tape.backward_passes", 1);
        rl_ccd_obs::counter!("nn.tape.backward_nodes", self.nodes.len());
        let mode = self.mode;
        let mut pool = BufferPool::new();
        let pool = &mut pool;
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.index()] = Some(Tensor::from_vec(1, 1, vec![1.0]));
        for idx in (0..self.nodes.len()).rev() {
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[idx];
            match &node.op {
                Op::Leaf => {
                    grads[idx] = Some(g);
                    continue;
                }
                Op::Matmul(a, b) => {
                    let ga = kernels::matmul_t(mode, pool, &g, &self.nodes[b.index()].value);
                    let gb = kernels::t_matmul(mode, pool, &self.nodes[a.index()].value, &g);
                    accumulate(&mut grads, mode, pool, *a, ga);
                    accumulate(&mut grads, mode, pool, *b, gb);
                    recycle(mode, pool, g);
                }
                Op::Spmm(csr, a) => {
                    let ga = kernels::spmm_t(mode, pool, csr, &g);
                    accumulate(&mut grads, mode, pool, *a, ga);
                    recycle(mode, pool, g);
                }
                Op::Add(a, b) => {
                    let ga = clone_grad(mode, pool, &g);
                    accumulate(&mut grads, mode, pool, *a, ga);
                    accumulate(&mut grads, mode, pool, *b, g);
                }
                Op::AddRow(a, row) => {
                    let gr = kernels::col_sum(mode, pool, &g);
                    accumulate(&mut grads, mode, pool, *a, g);
                    accumulate(&mut grads, mode, pool, *row, gr);
                }
                Op::Mul(a, b) => {
                    let mut ga = clone_grad(mode, pool, &g);
                    for (x, y) in ga
                        .data_mut()
                        .iter_mut()
                        .zip(self.nodes[b.index()].value.data())
                    {
                        *x *= y;
                    }
                    let mut gb = g;
                    for (x, y) in gb
                        .data_mut()
                        .iter_mut()
                        .zip(self.nodes[a.index()].value.data())
                    {
                        *x *= y;
                    }
                    accumulate(&mut grads, mode, pool, *a, ga);
                    accumulate(&mut grads, mode, pool, *b, gb);
                }
                Op::ScaleConst(a, k) => {
                    let mut ga = g;
                    ga.scale_assign(*k);
                    accumulate(&mut grads, mode, pool, *a, ga);
                }
                Op::ScalarMul(s, a) => {
                    let k = self.nodes[s.index()].value.data()[0];
                    let mut gs = 0.0f32;
                    for (gi, ai) in g.data().iter().zip(self.nodes[a.index()].value.data()) {
                        gs += gi * ai;
                    }
                    let mut ga = g;
                    ga.scale_assign(k);
                    accumulate(&mut grads, mode, pool, *a, ga);
                    accumulate(&mut grads, mode, pool, *s, Tensor::from_vec(1, 1, vec![gs]));
                }
                Op::AffineScalar(a, k, _c) => {
                    let mut ga = g;
                    ga.scale_assign(*k);
                    accumulate(&mut grads, mode, pool, *a, ga);
                }
                Op::Sigmoid(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(node.value.data()) {
                        *x *= y * (1.0 - y);
                    }
                    accumulate(&mut grads, mode, pool, *a, ga);
                }
                Op::Tanh(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(node.value.data()) {
                        *x *= 1.0 - y * y;
                    }
                    accumulate(&mut grads, mode, pool, *a, ga);
                }
                Op::Relu(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(node.value.data()) {
                        if *y <= 0.0 {
                            *x = 0.0;
                        }
                    }
                    accumulate(&mut grads, mode, pool, *a, ga);
                }
                Op::GatherRows(a, rows) => {
                    let (n, m) = self.nodes[a.index()].value.shape();
                    let mut ga = zeroed(mode, pool, n, m);
                    for (i, &r) in rows.iter().enumerate() {
                        let dst = r as usize * m;
                        for j in 0..m {
                            ga.data_mut()[dst + j] += g.at(i, j);
                        }
                    }
                    accumulate(&mut grads, mode, pool, *a, ga);
                    recycle(mode, pool, g);
                }
                Op::Pick(a, r, c) => {
                    let (n, m) = self.nodes[a.index()].value.shape();
                    let mut ga = zeroed(mode, pool, n, m);
                    ga.set(*r, *c, g.data()[0]);
                    accumulate(&mut grads, mode, pool, *a, ga);
                    recycle(mode, pool, g);
                }
                Op::Mix(s, a, b) => {
                    let k = self.nodes[s.index()].value.data()[0];
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    let mut gs = 0.0f32;
                    for ((gi, ai), bi) in g.data().iter().zip(av.data()).zip(bv.data()) {
                        gs += gi * (ai - bi);
                    }
                    let mut ga = clone_grad(mode, pool, &g);
                    ga.scale_assign(k);
                    let mut gb = g;
                    gb.scale_assign(1.0 - k);
                    accumulate(&mut grads, mode, pool, *a, ga);
                    accumulate(&mut grads, mode, pool, *b, gb);
                    accumulate(&mut grads, mode, pool, *s, Tensor::from_vec(1, 1, vec![gs]));
                }
                Op::MaskedLogSoftmax(a, mask) => {
                    // d logp_i / d x_j = δ_ij − p_j (valid j).
                    let mut gsum = 0.0f32;
                    for (i, &gi) in g.data().iter().enumerate() {
                        if mask[i] {
                            gsum += gi;
                        }
                    }
                    let (n, m) = node.value.shape();
                    let mut ga = zeroed(mode, pool, n, m);
                    for i in 0..mask.len() {
                        if mask[i] {
                            let p = node.value.data()[i].exp();
                            ga.data_mut()[i] = g.data()[i] - p * gsum;
                        }
                    }
                    accumulate(&mut grads, mode, pool, *a, ga);
                    recycle(mode, pool, g);
                }
                Op::Linear(x, w, b) => {
                    // Exactly the decomposed add_row + matmul backward flow:
                    // gb = colsum(g), gx = g·wᵀ, gw = xᵀ·g.
                    let gb = kernels::col_sum(mode, pool, &g);
                    let gx = kernels::matmul_t(mode, pool, &g, &self.nodes[w.index()].value);
                    let gw = kernels::t_matmul(mode, pool, &self.nodes[x.index()].value, &g);
                    accumulate(&mut grads, mode, pool, *x, gx);
                    accumulate(&mut grads, mode, pool, *w, gw);
                    accumulate(&mut grads, mode, pool, *b, gb);
                    recycle(mode, pool, g);
                }
                Op::Linear2(x, wx, h, wh, b) => {
                    // The decomposed add_row + add + two-matmul backward flow.
                    let gb = kernels::col_sum(mode, pool, &g);
                    let gx = kernels::matmul_t(mode, pool, &g, &self.nodes[wx.index()].value);
                    let gwx = kernels::t_matmul(mode, pool, &self.nodes[x.index()].value, &g);
                    let gh = kernels::matmul_t(mode, pool, &g, &self.nodes[wh.index()].value);
                    let gwh = kernels::t_matmul(mode, pool, &self.nodes[h.index()].value, &g);
                    accumulate(&mut grads, mode, pool, *x, gx);
                    accumulate(&mut grads, mode, pool, *wx, gwx);
                    accumulate(&mut grads, mode, pool, *h, gh);
                    accumulate(&mut grads, mode, pool, *wh, gwh);
                    accumulate(&mut grads, mode, pool, *b, gb);
                    recycle(mode, pool, g);
                }
            }
        }
        Gradients { grads }
    }
}

fn accumulate(
    grads: &mut [Option<Tensor>],
    mode: KernelMode,
    pool: &mut BufferPool,
    v: Var,
    g: Tensor,
) {
    match &mut grads[v.index()] {
        Some(existing) => {
            existing.add_assign(&g);
            recycle(mode, pool, g);
        }
        slot @ None => *slot = Some(g),
    }
}

/// The forward op set shared by the training [`Tape`] and the inference
/// [`NoGradTape`]. Model code written against `T: TapeOps` runs unchanged
/// on either executor; because both route every op through the same
/// kernel, the computed values are bit-identical.
pub trait TapeOps {
    /// Records an input/parameter tensor.
    fn leaf(&mut self, value: Tensor) -> Var;
    /// The value of a recorded variable.
    fn value(&self, v: Var) -> &Tensor;
    /// Dense matrix product `a · b`.
    fn matmul(&mut self, a: Var, b: Var) -> Var;
    /// Sparse × dense product `csr · a`.
    fn spmm(&mut self, csr: &SharedCsr, a: Var) -> Var;
    /// Elementwise sum of two same-shape tensors.
    fn add(&mut self, a: Var, b: Var) -> Var;
    /// Adds a 1×m row vector to every row of an n×m matrix.
    fn add_row(&mut self, a: Var, row: Var) -> Var;
    /// Elementwise (Hadamard) product.
    fn mul(&mut self, a: Var, b: Var) -> Var;
    /// Multiplies by a compile-time constant.
    fn scale(&mut self, a: Var, k: f32) -> Var;
    /// Multiplies a tensor by a trainable 1×1 scalar.
    fn scalar_mul(&mut self, s: Var, a: Var) -> Var;
    /// Fused gated interpolation `s·a + (1−s)·b`.
    fn mix(&mut self, s: Var, a: Var, b: Var) -> Var;
    /// Elementwise affine map `k·x + c`.
    fn affine(&mut self, a: Var, k: f32, c: f32) -> Var;
    /// Elementwise logistic sigmoid.
    fn sigmoid(&mut self, a: Var) -> Var;
    /// Elementwise tanh.
    fn tanh(&mut self, a: Var) -> Var;
    /// Elementwise ReLU.
    fn relu(&mut self, a: Var) -> Var;
    /// Gathers the given rows of `a` into a new (k×m) tensor.
    fn gather_rows(&mut self, a: Var, rows: Arc<Vec<u32>>) -> Var;
    /// Extracts element `(r, c)` as a 1×1 tensor.
    fn pick(&mut self, a: Var, r: usize, c: usize) -> Var;
    /// Masked log-softmax over all elements of `a` (treated flat).
    fn masked_log_softmax(&mut self, a: Var, mask: Arc<Vec<bool>>) -> Var;
    /// Fused dense layer `x·w + b` (bit-identical to matmul + add_row).
    fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let h = self.matmul(x, w);
        self.add_row(h, b)
    }
    /// Fused gate pre-activation `x·wx + h·wh + b` (bit-identical to
    /// matmul + matmul + add + add_row).
    fn linear2(&mut self, x: Var, wx: Var, h: Var, wh: Var, b: Var) -> Var {
        let xs = self.matmul(x, wx);
        let hs = self.matmul(h, wh);
        let s = self.add(xs, hs);
        self.add_row(s, b)
    }
}

impl TapeOps for Tape {
    fn leaf(&mut self, value: Tensor) -> Var {
        Tape::leaf(self, value)
    }
    fn value(&self, v: Var) -> &Tensor {
        Tape::value(self, v)
    }
    fn matmul(&mut self, a: Var, b: Var) -> Var {
        Tape::matmul(self, a, b)
    }
    fn spmm(&mut self, csr: &SharedCsr, a: Var) -> Var {
        Tape::spmm(self, csr, a)
    }
    fn add(&mut self, a: Var, b: Var) -> Var {
        Tape::add(self, a, b)
    }
    fn add_row(&mut self, a: Var, row: Var) -> Var {
        Tape::add_row(self, a, row)
    }
    fn mul(&mut self, a: Var, b: Var) -> Var {
        Tape::mul(self, a, b)
    }
    fn scale(&mut self, a: Var, k: f32) -> Var {
        Tape::scale(self, a, k)
    }
    fn scalar_mul(&mut self, s: Var, a: Var) -> Var {
        Tape::scalar_mul(self, s, a)
    }
    fn mix(&mut self, s: Var, a: Var, b: Var) -> Var {
        Tape::mix(self, s, a, b)
    }
    fn affine(&mut self, a: Var, k: f32, c: f32) -> Var {
        Tape::affine(self, a, k, c)
    }
    fn sigmoid(&mut self, a: Var) -> Var {
        Tape::sigmoid(self, a)
    }
    fn tanh(&mut self, a: Var) -> Var {
        Tape::tanh(self, a)
    }
    fn relu(&mut self, a: Var) -> Var {
        Tape::relu(self, a)
    }
    fn gather_rows(&mut self, a: Var, rows: Arc<Vec<u32>>) -> Var {
        Tape::gather_rows(self, a, rows)
    }
    fn pick(&mut self, a: Var, r: usize, c: usize) -> Var {
        Tape::pick(self, a, r, c)
    }
    fn masked_log_softmax(&mut self, a: Var, mask: Arc<Vec<bool>>) -> Var {
        Tape::masked_log_softmax(self, a, mask)
    }
    fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        Tape::linear(self, x, w, b)
    }
    fn linear2(&mut self, x: Var, wx: Var, h: Var, wh: Var, b: Var) -> Var {
        Tape::linear2(self, x, wx, h, wh, b)
    }
}

/// Inference-only executor: runs the forward op set while storing nothing
/// but the computed values — no op records, no gradient machinery, and an
/// explicit [`NoGradTape::truncate`] so a selection loop can drop each
/// step's intermediates instead of growing without bound. Truncated
/// values return their storage to the internal buffer pool, so a
/// steady-state selection loop allocates nothing per step.
#[derive(Debug, Default)]
pub struct NoGradTape {
    values: Vec<Tensor>,
    mode: KernelMode,
    pool: BufferPool,
}

impl NoGradTape {
    /// An empty executor running the fast kernels.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty executor running the original scalar loops (the pinned
    /// reference implementation; see [`Tape::scalar_reference`]).
    pub fn scalar_reference() -> Self {
        Self {
            mode: KernelMode::Scalar,
            ..Self::default()
        }
    }

    /// Which kernel implementation this executor runs.
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been computed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Drops every value recorded after position `len`, invalidating their
    /// [`Var`] handles and recycling their storage through the buffer pool
    /// (fast mode). The caller must re-[`leaf`](TapeOps::leaf) any tensor
    /// it still needs (the selection loop carries the previous action
    /// embedding and recurrent state across a truncation this way).
    pub fn truncate(&mut self, len: usize) {
        if len >= self.values.len() {
            return;
        }
        for value in self.values.drain(len..) {
            if self.mode == KernelMode::Fast {
                self.pool.give_tensor(value);
            }
        }
    }

    fn push(&mut self, value: Tensor) -> Var {
        self.values.push(value);
        Var(self.values.len() - 1)
    }
}

impl TapeOps for NoGradTape {
    fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value)
    }
    fn value(&self, v: Var) -> &Tensor {
        &self.values[v.index()]
    }
    fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = kernels::matmul(
            self.mode,
            &mut self.pool,
            &self.values[a.index()],
            &self.values[b.index()],
        );
        self.push(v)
    }
    fn spmm(&mut self, csr: &SharedCsr, a: Var) -> Var {
        let v = kernels::spmm(self.mode, &mut self.pool, csr, &self.values[a.index()]);
        self.push(v)
    }
    fn add(&mut self, a: Var, b: Var) -> Var {
        let v = kernels::add(
            self.mode,
            &mut self.pool,
            &self.values[a.index()],
            &self.values[b.index()],
        );
        self.push(v)
    }
    fn add_row(&mut self, a: Var, row: Var) -> Var {
        let v = kernels::add_row(
            self.mode,
            &mut self.pool,
            &self.values[a.index()],
            &self.values[row.index()],
        );
        self.push(v)
    }
    fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = kernels::mul(
            self.mode,
            &mut self.pool,
            &self.values[a.index()],
            &self.values[b.index()],
        );
        self.push(v)
    }
    fn scale(&mut self, a: Var, k: f32) -> Var {
        let v = kernels::scale(self.mode, &mut self.pool, &self.values[a.index()], k);
        self.push(v)
    }
    fn scalar_mul(&mut self, s: Var, a: Var) -> Var {
        let v = kernels::scalar_mul(
            self.mode,
            &mut self.pool,
            &self.values[s.index()],
            &self.values[a.index()],
        );
        self.push(v)
    }
    fn mix(&mut self, s: Var, a: Var, b: Var) -> Var {
        let v = kernels::mix(
            self.mode,
            &mut self.pool,
            &self.values[s.index()],
            &self.values[a.index()],
            &self.values[b.index()],
        );
        self.push(v)
    }
    fn affine(&mut self, a: Var, k: f32, c: f32) -> Var {
        let v = kernels::affine(self.mode, &mut self.pool, &self.values[a.index()], k, c);
        self.push(v)
    }
    fn sigmoid(&mut self, a: Var) -> Var {
        let v = kernels::sigmoid(self.mode, &mut self.pool, &self.values[a.index()]);
        self.push(v)
    }
    fn tanh(&mut self, a: Var) -> Var {
        let v = kernels::tanh(self.mode, &mut self.pool, &self.values[a.index()]);
        self.push(v)
    }
    fn relu(&mut self, a: Var) -> Var {
        let v = kernels::relu(self.mode, &mut self.pool, &self.values[a.index()]);
        self.push(v)
    }
    fn gather_rows(&mut self, a: Var, rows: Arc<Vec<u32>>) -> Var {
        let v = kernels::gather_rows(self.mode, &mut self.pool, &self.values[a.index()], &rows);
        self.push(v)
    }
    fn pick(&mut self, a: Var, r: usize, c: usize) -> Var {
        let v = kernels::pick(self.mode, &mut self.pool, &self.values[a.index()], r, c);
        self.push(v)
    }
    fn masked_log_softmax(&mut self, a: Var, mask: Arc<Vec<bool>>) -> Var {
        let v =
            kernels::masked_log_softmax(self.mode, &mut self.pool, &self.values[a.index()], &mask);
        self.push(v)
    }
    fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        if self.mode == KernelMode::Scalar {
            let h = TapeOps::matmul(self, x, w);
            return TapeOps::add_row(self, h, b);
        }
        let v = kernels::linear(
            self.mode,
            &mut self.pool,
            &self.values[x.index()],
            &self.values[w.index()],
            &self.values[b.index()],
        );
        self.push(v)
    }
    fn linear2(&mut self, x: Var, wx: Var, h: Var, wh: Var, b: Var) -> Var {
        if self.mode == KernelMode::Scalar {
            let xs = TapeOps::matmul(self, x, wx);
            let hs = TapeOps::matmul(self, h, wh);
            let s = TapeOps::add(self, xs, hs);
            return TapeOps::add_row(self, s, b);
        }
        let v = kernels::linear2(
            self.mode,
            &mut self.pool,
            &self.values[x.index()],
            &self.values[wx.index()],
            &self.values[h.index()],
            &self.values[wh.index()],
            &self.values[b.index()],
        );
        self.push(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Csr;

    /// Central-difference gradient check for a scalar function of one leaf.
    fn grad_check(input: Tensor, f: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = f(&mut tape, x);
        let grads = tape.backward(loss);
        let g = grads.get(x).expect("input must receive gradient").clone();
        let eps = 1e-2;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut tp = Tape::new();
            let xp = tp.leaf(plus);
            let vp = f(&mut tp, xp);
            let lp = tp.value(vp).data()[0];
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let mut tm = Tape::new();
            let xm = tm.leaf(minus);
            let vm = f(&mut tm, xm);
            let lm = tm.value(vm).data()[0];
            let num = (lp - lm) / (2.0 * eps);
            let ana = g.data()[i];
            assert!(
                (num - ana).abs() < tol * (1.0 + num.abs().max(ana.abs())),
                "element {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn matmul_chain_gradient() {
        let w = Tensor::from_vec(3, 2, vec![0.3, -0.2, 0.5, 0.7, -0.4, 0.1]);
        grad_check(
            Tensor::from_vec(1, 3, vec![0.5, -1.0, 2.0]),
            move |t, x| {
                let wv = t.leaf(w.clone());
                let h = t.matmul(x, wv);
                let h = t.tanh(h);
                let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
                t.matmul(h, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn sigmoid_mul_add_gradient() {
        let b = Tensor::from_vec(1, 4, vec![0.1, 0.2, -0.3, 0.4]);
        grad_check(
            Tensor::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]),
            move |t, x| {
                let bv = t.leaf(b.clone());
                let s = t.sigmoid(x);
                let m = t.mul(s, bv);
                let m = t.affine(m, 2.0, 0.25);
                let ones = t.leaf(Tensor::from_vec(4, 1, vec![1.0; 4]));
                t.matmul(m, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn scalar_gate_gradient() {
        // loss = sum(sigmoid(s) * x): check grad w.r.t. the scalar gate.
        let x = Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        grad_check(
            Tensor::from_vec(1, 1, vec![0.3]),
            move |t, s| {
                let xv = t.leaf(x.clone());
                let sg = t.sigmoid(s);
                let y = t.scalar_mul(sg, xv);
                let ones = t.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
                t.matmul(y, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn spmm_gradient() {
        let csr: SharedCsr = Arc::new(Csr::new(
            2,
            3,
            vec![0, 2, 3],
            vec![0, 2, 1],
            vec![0.5, 2.0, -1.0],
        ));
        grad_check(
            Tensor::from_vec(3, 2, vec![1.0, 2.0, -0.5, 0.3, 0.7, -1.2]),
            move |t, x| {
                let y = t.spmm(&csr, x);
                let y = t.tanh(y);
                let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0; 2]));
                let col = t.matmul(y, ones);
                let onesr = t.leaf(Tensor::from_vec(1, 2, vec![1.0; 2]));
                t.matmul(onesr, col)
            },
            1e-2,
        );
    }

    #[test]
    fn masked_log_softmax_gradient() {
        let mask = Arc::new(vec![true, false, true, true]);
        grad_check(
            Tensor::from_vec(4, 1, vec![0.2, 9.0, -0.5, 1.0]),
            move |t, x| {
                let lp = t.masked_log_softmax(x, Arc::clone(&mask));
                t.pick(lp, 2, 0)
            },
            1e-2,
        );
    }

    #[test]
    fn masked_entries_have_zero_probability_and_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(3, 1, vec![1.0, 100.0, 2.0]));
        let mask = Arc::new(vec![true, false, true]);
        let lp = tape.masked_log_softmax(x, mask);
        assert_eq!(tape.value(lp).at(1, 0), f32::NEG_INFINITY);
        // Valid entries normalize.
        let p: f32 = [0, 2].iter().map(|&i| tape.value(lp).at(i, 0).exp()).sum();
        assert!((p - 1.0).abs() < 1e-5);
        let loss = tape.pick(lp, 0, 0);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).expect("grad").at(1, 0), 0.0);
    }

    #[test]
    fn gather_and_addrow_gradient() {
        let rows = Arc::new(vec![2u32, 0u32]);
        let bias = Tensor::from_vec(1, 2, vec![0.3, -0.1]);
        grad_check(
            Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            move |t, x| {
                let g = t.gather_rows(x, Arc::clone(&rows));
                let bv = t.leaf(bias.clone());
                let g = t.add_row(g, bv);
                let g = t.relu(g);
                let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0; 2]));
                let col = t.matmul(g, ones);
                let onesr = t.leaf(Tensor::from_vec(1, 2, vec![1.0; 2]));
                t.matmul(onesr, col)
            },
            1e-2,
        );
    }

    #[test]
    fn linear_ops_gradient() {
        // Fused linear: loss = sum(linear(x, w, b)); check grad w.r.t. x.
        let w = Tensor::from_vec(3, 2, vec![0.3, -0.2, 0.5, 0.7, -0.4, 0.1]);
        let b = Tensor::from_vec(1, 2, vec![0.25, -0.5]);
        grad_check(
            Tensor::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.1, 0.3, -0.7]),
            {
                let (w, b) = (w.clone(), b.clone());
                move |t, x| {
                    let wv = t.leaf(w.clone());
                    let bv = t.leaf(b.clone());
                    let h = t.linear(x, wv, bv);
                    let h = t.tanh(h);
                    let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0; 2]));
                    let col = t.matmul(h, ones);
                    let onesr = t.leaf(Tensor::from_vec(1, 2, vec![1.0; 2]));
                    t.matmul(onesr, col)
                }
            },
            1e-2,
        );
        // Fused linear2: check grad w.r.t. the recurrent input h.
        let wh = Tensor::from_vec(2, 2, vec![0.6, -0.3, 0.2, 0.9]);
        let x = Tensor::from_vec(1, 3, vec![0.4, -0.8, 1.2]);
        grad_check(
            Tensor::from_vec(1, 2, vec![0.3, -0.6]),
            move |t, h| {
                let xv = t.leaf(x.clone());
                let wxv = t.leaf(w.clone());
                let whv = t.leaf(wh.clone());
                let bv = t.leaf(b.clone());
                let g = t.linear2(xv, wxv, h, whv, bv);
                let g = t.sigmoid(g);
                let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0; 2]));
                t.matmul(g, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn fused_linear_matches_decomposition_bitwise() {
        // Same graph through a fast tape (fused single nodes) and a scalar
        // reference tape (decomposed ops): values AND gradients must agree
        // bit-for-bit.
        fn run(mut t: Tape) -> (Vec<f32>, Vec<f32>, Vec<f32>, usize) {
            let x = t.leaf(Tensor::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.1, 0.3, -0.7]));
            let w = t.leaf(Tensor::from_vec(3, 2, vec![0.3, -0.2, 0.5, 0.7, -0.4, 0.1]));
            let b = t.leaf(Tensor::from_vec(1, 2, vec![0.25, -0.5]));
            let wh = t.leaf(Tensor::from_vec(2, 2, vec![0.6, -0.3, 0.2, 0.9]));
            let h0 = t.linear(x, w, b);
            let h1 = t.tanh(h0);
            let g = t.linear2(x, w, h1, wh, b);
            let g = t.sigmoid(g);
            let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0; 2]));
            let col = t.matmul(g, ones);
            let onesr = t.leaf(Tensor::from_vec(1, 2, vec![1.0; 2]));
            let loss = t.matmul(onesr, col);
            let out = t.value(g).data().to_vec();
            let grads = t.backward(loss);
            let gx = grads.get(x).expect("gx").data().to_vec();
            let gw = grads.get(w).expect("gw").data().to_vec();
            (out, gx, gw, t.len())
        }
        let (fo, fx, fw, flen) = run(Tape::new());
        let (so, sx, sw, slen) = run(Tape::scalar_reference());
        assert_eq!(fo, so, "fused forward diverged");
        assert_eq!(fx, sx, "fused x-gradient diverged");
        assert_eq!(fw, sw, "fused w-gradient diverged");
        assert!(flen < slen, "fusion should record fewer nodes");
    }

    #[test]
    fn mix_gradient() {
        // loss = sum(mix(sigmoid(s), a, b)); check grads w.r.t. the gate.
        let a = Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let b = Tensor::from_vec(1, 3, vec![-0.5, 1.5, 2.0]);
        grad_check(
            Tensor::from_vec(1, 1, vec![0.2]),
            move |t, s| {
                let sg = t.sigmoid(s);
                let av = t.leaf(a.clone());
                let bv = t.leaf(b.clone());
                let y = t.mix(sg, av, bv);
                let ones = t.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
                t.matmul(y, ones)
            },
            1e-2,
        );
        // And w.r.t. the interpolated operands.
        let s = Tensor::from_vec(1, 1, vec![0.3]);
        let b2 = Tensor::from_vec(1, 3, vec![-0.5, 1.5, 2.0]);
        grad_check(
            Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]),
            move |t, a| {
                let sv = t.leaf(s.clone());
                let bv = t.leaf(b2.clone());
                let y = t.mix(sv, a, bv);
                let ones = t.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
                t.matmul(y, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn mix_agrees_with_decomposed_form() {
        let mut tape = Tape::new();
        let s = tape.leaf(Tensor::from_vec(1, 1, vec![0.37]));
        let a = tape.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = tape.leaf(Tensor::from_vec(2, 2, vec![-1.0, 0.5, 0.0, 2.0]));
        let fused = tape.mix(s, a, b);
        // Decomposed: s·a + b − s·b.
        let sa = tape.scalar_mul(s, a);
        let sb = tape.scalar_mul(s, b);
        let nsb = tape.scale(sb, -1.0);
        let part = tape.add(b, nsb);
        let slow = tape.add(sa, part);
        for i in 0..4 {
            assert!((tape.value(fused).data()[i] - tape.value(slow).data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn no_grad_matches_tape_bit_for_bit() {
        fn chain<T: TapeOps>(t: &mut T) -> Var {
            let x = t.leaf(Tensor::from_vec(2, 3, vec![0.3, -1.2, 2.0, 0.7, -0.1, 0.9]));
            let w = t.leaf(Tensor::from_vec(
                3,
                2,
                vec![0.5, -0.25, 1.5, 0.75, -0.5, 0.1],
            ));
            let h = t.matmul(x, w);
            let b = t.leaf(Tensor::from_vec(1, 2, vec![0.05, -0.1]));
            let h = t.add_row(h, b);
            let lin = t.linear(x, w, b);
            let h = t.add(h, lin);
            let s = t.sigmoid(h);
            let th = t.tanh(h);
            let m = t.mul(s, th);
            let g = t.leaf(Tensor::from_vec(1, 1, vec![0.37]));
            let mixed = t.mix(g, m, h);
            let scaled = t.affine(mixed, 1.3, -0.2);
            let r = t.relu(scaled);
            let rows = Arc::new(vec![1u32]);
            let picked_row = t.gather_rows(r, rows);
            let mask = Arc::new(vec![true, false]);
            let col = t.leaf(Tensor::from_vec(2, 1, vec![1.0, -1.0]));
            let scores = t.matmul(picked_row, col);
            // scores is 1×1; build a 2×1 vector for the softmax instead.
            let two = t.leaf(Tensor::from_vec(2, 1, vec![0.2, 5.0]));
            let sm = t.masked_log_softmax(two, mask);
            let p = t.pick(sm, 0, 0);
            let sum = t.add(p, scores);
            t.scale(sum, 2.0)
        }
        let mut tape = Tape::new();
        let a = chain(&mut tape);
        let mut ng = NoGradTape::new();
        let b = chain(&mut ng);
        assert_eq!(
            tape.value(a).data(),
            ng.value(b).data(),
            "no-grad forward diverged from the training tape"
        );
        // And both fast executors agree with the scalar references.
        let mut st = Tape::scalar_reference();
        let c = chain(&mut st);
        assert_eq!(tape.value(a).data(), st.value(c).data());
        let mut sng = NoGradTape::scalar_reference();
        let d = chain(&mut sng);
        assert_eq!(ng.value(b).data(), sng.value(d).data());
    }

    #[test]
    fn no_grad_truncate_reclaims_and_releafs() {
        let mut t = NoGradTape::new();
        let w = t.leaf(Tensor::from_vec(1, 1, vec![2.0]));
        let base = t.len();
        let mut carry = t.leaf(Tensor::from_vec(1, 1, vec![1.0]));
        for _ in 0..5 {
            let next = t.mul(carry, w);
            let v = t.value(next).clone();
            t.truncate(base);
            assert_eq!(t.len(), base);
            carry = t.leaf(v);
        }
        assert_eq!(t.value(carry).data()[0], 32.0);
        assert!(!t.is_empty());
    }

    #[test]
    fn reset_reuses_buffers_across_rollouts() {
        let mut tape = Tape::new();
        for round in 0..3 {
            let x = tape.leaf(Tensor::from_vec(4, 4, vec![0.1; 16]));
            let w = tape.leaf(Tensor::from_vec(4, 4, vec![0.2; 16]));
            let h = tape.matmul(x, w);
            let h = tape.tanh(h);
            let got = tape.value(h).data()[0];
            assert!((got - f32::tanh(0.08)).abs() < 1e-6, "round {round}");
            tape.reset();
            assert!(tape.is_empty());
        }
    }

    #[test]
    fn fan_out_accumulates_gradients() {
        // y = x + x → dy/dx = 2.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 1, vec![3.0]));
        let y = tape.add(x, x);
        let grads = tape.backward(y);
        assert_eq!(grads.get(x).expect("grad").data()[0], 2.0);
        assert_eq!(tape.len(), 2);
        assert!(!tape.is_empty());
    }
}
