//! Reverse-mode automatic differentiation on a tape of tensor operations.
//!
//! A [`Tape`] records every operation of a forward pass; [`Tape::backward`]
//! replays it in reverse, producing gradients for every recorded variable.
//! The op set is exactly what the RL-CCD networks need: dense/sparse matrix
//! products, broadcasting adds, elementwise nonlinearities, gather/pick, a
//! trainable-scalar gate, and a masked log-softmax for the pointer-attention
//! decoder.
//!
//! Inference does not need gradients: [`NoGradTape`] executes the same op
//! set while storing only the computed values (no op records, so nothing to
//! replay and nothing for [`Tape::backward`] to walk), and supports
//! [`NoGradTape::truncate`] so a selection loop can reclaim each step's
//! intermediates. Both executors implement [`TapeOps`] and share one
//! forward kernel per op, which is what makes training-mode and
//! inference-mode forwards bit-identical.

use crate::sparse::SharedCsr;
use crate::tensor::Tensor;
use std::sync::Arc;

/// Forward kernels shared by [`Tape`] and [`NoGradTape`]. One
/// implementation per op is the bit-identity guarantee between the
/// training and inference forward paths: both executors compute every
/// value through exactly this code.
mod kernel {
    use super::{SharedCsr, Tensor};

    pub(super) fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        a.matmul(b)
    }

    pub(super) fn spmm(csr: &SharedCsr, a: &Tensor) -> Tensor {
        csr.matmul(a)
    }

    pub(super) fn add(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.shape(), b.shape(), "add shapes");
        let mut v = a.clone();
        v.add_assign(b);
        v
    }

    pub(super) fn add_row(a: &Tensor, row: &Tensor) -> Tensor {
        let (n, m) = a.shape();
        assert_eq!(row.shape(), (1, m), "add_row shapes");
        let mut v = a.clone();
        {
            let r = row.data().to_vec();
            let d = v.data_mut();
            for i in 0..n {
                for j in 0..m {
                    d[i * m + j] += r[j];
                }
            }
        }
        v
    }

    pub(super) fn mul(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.shape(), b.shape(), "mul shapes");
        let bv = b.data().to_vec();
        let mut v = a.clone();
        for (x, y) in v.data_mut().iter_mut().zip(bv) {
            *x *= y;
        }
        v
    }

    pub(super) fn scale(a: &Tensor, k: f32) -> Tensor {
        a.map(|x| k * x)
    }

    pub(super) fn scalar_mul(s: &Tensor, a: &Tensor) -> Tensor {
        assert_eq!(s.shape(), (1, 1), "scalar_mul gate shape");
        let k = s.data()[0];
        a.map(|x| k * x)
    }

    pub(super) fn mix(s: &Tensor, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(s.shape(), (1, 1), "mix gate shape");
        assert_eq!(a.shape(), b.shape(), "mix shapes");
        let k = s.data()[0];
        let bv = b.data().to_vec();
        let mut v = a.clone();
        for (x, y) in v.data_mut().iter_mut().zip(bv) {
            *x = k * *x + (1.0 - k) * y;
        }
        v
    }

    pub(super) fn affine(a: &Tensor, k: f32, c: f32) -> Tensor {
        a.map(|x| k * x + c)
    }

    pub(super) fn sigmoid(a: &Tensor) -> Tensor {
        a.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    pub(super) fn tanh(a: &Tensor) -> Tensor {
        a.map(f32::tanh)
    }

    pub(super) fn relu(a: &Tensor) -> Tensor {
        a.map(|x| x.max(0.0))
    }

    pub(super) fn gather_rows(a: &Tensor, rows: &[u32]) -> Tensor {
        let (n, m) = a.shape();
        let mut v = Tensor::zeros(rows.len(), m);
        for (i, &r) in rows.iter().enumerate() {
            assert!((r as usize) < n, "gather row out of bounds");
            let src = a.row(r as usize).to_vec();
            v.data_mut()[i * m..(i + 1) * m].copy_from_slice(&src);
        }
        v
    }

    pub(super) fn pick(a: &Tensor, r: usize, c: usize) -> Tensor {
        Tensor::from_vec(1, 1, vec![a.at(r, c)])
    }

    pub(super) fn masked_log_softmax(value: &Tensor, mask: &[bool]) -> Tensor {
        assert_eq!(mask.len(), value.len(), "mask length");
        assert!(mask.iter().any(|&m| m), "all entries masked");
        let mut max = f32::NEG_INFINITY;
        for (i, &x) in value.data().iter().enumerate() {
            if mask[i] && x > max {
                max = x;
            }
        }
        let mut lse = 0.0f32;
        for (i, &x) in value.data().iter().enumerate() {
            if mask[i] {
                lse += (x - max).exp();
            }
        }
        let lse = lse.ln() + max;
        let (r, c) = value.shape();
        let data: Vec<f32> = value
            .data()
            .iter()
            .enumerate()
            .map(|(i, &x)| if mask[i] { x - lse } else { f32::NEG_INFINITY })
            .collect();
        Tensor::from_vec(r, c, data)
    }
}

/// Handle to a tensor recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Raw node index (stable for the lifetime of the tape).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug)]
enum Op {
    Leaf,
    Matmul(Var, Var),
    Spmm(SharedCsr, Var),
    Add(Var, Var),
    AddRow(Var, Var),
    Mul(Var, Var),
    ScaleConst(Var, f32),
    ScalarMul(Var, Var),
    AffineScalar(Var, f32, f32),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    GatherRows(Var, Arc<Vec<u32>>),
    Pick(Var, usize, usize),
    MaskedLogSoftmax(Var, Arc<Vec<bool>>),
    Mix(Var, Var, Var),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

/// The autodiff tape: a growing list of computed tensors plus the recipe
/// that produced each.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`, if it received any.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.index()).and_then(|g| g.as_ref())
    }

    /// Takes ownership of the gradient for `v`.
    pub fn take(&mut self, v: Var) -> Option<Tensor> {
        self.grads.get_mut(v.index()).and_then(|g| g.take())
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records an input/parameter tensor.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The value of a recorded variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.index()].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Dense matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = kernel::matmul(self.value(a), self.value(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// Sparse × dense product `csr · a` (no gradient flows to the CSR).
    pub fn spmm(&mut self, csr: &SharedCsr, a: Var) -> Var {
        let v = kernel::spmm(csr, self.value(a));
        self.push(v, Op::Spmm(Arc::clone(csr), a))
    }

    /// Elementwise sum of two same-shape tensors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = kernel::add(self.value(a), self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Adds a 1×m row vector to every row of an n×m matrix.
    ///
    /// # Panics
    /// Panics if `row` is not 1×m.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let v = kernel::add_row(self.value(a), self.value(row));
        self.push(v, Op::AddRow(a, row))
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = kernel::mul(self.value(a), self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let v = kernel::scale(self.value(a), k);
        self.push(v, Op::ScaleConst(a, k))
    }

    /// Multiplies a tensor by a trainable 1×1 scalar.
    ///
    /// # Panics
    /// Panics if `s` is not 1×1.
    pub fn scalar_mul(&mut self, s: Var, a: Var) -> Var {
        let v = kernel::scalar_mul(self.value(s), self.value(a));
        self.push(v, Op::ScalarMul(s, a))
    }

    /// Fused gated interpolation `s·a + (1−s)·b` with a trainable 1×1 gate
    /// `s` (EP-GNN's Eq. 2 mixing in one op instead of four).
    ///
    /// # Panics
    /// Panics if `s` is not 1×1 or `a`/`b` shapes differ.
    pub fn mix(&mut self, s: Var, a: Var, b: Var) -> Var {
        let v = kernel::mix(self.value(s), self.value(a), self.value(b));
        self.push(v, Op::Mix(s, a, b))
    }

    /// Elementwise affine map `k·x + c`.
    pub fn affine(&mut self, a: Var, k: f32, c: f32) -> Var {
        let v = kernel::affine(self.value(a), k, c);
        self.push(v, Op::AffineScalar(a, k, c))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = kernel::sigmoid(self.value(a));
        self.push(v, Op::Sigmoid(a))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = kernel::tanh(self.value(a));
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = kernel::relu(self.value(a));
        self.push(v, Op::Relu(a))
    }

    /// Gathers the given rows of `a` into a new (k×m) tensor.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&mut self, a: Var, rows: Arc<Vec<u32>>) -> Var {
        let v = kernel::gather_rows(self.value(a), &rows);
        self.push(v, Op::GatherRows(a, rows))
    }

    /// Extracts element `(r, c)` as a 1×1 tensor.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn pick(&mut self, a: Var, r: usize, c: usize) -> Var {
        let v = kernel::pick(self.value(a), r, c);
        self.push(v, Op::Pick(a, r, c))
    }

    /// Masked log-softmax over all elements of `a` (treated flat, e.g. an
    /// n×1 score vector). Masked-out entries get `-∞` log-probability and
    /// receive zero gradient.
    ///
    /// # Panics
    /// Panics if the mask length differs from the element count or no entry
    /// is valid.
    pub fn masked_log_softmax(&mut self, a: Var, mask: Arc<Vec<bool>>) -> Var {
        let v = kernel::masked_log_softmax(self.value(a), &mask);
        self.push(v, Op::MaskedLogSoftmax(a, mask))
    }

    /// Runs reverse-mode differentiation from `loss` (which must be 1×1)
    /// and returns the gradient of every variable that participates.
    ///
    /// # Panics
    /// Panics if `loss` is not a scalar.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        rl_ccd_obs::counter!("nn.tape.backward_passes", 1);
        rl_ccd_obs::counter!("nn.tape.backward_nodes", self.nodes.len());
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.index()] = Some(Tensor::from_vec(1, 1, vec![1.0]));
        for idx in (0..self.nodes.len()).rev() {
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[idx];
            match &node.op {
                Op::Leaf => {
                    grads[idx] = Some(g);
                    continue;
                }
                Op::Matmul(a, b) => {
                    let ga = g.matmul_t(&self.nodes[b.index()].value);
                    let gb = self.nodes[a.index()].value.t_matmul(&g);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Spmm(csr, a) => {
                    accumulate(&mut grads, *a, csr.t_matmul(&g));
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::AddRow(a, row) => {
                    let (n, m) = g.shape();
                    let mut gr = Tensor::zeros(1, m);
                    for i in 0..n {
                        for j in 0..m {
                            gr.data_mut()[j] += g.at(i, j);
                        }
                    }
                    accumulate(&mut grads, *a, g);
                    accumulate(&mut grads, *row, gr);
                }
                Op::Mul(a, b) => {
                    let mut ga = g.clone();
                    for (x, y) in ga
                        .data_mut()
                        .iter_mut()
                        .zip(self.nodes[b.index()].value.data())
                    {
                        *x *= y;
                    }
                    let mut gb = g;
                    for (x, y) in gb
                        .data_mut()
                        .iter_mut()
                        .zip(self.nodes[a.index()].value.data())
                    {
                        *x *= y;
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::ScaleConst(a, k) => {
                    let mut ga = g;
                    ga.scale_assign(*k);
                    accumulate(&mut grads, *a, ga);
                }
                Op::ScalarMul(s, a) => {
                    let k = self.nodes[s.index()].value.data()[0];
                    let mut gs = 0.0f32;
                    for (gi, ai) in g.data().iter().zip(self.nodes[a.index()].value.data()) {
                        gs += gi * ai;
                    }
                    let mut ga = g;
                    ga.scale_assign(k);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *s, Tensor::from_vec(1, 1, vec![gs]));
                }
                Op::AffineScalar(a, k, _c) => {
                    let mut ga = g;
                    ga.scale_assign(*k);
                    accumulate(&mut grads, *a, ga);
                }
                Op::Sigmoid(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(node.value.data()) {
                        *x *= y * (1.0 - y);
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Tanh(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(node.value.data()) {
                        *x *= 1.0 - y * y;
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Relu(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(node.value.data()) {
                        if *y <= 0.0 {
                            *x = 0.0;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::GatherRows(a, rows) => {
                    let (n, m) = self.nodes[a.index()].value.shape();
                    let mut ga = Tensor::zeros(n, m);
                    for (i, &r) in rows.iter().enumerate() {
                        let dst = r as usize * m;
                        for j in 0..m {
                            ga.data_mut()[dst + j] += g.at(i, j);
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Pick(a, r, c) => {
                    let (n, m) = self.nodes[a.index()].value.shape();
                    let mut ga = Tensor::zeros(n, m);
                    ga.set(*r, *c, g.data()[0]);
                    accumulate(&mut grads, *a, ga);
                }
                Op::Mix(s, a, b) => {
                    let k = self.nodes[s.index()].value.data()[0];
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    let mut gs = 0.0f32;
                    for ((gi, ai), bi) in g.data().iter().zip(av.data()).zip(bv.data()) {
                        gs += gi * (ai - bi);
                    }
                    let mut ga = g.clone();
                    ga.scale_assign(k);
                    let mut gb = g;
                    gb.scale_assign(1.0 - k);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                    accumulate(&mut grads, *s, Tensor::from_vec(1, 1, vec![gs]));
                }
                Op::MaskedLogSoftmax(a, mask) => {
                    // d logp_i / d x_j = δ_ij − p_j (valid j).
                    let mut gsum = 0.0f32;
                    for (i, &gi) in g.data().iter().enumerate() {
                        if mask[i] {
                            gsum += gi;
                        }
                    }
                    let (n, m) = node.value.shape();
                    let mut ga = Tensor::zeros(n, m);
                    for i in 0..mask.len() {
                        if mask[i] {
                            let p = node.value.data()[i].exp();
                            ga.data_mut()[i] = g.data()[i] - p * gsum;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut grads[v.index()] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

/// The forward op set shared by the training [`Tape`] and the inference
/// [`NoGradTape`]. Model code written against `T: TapeOps` runs unchanged
/// on either executor; because both route every op through the same
/// kernel, the computed values are bit-identical.
pub trait TapeOps {
    /// Records an input/parameter tensor.
    fn leaf(&mut self, value: Tensor) -> Var;
    /// The value of a recorded variable.
    fn value(&self, v: Var) -> &Tensor;
    /// Dense matrix product `a · b`.
    fn matmul(&mut self, a: Var, b: Var) -> Var;
    /// Sparse × dense product `csr · a`.
    fn spmm(&mut self, csr: &SharedCsr, a: Var) -> Var;
    /// Elementwise sum of two same-shape tensors.
    fn add(&mut self, a: Var, b: Var) -> Var;
    /// Adds a 1×m row vector to every row of an n×m matrix.
    fn add_row(&mut self, a: Var, row: Var) -> Var;
    /// Elementwise (Hadamard) product.
    fn mul(&mut self, a: Var, b: Var) -> Var;
    /// Multiplies by a compile-time constant.
    fn scale(&mut self, a: Var, k: f32) -> Var;
    /// Multiplies a tensor by a trainable 1×1 scalar.
    fn scalar_mul(&mut self, s: Var, a: Var) -> Var;
    /// Fused gated interpolation `s·a + (1−s)·b`.
    fn mix(&mut self, s: Var, a: Var, b: Var) -> Var;
    /// Elementwise affine map `k·x + c`.
    fn affine(&mut self, a: Var, k: f32, c: f32) -> Var;
    /// Elementwise logistic sigmoid.
    fn sigmoid(&mut self, a: Var) -> Var;
    /// Elementwise tanh.
    fn tanh(&mut self, a: Var) -> Var;
    /// Elementwise ReLU.
    fn relu(&mut self, a: Var) -> Var;
    /// Gathers the given rows of `a` into a new (k×m) tensor.
    fn gather_rows(&mut self, a: Var, rows: Arc<Vec<u32>>) -> Var;
    /// Extracts element `(r, c)` as a 1×1 tensor.
    fn pick(&mut self, a: Var, r: usize, c: usize) -> Var;
    /// Masked log-softmax over all elements of `a` (treated flat).
    fn masked_log_softmax(&mut self, a: Var, mask: Arc<Vec<bool>>) -> Var;
}

impl TapeOps for Tape {
    fn leaf(&mut self, value: Tensor) -> Var {
        Tape::leaf(self, value)
    }
    fn value(&self, v: Var) -> &Tensor {
        Tape::value(self, v)
    }
    fn matmul(&mut self, a: Var, b: Var) -> Var {
        Tape::matmul(self, a, b)
    }
    fn spmm(&mut self, csr: &SharedCsr, a: Var) -> Var {
        Tape::spmm(self, csr, a)
    }
    fn add(&mut self, a: Var, b: Var) -> Var {
        Tape::add(self, a, b)
    }
    fn add_row(&mut self, a: Var, row: Var) -> Var {
        Tape::add_row(self, a, row)
    }
    fn mul(&mut self, a: Var, b: Var) -> Var {
        Tape::mul(self, a, b)
    }
    fn scale(&mut self, a: Var, k: f32) -> Var {
        Tape::scale(self, a, k)
    }
    fn scalar_mul(&mut self, s: Var, a: Var) -> Var {
        Tape::scalar_mul(self, s, a)
    }
    fn mix(&mut self, s: Var, a: Var, b: Var) -> Var {
        Tape::mix(self, s, a, b)
    }
    fn affine(&mut self, a: Var, k: f32, c: f32) -> Var {
        Tape::affine(self, a, k, c)
    }
    fn sigmoid(&mut self, a: Var) -> Var {
        Tape::sigmoid(self, a)
    }
    fn tanh(&mut self, a: Var) -> Var {
        Tape::tanh(self, a)
    }
    fn relu(&mut self, a: Var) -> Var {
        Tape::relu(self, a)
    }
    fn gather_rows(&mut self, a: Var, rows: Arc<Vec<u32>>) -> Var {
        Tape::gather_rows(self, a, rows)
    }
    fn pick(&mut self, a: Var, r: usize, c: usize) -> Var {
        Tape::pick(self, a, r, c)
    }
    fn masked_log_softmax(&mut self, a: Var, mask: Arc<Vec<bool>>) -> Var {
        Tape::masked_log_softmax(self, a, mask)
    }
}

/// Inference-only executor: runs the forward op set while storing nothing
/// but the computed values — no op records, no gradient machinery, and an
/// explicit [`NoGradTape::truncate`] so a selection loop can drop each
/// step's intermediates instead of growing without bound.
#[derive(Debug, Default)]
pub struct NoGradTape {
    values: Vec<Tensor>,
}

impl NoGradTape {
    /// An empty executor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been computed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Drops every value recorded after position `len`, invalidating their
    /// [`Var`] handles. The caller must re-[`leaf`](TapeOps::leaf) any
    /// tensor it still needs (the selection loop carries the previous
    /// action embedding and recurrent state across a truncation this way).
    pub fn truncate(&mut self, len: usize) {
        self.values.truncate(len);
    }

    fn push(&mut self, value: Tensor) -> Var {
        self.values.push(value);
        Var(self.values.len() - 1)
    }
}

impl TapeOps for NoGradTape {
    fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value)
    }
    fn value(&self, v: Var) -> &Tensor {
        &self.values[v.index()]
    }
    fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = kernel::matmul(self.value(a), self.value(b));
        self.push(v)
    }
    fn spmm(&mut self, csr: &SharedCsr, a: Var) -> Var {
        let v = kernel::spmm(csr, self.value(a));
        self.push(v)
    }
    fn add(&mut self, a: Var, b: Var) -> Var {
        let v = kernel::add(self.value(a), self.value(b));
        self.push(v)
    }
    fn add_row(&mut self, a: Var, row: Var) -> Var {
        let v = kernel::add_row(self.value(a), self.value(row));
        self.push(v)
    }
    fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = kernel::mul(self.value(a), self.value(b));
        self.push(v)
    }
    fn scale(&mut self, a: Var, k: f32) -> Var {
        let v = kernel::scale(self.value(a), k);
        self.push(v)
    }
    fn scalar_mul(&mut self, s: Var, a: Var) -> Var {
        let v = kernel::scalar_mul(self.value(s), self.value(a));
        self.push(v)
    }
    fn mix(&mut self, s: Var, a: Var, b: Var) -> Var {
        let v = kernel::mix(self.value(s), self.value(a), self.value(b));
        self.push(v)
    }
    fn affine(&mut self, a: Var, k: f32, c: f32) -> Var {
        let v = kernel::affine(self.value(a), k, c);
        self.push(v)
    }
    fn sigmoid(&mut self, a: Var) -> Var {
        let v = kernel::sigmoid(self.value(a));
        self.push(v)
    }
    fn tanh(&mut self, a: Var) -> Var {
        let v = kernel::tanh(self.value(a));
        self.push(v)
    }
    fn relu(&mut self, a: Var) -> Var {
        let v = kernel::relu(self.value(a));
        self.push(v)
    }
    fn gather_rows(&mut self, a: Var, rows: Arc<Vec<u32>>) -> Var {
        let v = kernel::gather_rows(self.value(a), &rows);
        self.push(v)
    }
    fn pick(&mut self, a: Var, r: usize, c: usize) -> Var {
        let v = kernel::pick(self.value(a), r, c);
        self.push(v)
    }
    fn masked_log_softmax(&mut self, a: Var, mask: Arc<Vec<bool>>) -> Var {
        let v = kernel::masked_log_softmax(self.value(a), &mask);
        self.push(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Csr;

    /// Central-difference gradient check for a scalar function of one leaf.
    fn grad_check(input: Tensor, f: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = f(&mut tape, x);
        let grads = tape.backward(loss);
        let g = grads.get(x).expect("input must receive gradient").clone();
        let eps = 1e-2;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut tp = Tape::new();
            let xp = tp.leaf(plus);
            let vp = f(&mut tp, xp);
            let lp = tp.value(vp).data()[0];
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let mut tm = Tape::new();
            let xm = tm.leaf(minus);
            let vm = f(&mut tm, xm);
            let lm = tm.value(vm).data()[0];
            let num = (lp - lm) / (2.0 * eps);
            let ana = g.data()[i];
            assert!(
                (num - ana).abs() < tol * (1.0 + num.abs().max(ana.abs())),
                "element {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn matmul_chain_gradient() {
        let w = Tensor::from_vec(3, 2, vec![0.3, -0.2, 0.5, 0.7, -0.4, 0.1]);
        grad_check(
            Tensor::from_vec(1, 3, vec![0.5, -1.0, 2.0]),
            move |t, x| {
                let wv = t.leaf(w.clone());
                let h = t.matmul(x, wv);
                let h = t.tanh(h);
                let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
                t.matmul(h, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn sigmoid_mul_add_gradient() {
        let b = Tensor::from_vec(1, 4, vec![0.1, 0.2, -0.3, 0.4]);
        grad_check(
            Tensor::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]),
            move |t, x| {
                let bv = t.leaf(b.clone());
                let s = t.sigmoid(x);
                let m = t.mul(s, bv);
                let m = t.affine(m, 2.0, 0.25);
                let ones = t.leaf(Tensor::from_vec(4, 1, vec![1.0; 4]));
                t.matmul(m, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn scalar_gate_gradient() {
        // loss = sum(sigmoid(s) * x): check grad w.r.t. the scalar gate.
        let x = Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        grad_check(
            Tensor::from_vec(1, 1, vec![0.3]),
            move |t, s| {
                let xv = t.leaf(x.clone());
                let sg = t.sigmoid(s);
                let y = t.scalar_mul(sg, xv);
                let ones = t.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
                t.matmul(y, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn spmm_gradient() {
        let csr: SharedCsr = Arc::new(Csr::new(
            2,
            3,
            vec![0, 2, 3],
            vec![0, 2, 1],
            vec![0.5, 2.0, -1.0],
        ));
        grad_check(
            Tensor::from_vec(3, 2, vec![1.0, 2.0, -0.5, 0.3, 0.7, -1.2]),
            move |t, x| {
                let y = t.spmm(&csr, x);
                let y = t.tanh(y);
                let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0; 2]));
                let col = t.matmul(y, ones);
                let onesr = t.leaf(Tensor::from_vec(1, 2, vec![1.0; 2]));
                t.matmul(onesr, col)
            },
            1e-2,
        );
    }

    #[test]
    fn masked_log_softmax_gradient() {
        let mask = Arc::new(vec![true, false, true, true]);
        grad_check(
            Tensor::from_vec(4, 1, vec![0.2, 9.0, -0.5, 1.0]),
            move |t, x| {
                let lp = t.masked_log_softmax(x, Arc::clone(&mask));
                t.pick(lp, 2, 0)
            },
            1e-2,
        );
    }

    #[test]
    fn masked_entries_have_zero_probability_and_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(3, 1, vec![1.0, 100.0, 2.0]));
        let mask = Arc::new(vec![true, false, true]);
        let lp = tape.masked_log_softmax(x, mask);
        assert_eq!(tape.value(lp).at(1, 0), f32::NEG_INFINITY);
        // Valid entries normalize.
        let p: f32 = [0, 2].iter().map(|&i| tape.value(lp).at(i, 0).exp()).sum();
        assert!((p - 1.0).abs() < 1e-5);
        let loss = tape.pick(lp, 0, 0);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).expect("grad").at(1, 0), 0.0);
    }

    #[test]
    fn gather_and_addrow_gradient() {
        let rows = Arc::new(vec![2u32, 0u32]);
        let bias = Tensor::from_vec(1, 2, vec![0.3, -0.1]);
        grad_check(
            Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            move |t, x| {
                let g = t.gather_rows(x, Arc::clone(&rows));
                let bv = t.leaf(bias.clone());
                let g = t.add_row(g, bv);
                let g = t.relu(g);
                let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0; 2]));
                let col = t.matmul(g, ones);
                let onesr = t.leaf(Tensor::from_vec(1, 2, vec![1.0; 2]));
                t.matmul(onesr, col)
            },
            1e-2,
        );
    }

    #[test]
    fn mix_gradient() {
        // loss = sum(mix(sigmoid(s), a, b)); check grads w.r.t. the gate.
        let a = Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let b = Tensor::from_vec(1, 3, vec![-0.5, 1.5, 2.0]);
        grad_check(
            Tensor::from_vec(1, 1, vec![0.2]),
            move |t, s| {
                let sg = t.sigmoid(s);
                let av = t.leaf(a.clone());
                let bv = t.leaf(b.clone());
                let y = t.mix(sg, av, bv);
                let ones = t.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
                t.matmul(y, ones)
            },
            1e-2,
        );
        // And w.r.t. the interpolated operands.
        let s = Tensor::from_vec(1, 1, vec![0.3]);
        let b2 = Tensor::from_vec(1, 3, vec![-0.5, 1.5, 2.0]);
        grad_check(
            Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]),
            move |t, a| {
                let sv = t.leaf(s.clone());
                let bv = t.leaf(b2.clone());
                let y = t.mix(sv, a, bv);
                let ones = t.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
                t.matmul(y, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn mix_agrees_with_decomposed_form() {
        let mut tape = Tape::new();
        let s = tape.leaf(Tensor::from_vec(1, 1, vec![0.37]));
        let a = tape.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = tape.leaf(Tensor::from_vec(2, 2, vec![-1.0, 0.5, 0.0, 2.0]));
        let fused = tape.mix(s, a, b);
        // Decomposed: s·a + b − s·b.
        let sa = tape.scalar_mul(s, a);
        let sb = tape.scalar_mul(s, b);
        let nsb = tape.scale(sb, -1.0);
        let part = tape.add(b, nsb);
        let slow = tape.add(sa, part);
        for i in 0..4 {
            assert!((tape.value(fused).data()[i] - tape.value(slow).data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn no_grad_matches_tape_bit_for_bit() {
        fn chain<T: TapeOps>(t: &mut T) -> Var {
            let x = t.leaf(Tensor::from_vec(2, 3, vec![0.3, -1.2, 2.0, 0.7, -0.1, 0.9]));
            let w = t.leaf(Tensor::from_vec(
                3,
                2,
                vec![0.5, -0.25, 1.5, 0.75, -0.5, 0.1],
            ));
            let h = t.matmul(x, w);
            let b = t.leaf(Tensor::from_vec(1, 2, vec![0.05, -0.1]));
            let h = t.add_row(h, b);
            let s = t.sigmoid(h);
            let th = t.tanh(h);
            let m = t.mul(s, th);
            let g = t.leaf(Tensor::from_vec(1, 1, vec![0.37]));
            let mixed = t.mix(g, m, h);
            let scaled = t.affine(mixed, 1.3, -0.2);
            let r = t.relu(scaled);
            let rows = Arc::new(vec![1u32]);
            let picked_row = t.gather_rows(r, rows);
            let mask = Arc::new(vec![true, false]);
            let col = t.leaf(Tensor::from_vec(2, 1, vec![1.0, -1.0]));
            let scores = t.matmul(picked_row, col);
            // scores is 1×1; build a 2×1 vector for the softmax instead.
            let two = t.leaf(Tensor::from_vec(2, 1, vec![0.2, 5.0]));
            let sm = t.masked_log_softmax(two, mask);
            let p = t.pick(sm, 0, 0);
            let sum = t.add(p, scores);
            t.scale(sum, 2.0)
        }
        let mut tape = Tape::new();
        let a = chain(&mut tape);
        let mut ng = NoGradTape::new();
        let b = chain(&mut ng);
        assert_eq!(
            tape.value(a).data(),
            ng.value(b).data(),
            "no-grad forward diverged from the training tape"
        );
    }

    #[test]
    fn no_grad_truncate_reclaims_and_releafs() {
        let mut t = NoGradTape::new();
        let w = t.leaf(Tensor::from_vec(1, 1, vec![2.0]));
        let base = t.len();
        let mut carry = t.leaf(Tensor::from_vec(1, 1, vec![1.0]));
        for _ in 0..5 {
            let next = t.mul(carry, w);
            let v = t.value(next).clone();
            t.truncate(base);
            assert_eq!(t.len(), base);
            carry = t.leaf(v);
        }
        assert_eq!(t.value(carry).data()[0], 32.0);
        assert!(!t.is_empty());
    }

    #[test]
    fn fan_out_accumulates_gradients() {
        // y = x + x → dy/dx = 2.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 1, vec![3.0]));
        let y = tape.add(x, x);
        let grads = tape.backward(y);
        assert_eq!(grads.get(x).expect("grad").data()[0], 2.0);
        assert_eq!(tape.len(), 2);
        assert!(!tape.is_empty());
    }
}
