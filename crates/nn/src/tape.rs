//! Reverse-mode automatic differentiation on a tape of tensor operations.
//!
//! A [`Tape`] records every operation of a forward pass; [`Tape::backward`]
//! replays it in reverse, producing gradients for every recorded variable.
//! The op set is exactly what the RL-CCD networks need: dense/sparse matrix
//! products, broadcasting adds, elementwise nonlinearities, gather/pick, a
//! trainable-scalar gate, and a masked log-softmax for the pointer-attention
//! decoder.

use crate::sparse::SharedCsr;
use crate::tensor::Tensor;
use std::sync::Arc;

/// Handle to a tensor recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Raw node index (stable for the lifetime of the tape).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug)]
enum Op {
    Leaf,
    Matmul(Var, Var),
    Spmm(SharedCsr, Var),
    Add(Var, Var),
    AddRow(Var, Var),
    Mul(Var, Var),
    ScaleConst(Var, f32),
    ScalarMul(Var, Var),
    AffineScalar(Var, f32, f32),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    GatherRows(Var, Arc<Vec<u32>>),
    Pick(Var, usize, usize),
    MaskedLogSoftmax(Var, Arc<Vec<bool>>),
    Mix(Var, Var, Var),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

/// The autodiff tape: a growing list of computed tensors plus the recipe
/// that produced each.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`, if it received any.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.index()).and_then(|g| g.as_ref())
    }

    /// Takes ownership of the gradient for `v`.
    pub fn take(&mut self, v: Var) -> Option<Tensor> {
        self.grads.get_mut(v.index()).and_then(|g| g.take())
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records an input/parameter tensor.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The value of a recorded variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.index()].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Dense matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// Sparse × dense product `csr · a` (no gradient flows to the CSR).
    pub fn spmm(&mut self, csr: &SharedCsr, a: Var) -> Var {
        let v = csr.matmul(self.value(a));
        self.push(v, Op::Spmm(Arc::clone(csr), a))
    }

    /// Elementwise sum of two same-shape tensors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "add shapes");
        let mut v = self.value(a).clone();
        v.add_assign(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Adds a 1×m row vector to every row of an n×m matrix.
    ///
    /// # Panics
    /// Panics if `row` is not 1×m.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (n, m) = self.value(a).shape();
        assert_eq!(self.value(row).shape(), (1, m), "add_row shapes");
        let mut v = self.value(a).clone();
        {
            let r = self.value(row).data().to_vec();
            let d = v.data_mut();
            for i in 0..n {
                for j in 0..m {
                    d[i * m + j] += r[j];
                }
            }
        }
        self.push(v, Op::AddRow(a, row))
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "mul shapes");
        let bv = self.value(b).data().to_vec();
        let mut v = self.value(a).clone();
        for (x, y) in v.data_mut().iter_mut().zip(bv) {
            *x *= y;
        }
        self.push(v, Op::Mul(a, b))
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let v = self.value(a).map(|x| k * x);
        self.push(v, Op::ScaleConst(a, k))
    }

    /// Multiplies a tensor by a trainable 1×1 scalar.
    ///
    /// # Panics
    /// Panics if `s` is not 1×1.
    pub fn scalar_mul(&mut self, s: Var, a: Var) -> Var {
        assert_eq!(self.value(s).shape(), (1, 1), "scalar_mul gate shape");
        let k = self.value(s).data()[0];
        let v = self.value(a).map(|x| k * x);
        self.push(v, Op::ScalarMul(s, a))
    }

    /// Fused gated interpolation `s·a + (1−s)·b` with a trainable 1×1 gate
    /// `s` (EP-GNN's Eq. 2 mixing in one op instead of four).
    ///
    /// # Panics
    /// Panics if `s` is not 1×1 or `a`/`b` shapes differ.
    pub fn mix(&mut self, s: Var, a: Var, b: Var) -> Var {
        assert_eq!(self.value(s).shape(), (1, 1), "mix gate shape");
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "mix shapes");
        let k = self.value(s).data()[0];
        let bv = self.value(b).data().to_vec();
        let mut v = self.value(a).clone();
        for (x, y) in v.data_mut().iter_mut().zip(bv) {
            *x = k * *x + (1.0 - k) * y;
        }
        self.push(v, Op::Mix(s, a, b))
    }

    /// Elementwise affine map `k·x + c`.
    pub fn affine(&mut self, a: Var, k: f32, c: f32) -> Var {
        let v = self.value(a).map(|x| k * x + c);
        self.push(v, Op::AffineScalar(a, k, c))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Gathers the given rows of `a` into a new (k×m) tensor.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&mut self, a: Var, rows: Arc<Vec<u32>>) -> Var {
        let (n, m) = self.value(a).shape();
        let mut v = Tensor::zeros(rows.len(), m);
        for (i, &r) in rows.iter().enumerate() {
            assert!((r as usize) < n, "gather row out of bounds");
            let src = self.value(a).row(r as usize).to_vec();
            v.data_mut()[i * m..(i + 1) * m].copy_from_slice(&src);
        }
        self.push(v, Op::GatherRows(a, rows))
    }

    /// Extracts element `(r, c)` as a 1×1 tensor.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn pick(&mut self, a: Var, r: usize, c: usize) -> Var {
        let v = Tensor::from_vec(1, 1, vec![self.value(a).at(r, c)]);
        self.push(v, Op::Pick(a, r, c))
    }

    /// Masked log-softmax over all elements of `a` (treated flat, e.g. an
    /// n×1 score vector). Masked-out entries get `-∞` log-probability and
    /// receive zero gradient.
    ///
    /// # Panics
    /// Panics if the mask length differs from the element count or no entry
    /// is valid.
    pub fn masked_log_softmax(&mut self, a: Var, mask: Arc<Vec<bool>>) -> Var {
        let value = self.value(a);
        assert_eq!(mask.len(), value.len(), "mask length");
        assert!(mask.iter().any(|&m| m), "all entries masked");
        let mut max = f32::NEG_INFINITY;
        for (i, &x) in value.data().iter().enumerate() {
            if mask[i] && x > max {
                max = x;
            }
        }
        let mut lse = 0.0f32;
        for (i, &x) in value.data().iter().enumerate() {
            if mask[i] {
                lse += (x - max).exp();
            }
        }
        let lse = lse.ln() + max;
        let (r, c) = value.shape();
        let data: Vec<f32> = value
            .data()
            .iter()
            .enumerate()
            .map(|(i, &x)| if mask[i] { x - lse } else { f32::NEG_INFINITY })
            .collect();
        self.push(Tensor::from_vec(r, c, data), Op::MaskedLogSoftmax(a, mask))
    }

    /// Runs reverse-mode differentiation from `loss` (which must be 1×1)
    /// and returns the gradient of every variable that participates.
    ///
    /// # Panics
    /// Panics if `loss` is not a scalar.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        rl_ccd_obs::counter!("nn.tape.backward_passes", 1);
        rl_ccd_obs::counter!("nn.tape.backward_nodes", self.nodes.len());
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.index()] = Some(Tensor::from_vec(1, 1, vec![1.0]));
        for idx in (0..self.nodes.len()).rev() {
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[idx];
            match &node.op {
                Op::Leaf => {
                    grads[idx] = Some(g);
                    continue;
                }
                Op::Matmul(a, b) => {
                    let ga = g.matmul_t(&self.nodes[b.index()].value);
                    let gb = self.nodes[a.index()].value.t_matmul(&g);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Spmm(csr, a) => {
                    accumulate(&mut grads, *a, csr.t_matmul(&g));
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::AddRow(a, row) => {
                    let (n, m) = g.shape();
                    let mut gr = Tensor::zeros(1, m);
                    for i in 0..n {
                        for j in 0..m {
                            gr.data_mut()[j] += g.at(i, j);
                        }
                    }
                    accumulate(&mut grads, *a, g);
                    accumulate(&mut grads, *row, gr);
                }
                Op::Mul(a, b) => {
                    let mut ga = g.clone();
                    for (x, y) in ga
                        .data_mut()
                        .iter_mut()
                        .zip(self.nodes[b.index()].value.data())
                    {
                        *x *= y;
                    }
                    let mut gb = g;
                    for (x, y) in gb
                        .data_mut()
                        .iter_mut()
                        .zip(self.nodes[a.index()].value.data())
                    {
                        *x *= y;
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::ScaleConst(a, k) => {
                    let mut ga = g;
                    ga.scale_assign(*k);
                    accumulate(&mut grads, *a, ga);
                }
                Op::ScalarMul(s, a) => {
                    let k = self.nodes[s.index()].value.data()[0];
                    let mut gs = 0.0f32;
                    for (gi, ai) in g.data().iter().zip(self.nodes[a.index()].value.data()) {
                        gs += gi * ai;
                    }
                    let mut ga = g;
                    ga.scale_assign(k);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *s, Tensor::from_vec(1, 1, vec![gs]));
                }
                Op::AffineScalar(a, k, _c) => {
                    let mut ga = g;
                    ga.scale_assign(*k);
                    accumulate(&mut grads, *a, ga);
                }
                Op::Sigmoid(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(node.value.data()) {
                        *x *= y * (1.0 - y);
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Tanh(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(node.value.data()) {
                        *x *= 1.0 - y * y;
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Relu(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(node.value.data()) {
                        if *y <= 0.0 {
                            *x = 0.0;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::GatherRows(a, rows) => {
                    let (n, m) = self.nodes[a.index()].value.shape();
                    let mut ga = Tensor::zeros(n, m);
                    for (i, &r) in rows.iter().enumerate() {
                        let dst = r as usize * m;
                        for j in 0..m {
                            ga.data_mut()[dst + j] += g.at(i, j);
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Pick(a, r, c) => {
                    let (n, m) = self.nodes[a.index()].value.shape();
                    let mut ga = Tensor::zeros(n, m);
                    ga.set(*r, *c, g.data()[0]);
                    accumulate(&mut grads, *a, ga);
                }
                Op::Mix(s, a, b) => {
                    let k = self.nodes[s.index()].value.data()[0];
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    let mut gs = 0.0f32;
                    for ((gi, ai), bi) in g.data().iter().zip(av.data()).zip(bv.data()) {
                        gs += gi * (ai - bi);
                    }
                    let mut ga = g.clone();
                    ga.scale_assign(k);
                    let mut gb = g;
                    gb.scale_assign(1.0 - k);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                    accumulate(&mut grads, *s, Tensor::from_vec(1, 1, vec![gs]));
                }
                Op::MaskedLogSoftmax(a, mask) => {
                    // d logp_i / d x_j = δ_ij − p_j (valid j).
                    let mut gsum = 0.0f32;
                    for (i, &gi) in g.data().iter().enumerate() {
                        if mask[i] {
                            gsum += gi;
                        }
                    }
                    let (n, m) = node.value.shape();
                    let mut ga = Tensor::zeros(n, m);
                    for i in 0..mask.len() {
                        if mask[i] {
                            let p = node.value.data()[i].exp();
                            ga.data_mut()[i] = g.data()[i] - p * gsum;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut grads[v.index()] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Csr;

    /// Central-difference gradient check for a scalar function of one leaf.
    fn grad_check(input: Tensor, f: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = f(&mut tape, x);
        let grads = tape.backward(loss);
        let g = grads.get(x).expect("input must receive gradient").clone();
        let eps = 1e-2;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut tp = Tape::new();
            let xp = tp.leaf(plus);
            let vp = f(&mut tp, xp);
            let lp = tp.value(vp).data()[0];
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let mut tm = Tape::new();
            let xm = tm.leaf(minus);
            let vm = f(&mut tm, xm);
            let lm = tm.value(vm).data()[0];
            let num = (lp - lm) / (2.0 * eps);
            let ana = g.data()[i];
            assert!(
                (num - ana).abs() < tol * (1.0 + num.abs().max(ana.abs())),
                "element {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn matmul_chain_gradient() {
        let w = Tensor::from_vec(3, 2, vec![0.3, -0.2, 0.5, 0.7, -0.4, 0.1]);
        grad_check(
            Tensor::from_vec(1, 3, vec![0.5, -1.0, 2.0]),
            move |t, x| {
                let wv = t.leaf(w.clone());
                let h = t.matmul(x, wv);
                let h = t.tanh(h);
                let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
                t.matmul(h, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn sigmoid_mul_add_gradient() {
        let b = Tensor::from_vec(1, 4, vec![0.1, 0.2, -0.3, 0.4]);
        grad_check(
            Tensor::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]),
            move |t, x| {
                let bv = t.leaf(b.clone());
                let s = t.sigmoid(x);
                let m = t.mul(s, bv);
                let m = t.affine(m, 2.0, 0.25);
                let ones = t.leaf(Tensor::from_vec(4, 1, vec![1.0; 4]));
                t.matmul(m, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn scalar_gate_gradient() {
        // loss = sum(sigmoid(s) * x): check grad w.r.t. the scalar gate.
        let x = Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        grad_check(
            Tensor::from_vec(1, 1, vec![0.3]),
            move |t, s| {
                let xv = t.leaf(x.clone());
                let sg = t.sigmoid(s);
                let y = t.scalar_mul(sg, xv);
                let ones = t.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
                t.matmul(y, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn spmm_gradient() {
        let csr: SharedCsr = Arc::new(Csr::new(
            2,
            3,
            vec![0, 2, 3],
            vec![0, 2, 1],
            vec![0.5, 2.0, -1.0],
        ));
        grad_check(
            Tensor::from_vec(3, 2, vec![1.0, 2.0, -0.5, 0.3, 0.7, -1.2]),
            move |t, x| {
                let y = t.spmm(&csr, x);
                let y = t.tanh(y);
                let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0; 2]));
                let col = t.matmul(y, ones);
                let onesr = t.leaf(Tensor::from_vec(1, 2, vec![1.0; 2]));
                t.matmul(onesr, col)
            },
            1e-2,
        );
    }

    #[test]
    fn masked_log_softmax_gradient() {
        let mask = Arc::new(vec![true, false, true, true]);
        grad_check(
            Tensor::from_vec(4, 1, vec![0.2, 9.0, -0.5, 1.0]),
            move |t, x| {
                let lp = t.masked_log_softmax(x, Arc::clone(&mask));
                t.pick(lp, 2, 0)
            },
            1e-2,
        );
    }

    #[test]
    fn masked_entries_have_zero_probability_and_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(3, 1, vec![1.0, 100.0, 2.0]));
        let mask = Arc::new(vec![true, false, true]);
        let lp = tape.masked_log_softmax(x, mask);
        assert_eq!(tape.value(lp).at(1, 0), f32::NEG_INFINITY);
        // Valid entries normalize.
        let p: f32 = [0, 2].iter().map(|&i| tape.value(lp).at(i, 0).exp()).sum();
        assert!((p - 1.0).abs() < 1e-5);
        let loss = tape.pick(lp, 0, 0);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).expect("grad").at(1, 0), 0.0);
    }

    #[test]
    fn gather_and_addrow_gradient() {
        let rows = Arc::new(vec![2u32, 0u32]);
        let bias = Tensor::from_vec(1, 2, vec![0.3, -0.1]);
        grad_check(
            Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            move |t, x| {
                let g = t.gather_rows(x, Arc::clone(&rows));
                let bv = t.leaf(bias.clone());
                let g = t.add_row(g, bv);
                let g = t.relu(g);
                let ones = t.leaf(Tensor::from_vec(2, 1, vec![1.0; 2]));
                let col = t.matmul(g, ones);
                let onesr = t.leaf(Tensor::from_vec(1, 2, vec![1.0; 2]));
                t.matmul(onesr, col)
            },
            1e-2,
        );
    }

    #[test]
    fn mix_gradient() {
        // loss = sum(mix(sigmoid(s), a, b)); check grads w.r.t. the gate.
        let a = Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let b = Tensor::from_vec(1, 3, vec![-0.5, 1.5, 2.0]);
        grad_check(
            Tensor::from_vec(1, 1, vec![0.2]),
            move |t, s| {
                let sg = t.sigmoid(s);
                let av = t.leaf(a.clone());
                let bv = t.leaf(b.clone());
                let y = t.mix(sg, av, bv);
                let ones = t.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
                t.matmul(y, ones)
            },
            1e-2,
        );
        // And w.r.t. the interpolated operands.
        let s = Tensor::from_vec(1, 1, vec![0.3]);
        let b2 = Tensor::from_vec(1, 3, vec![-0.5, 1.5, 2.0]);
        grad_check(
            Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]),
            move |t, a| {
                let sv = t.leaf(s.clone());
                let bv = t.leaf(b2.clone());
                let y = t.mix(sv, a, bv);
                let ones = t.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
                t.matmul(y, ones)
            },
            1e-2,
        );
    }

    #[test]
    fn mix_agrees_with_decomposed_form() {
        let mut tape = Tape::new();
        let s = tape.leaf(Tensor::from_vec(1, 1, vec![0.37]));
        let a = tape.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = tape.leaf(Tensor::from_vec(2, 2, vec![-1.0, 0.5, 0.0, 2.0]));
        let fused = tape.mix(s, a, b);
        // Decomposed: s·a + b − s·b.
        let sa = tape.scalar_mul(s, a);
        let sb = tape.scalar_mul(s, b);
        let nsb = tape.scale(sb, -1.0);
        let part = tape.add(b, nsb);
        let slow = tape.add(sa, part);
        for i in 0..4 {
            assert!((tape.value(fused).data()[i] - tape.value(slow).data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn fan_out_accumulates_gradients() {
        // y = x + x → dy/dx = 2.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 1, vec![3.0]));
        let y = tape.add(x, x);
        let grads = tape.backward(y);
        assert_eq!(grads.get(x).expect("grad").data()[0], 2.0);
        assert_eq!(tape.len(), 2);
        assert!(!tape.is_empty());
    }
}
