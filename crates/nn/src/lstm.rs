//! LSTM cell (paper Eq. 4): the past-actions encoder of RL-CCD.

use crate::init::xavier;
use crate::module::{ParamBinding, ParamSet};
use crate::tape::{TapeOps, Var};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

const GATES: [&str; 4] = ["i", "f", "o", "c"];

/// One LSTM cell with input width `in_dim` and state width `hidden`.
///
/// # Examples
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use rl_ccd_nn::{LstmCell, ParamSet, Tape, Tensor};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut params = ParamSet::new();
/// let cell = LstmCell::init("enc", 4, 8, &mut params, &mut rng);
/// let mut tape = Tape::new();
/// let binding = params.bind(&mut tape);
/// let state = cell.zero_state(&mut tape);
/// let x = tape.leaf(Tensor::from_vec(1, 4, vec![0.1, -0.2, 0.3, 0.0]));
/// let next = cell.step(&mut tape, &binding, x, state);
/// assert_eq!(tape.value(next.h).shape(), (1, 8));
/// ```
///
/// Parameters are registered as `"{name}.wx_{g}"`, `"{name}.wh_{g}"`,
/// `"{name}.b_{g}"` for each gate `g ∈ {i, f, o, c}` — the explicit form of
/// the paper's Eq. 4.
#[derive(Clone, Debug)]
pub struct LstmCell {
    name: String,
    in_dim: usize,
    hidden: usize,
}

/// The recurrent state `(h, c)` as tape variables.
#[derive(Clone, Copy, Debug)]
pub struct LstmState {
    /// Hidden vector (1×hidden) — the attention query in RL-CCD.
    pub h: Var,
    /// Cell vector (1×hidden).
    pub c: Var,
}

impl LstmCell {
    /// Creates the cell and registers freshly-initialized parameters.
    /// The forget-gate bias starts at 1.0 (the standard trick for stable
    /// early training).
    pub fn init(
        name: impl Into<String>,
        in_dim: usize,
        hidden: usize,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Self {
        let name = name.into();
        for g in GATES {
            params.insert(format!("{name}.wx_{g}"), xavier(in_dim, hidden, rng));
            params.insert(format!("{name}.wh_{g}"), xavier(hidden, hidden, rng));
            let bias = if g == "f" {
                Tensor::from_vec(1, hidden, vec![1.0; hidden])
            } else {
                Tensor::zeros(1, hidden)
            };
            params.insert(format!("{name}.b_{g}"), bias);
        }
        Self {
            name,
            in_dim,
            hidden,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Zero initial state recorded on `tape` (Algorithm 1 line 3).
    pub fn zero_state<T: TapeOps>(&self, tape: &mut T) -> LstmState {
        LstmState {
            h: tape.leaf(Tensor::zeros(1, self.hidden)),
            c: tape.leaf(Tensor::zeros(1, self.hidden)),
        }
    }

    fn gate<T: TapeOps>(
        &self,
        tape: &mut T,
        binding: &ParamBinding,
        g: &str,
        x: Var,
        h: Var,
    ) -> Var {
        let wx = binding.var(&format!("{}.wx_{g}", self.name));
        let wh = binding.var(&format!("{}.wh_{g}", self.name));
        let b = binding.var(&format!("{}.b_{g}", self.name));
        tape.linear2(x, wx, h, wh, b)
    }

    /// One recurrence step: consumes input `x` (1×in) and the previous
    /// state, returns the next state (Eq. 4).
    pub fn step<T: TapeOps>(
        &self,
        tape: &mut T,
        binding: &ParamBinding,
        x: Var,
        state: LstmState,
    ) -> LstmState {
        let i_pre = self.gate(tape, binding, "i", x, state.h);
        let i = tape.sigmoid(i_pre);
        let f_pre = self.gate(tape, binding, "f", x, state.h);
        let f = tape.sigmoid(f_pre);
        let o_pre = self.gate(tape, binding, "o", x, state.h);
        let o = tape.sigmoid(o_pre);
        let c_pre = self.gate(tape, binding, "c", x, state.h);
        let c_tilde = tape.tanh(c_pre);
        let keep = tape.mul(f, state.c);
        let write = tape.mul(i, c_tilde);
        let c = tape.add(keep, write);
        let ct = tape.tanh(c);
        let h = tape.mul(o, ct);
        LstmState { h, c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::GradSet;
    use crate::tape::Tape;
    use rand::SeedableRng;

    fn build() -> (ParamSet, LstmCell) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut params = ParamSet::new();
        let cell = LstmCell::init("enc", 3, 4, &mut params, &mut rng);
        (params, cell)
    }

    #[test]
    fn shapes_and_state_evolution() {
        let (params, cell) = build();
        assert_eq!((cell.in_dim(), cell.hidden()), (3, 4));
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let s0 = cell.zero_state(&mut tape);
        let x = tape.leaf(Tensor::from_vec(1, 3, vec![1.0, -0.5, 0.25]));
        let s1 = cell.step(&mut tape, &binding, x, s0);
        assert_eq!(tape.value(s1.h).shape(), (1, 4));
        assert_eq!(tape.value(s1.c).shape(), (1, 4));
        // Non-zero input must move the state.
        assert!(tape.value(s1.h).norm() > 0.0);
        // A second step produces a different hidden vector.
        let s2 = cell.step(&mut tape, &binding, x, s1);
        assert_ne!(tape.value(s2.h).data(), tape.value(s1.h).data());
    }

    #[test]
    fn gradients_flow_through_time() {
        let (params, cell) = build();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let mut state = cell.zero_state(&mut tape);
        for step in 0..3 {
            let x = tape.leaf(Tensor::from_vec(1, 3, vec![step as f32, 1.0, -1.0]));
            state = cell.step(&mut tape, &binding, x, state);
        }
        let ones = tape.leaf(Tensor::from_vec(4, 1, vec![1.0; 4]));
        let loss = tape.matmul(state.h, ones);
        let mut grads = tape.backward(loss);
        let mut gs = GradSet::new();
        gs.accumulate(&binding, &mut grads);
        // Every gate's input weights should receive gradient.
        for g in super::GATES {
            let grad = gs.get(&format!("enc.wx_{g}"));
            assert!(
                grad.map(|t| t.norm() > 0.0).unwrap_or(false),
                "gate {g} got no gradient"
            );
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let (params, _) = build();
        let bf = params.get("enc.b_f").expect("forget bias");
        assert!(bf.data().iter().all(|&v| v == 1.0));
        let bi = params.get("enc.b_i").expect("input bias");
        assert!(bi.data().iter().all(|&v| v == 0.0));
    }
}
