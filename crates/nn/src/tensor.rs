//! Dense 2-D tensors (row-major `f32`), the value type of the autodiff tape.

use std::fmt;

/// A dense row-major matrix of `f32`. Vectors are 1×n or n×1 tensors.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// A view of one row.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} by {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = k * other.cols;
                let dst = i * other.cols;
                for j in 0..other.cols {
                    out.data[dst + j] += a * other.data[orow + j];
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul row mismatch");
        let mut out = Tensor::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = r * self.cols;
            let brow = r * other.cols;
            for i in 0..self.cols {
                let a = self.data[arow + i];
                if a == 0.0 {
                    continue;
                }
                let dst = i * other.cols;
                for j in 0..other.cols {
                    out.data[dst + j] += a * other.data[brow + j];
                }
            }
        }
        out
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t col mismatch");
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = i * self.cols;
            for j in 0..other.rows {
                let brow = j * other.cols;
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[arow + k] * other.data[brow + k];
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self *= k`.
    pub fn scale_assign(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Whether every element is finite (no NaN or ±Inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Consumes the tensor and returns its row-major storage, so the
    /// allocation can be recycled through a [`crate::BufferPool`].
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_products_agree_with_explicit() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(2, 2, vec![1.0, 0.5, -1.0, 2.0]);
        // aᵀ·b == explicit transpose multiply
        let t = a.t_matmul(&b);
        assert_eq!(t.shape(), (3, 2));
        assert!((t.at(0, 0) - (1.0 * 1.0 - 4.0 * 1.0)).abs() < 1e-6);
        // a·cᵀ
        let c = Tensor::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        let m = a.matmul_t(&c);
        assert_eq!(m.shape(), (2, 4));
        assert!((m.at(0, 0) - (1.0 * 0.0 + 2.0 * 1.0 + 3.0 * 2.0)).abs() < 1e-6);
    }

    #[test]
    fn accessors_and_inplace_ops() {
        let mut a = Tensor::zeros(2, 2);
        a.set(0, 1, 3.0);
        assert_eq!(a.at(0, 1), 3.0);
        assert_eq!(a.row(0), &[0.0, 3.0]);
        let b = Tensor::from_vec(2, 2, vec![1.0; 4]);
        a.add_assign(&b);
        assert_eq!(a.sum(), 3.0 + 4.0);
        a.scale_assign(2.0);
        assert_eq!(a.at(0, 1), 8.0);
        assert!(a.norm() > 0.0);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 4);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }
}
