//! Minimal neural-network stack for the RL-CCD reproduction.
//!
//! The paper's models (EP-GNN, an LSTM encoder, a pointer-style attention
//! decoder) are built in PyTorch; no equivalent ecosystem exists for this
//! port, so this crate provides the required pieces from scratch:
//!
//! * [`Tensor`] — dense row-major `f32` matrices;
//! * [`Csr`] — sparse matrices for neighbourhood aggregation / cone readout;
//! * [`Tape`] — reverse-mode autodiff over the op set those models need
//!   (including a masked log-softmax for pointer attention);
//! * [`Linear`] / [`LstmCell`] — layers whose parameters live in a named
//!   [`ParamSet`] with text serialization (transfer learning);
//! * [`Adam`] / [`Sgd`] — optimizers consuming accumulated [`GradSet`]s.
//!
//! # Example: fit a tiny regression
//! ```
//! use rl_ccd_nn::{Adam, GradSet, ParamSet, Tape, Tensor};
//!
//! let mut params = ParamSet::new();
//! params.insert("w", Tensor::zeros(1, 1));
//! let mut adam = Adam::new(0.05);
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let binding = params.bind(&mut tape);
//!     let w = binding.var("w");
//!     let t = tape.leaf(Tensor::from_vec(1, 1, vec![-3.0]));
//!     let diff = tape.add(w, t); // w − 3
//!     let loss = tape.mul(diff, diff);
//!     let mut grads = tape.backward(loss);
//!     let mut gs = GradSet::new();
//!     gs.accumulate(&binding, &mut grads);
//!     adam.step(&mut params, &gs);
//! }
//! let w = params.get("w").expect("w").data()[0];
//! assert!((w - 3.0).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gru;
pub mod init;
pub mod kernels;
pub mod linear;
pub mod lstm;
pub mod module;
pub mod optim;
pub mod sparse;
pub mod tape;
pub mod tensor;

pub use gru::GruCell;
pub use init::{uniform, xavier};
pub use kernels::{BufferPool, KernelMode};
pub use linear::Linear;
pub use lstm::{LstmCell, LstmState};
pub use module::{GradSet, LoadParamsError, ParamBinding, ParamSet};
pub use optim::{Adam, Sgd};
pub use sparse::{Csr, SharedCsr};
pub use tape::{Gradients, NoGradTape, Tape, TapeOps, Var};
pub use tensor::Tensor;
