//! Optimizers: Adam (the workhorse) and plain SGD.

use crate::module::{GradSet, ParamSet};
use crate::tensor::Tensor;
use std::collections::BTreeMap;

/// Adam optimizer with per-parameter first/second moment state.
#[derive(Clone, Debug, PartialEq)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    m: BTreeMap<String, Tensor>,
    v: BTreeMap<String, Tensor>,
    t: u64,
}

impl Adam {
    /// Adam with the canonical hyper-parameters and the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: BTreeMap::new(),
            v: BTreeMap::new(),
            t: 0,
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Multiplies the learning rate by `factor` (0 < factor ≤ 1). The
    /// trainer calls this after a divergent update is rolled back so a
    /// persistently bad loss landscape cannot destroy the run.
    pub fn decay_lr(&mut self, factor: f32) {
        debug_assert!(factor > 0.0 && factor <= 1.0, "bad decay factor {factor}");
        self.lr *= factor;
    }

    /// Whether every moment estimate is finite. Non-finite moments mean a
    /// poisoned gradient reached the optimizer and the state must be
    /// restored from the last good snapshot.
    pub fn state_is_finite(&self) -> bool {
        self.m.values().all(Tensor::all_finite) && self.v.values().all(Tensor::all_finite)
    }

    /// Writes the optimizer state (step count + moment estimates) so a
    /// training run can be resumed exactly.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "rl-ccd-adam v1 {} {} {} {} {}",
            self.t, self.lr, self.beta1, self.beta2, self.eps
        )?;
        let mut m = ParamSet::new();
        for (k, v) in &self.m {
            m.insert(k.clone(), v.clone());
        }
        m.save(&mut w)?;
        let mut v = ParamSet::new();
        for (k, t) in &self.v {
            v.insert(k.clone(), t.clone());
        }
        v.save(&mut w)
    }

    /// Restores an optimizer saved with [`Adam::save`].
    ///
    /// # Errors
    /// Returns an error on malformed content.
    pub fn load<R: std::io::BufRead>(mut r: R) -> Result<Self, Box<dyn std::error::Error>> {
        let mut header = String::new();
        r.read_line(&mut header)?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("rl-ccd-adam") || parts.next() != Some("v1") {
            return Err("bad adam header".into());
        }
        let t: u64 = parts.next().ok_or("missing t")?.parse()?;
        let lr: f32 = parts.next().ok_or("missing lr")?.parse()?;
        let beta1: f32 = parts.next().ok_or("missing beta1")?.parse()?;
        let beta2: f32 = parts.next().ok_or("missing beta2")?.parse()?;
        let eps: f32 = parts.next().ok_or("missing eps")?.parse()?;
        let m_set = ParamSet::load(&mut r)?;
        let v_set = ParamSet::load(&mut r)?;
        let mut m = BTreeMap::new();
        for (k, t) in m_set.iter() {
            m.insert(k.to_string(), t.clone());
        }
        let mut v = BTreeMap::new();
        for (k, t) in v_set.iter() {
            v.insert(k.to_string(), t.clone());
        }
        Ok(Self {
            lr,
            beta1,
            beta2,
            eps,
            m,
            v,
            t,
        })
    }

    /// Applies one update to `params` from averaged `grads`. Parameters
    /// without a gradient are left untouched.
    pub fn step(&mut self, params: &mut ParamSet, grads: &GradSet) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (name, g) in grads.iter() {
            let Some(p) = params.get_mut(name) else {
                continue;
            };
            let m = self
                .m
                .entry(name.to_string())
                .or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
            let v = self
                .v
                .entry(name.to_string())
                .or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
            for i in 0..g.len() {
                let gi = g.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / b1t;
                let vhat = vi / b2t;
                p.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent (used by tests and ablations).
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies `params -= lr · grads`.
    pub fn step(&self, params: &mut ParamSet, grads: &GradSet) {
        for (name, g) in grads.iter() {
            if let Some(p) = params.get_mut(name) {
                for i in 0..g.len() {
                    p.data_mut()[i] -= self.lr * g.data()[i];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizes ‖x − target‖² and checks convergence.
    fn quadratic_descent(optim: &mut Adam, iters: usize) -> f32 {
        let target = [1.5f32, -2.0, 0.5];
        let mut params = ParamSet::new();
        params.insert("x", Tensor::zeros(1, 3));
        for _ in 0..iters {
            let mut tape = Tape::new();
            let binding = params.bind(&mut tape);
            let x = binding.var("x");
            let t = tape.leaf(Tensor::from_vec(1, 3, target.to_vec()));
            let nt = tape.scale(t, -1.0);
            let diff = tape.add(x, nt);
            let sq = tape.mul(diff, diff);
            let ones = tape.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
            let loss = tape.matmul(sq, ones);
            let mut grads = tape.backward(loss);
            let mut gs = GradSet::new();
            gs.accumulate(&binding, &mut grads);
            optim.step(&mut params, &gs);
        }
        let x = params.get("x").expect("x");
        target
            .iter()
            .enumerate()
            .map(|(i, t)| (x.data()[i] - t).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1);
        let err = quadratic_descent(&mut adam, 300);
        assert!(err < 0.05, "residual error {err}");
        assert_eq!(adam.steps(), 300);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let target = 2.0f32;
        let mut params = ParamSet::new();
        params.insert("x", Tensor::zeros(1, 1));
        let sgd = Sgd::new(0.1);
        for _ in 0..100 {
            let mut tape = Tape::new();
            let binding = params.bind(&mut tape);
            let x = binding.var("x");
            let t = tape.leaf(Tensor::from_vec(1, 1, vec![-target]));
            let diff = tape.add(x, t);
            let loss = tape.mul(diff, diff);
            let mut grads = tape.backward(loss);
            let mut gs = GradSet::new();
            gs.accumulate(&binding, &mut grads);
            sgd.step(&mut params, &gs);
        }
        assert!((params.get("x").expect("x").data()[0] - target).abs() < 1e-2);
    }

    #[test]
    fn adam_state_roundtrips_and_resumes_identically() {
        // Train a few steps, save, keep training both the original and the
        // restored copy: they must stay bit-identical.
        let target = [1.5f32, -2.0, 0.5];
        let mut params = ParamSet::new();
        params.insert("x", Tensor::zeros(1, 3));
        let mut adam = Adam::new(0.1);
        let step_once = |adam: &mut Adam, params: &mut ParamSet| {
            let mut tape = Tape::new();
            let binding = params.bind(&mut tape);
            let x = binding.var("x");
            let t = tape.leaf(Tensor::from_vec(1, 3, target.to_vec()));
            let nt = tape.scale(t, -1.0);
            let diff = tape.add(x, nt);
            let sq = tape.mul(diff, diff);
            let ones = tape.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
            let loss = tape.matmul(sq, ones);
            let mut grads = tape.backward(loss);
            let mut gs = GradSet::new();
            gs.accumulate(&binding, &mut grads);
            adam.step(params, &gs);
        };
        for _ in 0..5 {
            step_once(&mut adam, &mut params);
        }
        let mut buf = Vec::new();
        adam.save(&mut buf).expect("save to memory");
        let mut restored = Adam::load(&buf[..]).expect("load");
        assert_eq!(restored.steps(), adam.steps());
        let mut params_restored = params.clone();
        for _ in 0..5 {
            step_once(&mut adam, &mut params);
            step_once(&mut restored, &mut params_restored);
        }
        assert_eq!(params, params_restored, "resume must be exact");
    }

    #[test]
    fn step_ignores_unknown_parameters() {
        let mut params = ParamSet::new();
        params.insert("known", Tensor::zeros(1, 1));
        let mut gs = GradSet::new();
        // Manually forge a grad set with an unknown name via merge.
        let mut other = GradSet::new();
        {
            // Build a rollout against a different param set.
            let mut donor = ParamSet::new();
            donor.insert("unknown", Tensor::zeros(1, 1));
            let mut tape = Tape::new();
            let binding = donor.bind(&mut tape);
            let x = binding.var("unknown");
            let loss = tape.mul(x, x);
            let mut grads = tape.backward(loss);
            other.accumulate(&binding, &mut grads);
        }
        gs.merge(other);
        let mut adam = Adam::new(0.1);
        adam.step(&mut params, &gs); // must not panic
        assert_eq!(params.get("known").expect("known").data()[0], 0.0);
    }
}
