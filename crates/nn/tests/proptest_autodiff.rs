//! Property-based verification of the autodiff engine: analytic gradients
//! of randomly-built computations must match central finite differences,
//! and the tensor algebra must satisfy its identities.

use proptest::prelude::*;
use rl_ccd_nn::{Csr, Tape, Tensor, Var};
use std::sync::Arc;

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

/// A randomly chosen scalar-valued computation over a 2×3 input.
#[derive(Clone, Debug)]
enum Program {
    TanhChain(Tensor),      // sum(tanh(x·W))
    SigmoidMul(Tensor),     // sum(sigmoid(x) ⊙ M)
    SpmmRelu,               // sum(relu(S·x))
    SoftmaxPick(Vec<bool>), // logsoftmax over flattened x, pick first valid
    GateMix(Tensor),        // sum(s·x + (1−s)·M) with trainable scalar path
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop_oneof![
        arb_tensor(3, 2).prop_map(Program::TanhChain),
        arb_tensor(2, 3).prop_map(Program::SigmoidMul),
        Just(Program::SpmmRelu),
        proptest::collection::vec(any::<bool>(), 6)
            .prop_filter("at least one valid", |m| m.iter().any(|&b| b))
            .prop_map(Program::SoftmaxPick),
        arb_tensor(2, 3).prop_map(Program::GateMix),
    ]
}

fn sum_all(tape: &mut Tape, v: Var) -> Var {
    let (r, c) = tape.value(v).shape();
    let ones_c = tape.leaf(Tensor::from_vec(c, 1, vec![1.0; c]));
    let col = tape.matmul(v, ones_c);
    let ones_r = tape.leaf(Tensor::from_vec(1, r, vec![1.0; r]));
    tape.matmul(ones_r, col)
}

fn run(program: &Program, input: &Tensor) -> (f32, Option<Tensor>) {
    let mut tape = Tape::new();
    let x = tape.leaf(input.clone());
    let out = match program {
        Program::TanhChain(w) => {
            let wv = tape.leaf(w.clone());
            let h = tape.matmul(x, wv);
            let h = tape.tanh(h);
            sum_all(&mut tape, h)
        }
        Program::SigmoidMul(m) => {
            let mv = tape.leaf(m.clone());
            let s = tape.sigmoid(x);
            let p = tape.mul(s, mv);
            sum_all(&mut tape, p)
        }
        Program::SpmmRelu => {
            let csr = Arc::new(Csr::new(
                2,
                2,
                vec![0, 2, 3],
                vec![0, 1, 0],
                vec![0.7, -1.3, 2.0],
            ));
            let y = tape.spmm(&csr, x);
            let y = tape.relu(y);
            sum_all(&mut tape, y)
        }
        Program::SoftmaxPick(mask) => {
            let lp = tape.masked_log_softmax(x, Arc::new(mask.clone()));
            let idx = mask.iter().position(|&b| b).expect("one valid");
            let (r, c) = (idx / input.cols(), idx % input.cols());
            tape.pick(lp, r, c)
        }
        Program::GateMix(m) => {
            let s = tape.leaf(Tensor::from_vec(1, 1, vec![0.4]));
            let sg = tape.sigmoid(s);
            let mv = tape.leaf(m.clone());
            let a = tape.scalar_mul(sg, x);
            let b1 = tape.scalar_mul(sg, mv);
            let nb = tape.scale(b1, -1.0);
            let b2 = tape.leaf(m.clone());
            let rest = tape.add(b2, nb);
            let y = tape.add(a, rest);
            sum_all(&mut tape, y)
        }
    };
    let value = tape.value(out).data()[0];
    let grads = tape.backward(out);
    (value, grads.get(x).cloned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gradients_match_finite_differences(
        program in arb_program(),
        input in arb_tensor(2, 3),
    ) {
        // ReLU is non-differentiable at 0: skip inputs that place any
        // pre-activation close enough to the kink for the central
        // difference to straddle it.
        if let Program::SpmmRelu = program {
            let csr = Csr::new(
                2,
                2,
                vec![0, 2, 3],
                vec![0, 1, 0],
                vec![0.7, -1.3, 2.0],
            );
            let pre = csr.matmul(&input);
            prop_assume!(pre.data().iter().all(|&v| v.abs() > 0.05));
        }
        let (_, grad) = run(&program, &input);
        let grad = grad.expect("input participates");
        let eps = 1e-2f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let (fp, _) = run(&program, &plus);
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let (fm, _) = run(&program, &minus);
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = grad.data()[i];
            prop_assert!(
                (numeric - analytic).abs() < 0.03 * (1.0 + numeric.abs().max(analytic.abs())),
                "{program:?} elem {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn matmul_transpose_identities(a in arb_tensor(3, 4), b in arb_tensor(3, 5)) {
        // aᵀ·b computed directly equals the explicit transpose product.
        let t = a.t_matmul(&b);
        prop_assert_eq!(t.shape(), (4, 5));
        for i in 0..4 {
            for j in 0..5 {
                let mut acc = 0.0f32;
                for k in 0..3 {
                    acc += a.at(k, i) * b.at(k, j);
                }
                prop_assert!((t.at(i, j) - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_tensor(2, 3),
        b in arb_tensor(2, 3),
        w in arb_tensor(3, 2),
    ) {
        // (a+b)·w == a·w + b·w
        let mut sum = a.clone();
        sum.add_assign(&b);
        let lhs = sum.matmul(&w);
        let mut rhs = a.matmul(&w);
        rhs.add_assign(&b.matmul(&w));
        for i in 0..lhs.len() {
            prop_assert!((lhs.data()[i] - rhs.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn spmm_agrees_with_dense_multiply(x in arb_tensor(3, 4)) {
        let csr = Csr::new(2, 3, vec![0, 1, 3], vec![2, 0, 1], vec![1.5, -0.5, 2.0]);
        let dense = Tensor::from_vec(
            2,
            3,
            vec![0.0, 0.0, 1.5, -0.5, 2.0, 0.0],
        );
        let sparse_out = csr.matmul(&x);
        let dense_out = dense.matmul(&x);
        for i in 0..sparse_out.len() {
            prop_assert!((sparse_out.data()[i] - dense_out.data()[i]).abs() < 1e-4);
        }
    }
}
