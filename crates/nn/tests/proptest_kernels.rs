//! Property-based parity pinning of the fast kernels against the scalar
//! reference: every fast kernel must produce **bit-identical** output to
//! [`KernelMode::Scalar`] (the pre-rewrite code, kept verbatim) over
//! random values and awkward shapes — empty matrices, 1×1, widths that
//! are not a multiple of the SIMD lane count. The fast paths are built to
//! preserve the scalar accumulation order exactly, so the assertion is
//! `to_bits() == to_bits()`, not approximate closeness; any reassociation
//! regression fails here before it can break the serve/dist bit-parity
//! suites downstream.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rl_ccd_nn::kernels::{self, BufferPool, KernelMode};
use rl_ccd_nn::{Csr, NoGradTape, Tape, TapeOps, Tensor, Var};
use std::fmt::Debug;
use std::sync::Arc;

/// Shape-dependent sampling (the vendored proptest has no `prop_flat_map`):
/// wraps a closure that draws a value straight from the RNG stream.
struct SampleFn<T, F: Fn(&mut StdRng) -> T>(F);

impl<T: Debug, F: Fn(&mut StdRng) -> T> Strategy for SampleFn<T, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Random tensor with some exact zeros mixed in, so the kernels'
/// `a == 0.0` skip paths execute alongside the dense quad paths.
fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(
        (-1.5f32..1.5).prop_map(|x| if x.abs() < 0.2 { 0.0 } else { x }),
        rows * cols,
    )
    .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

/// A dimension crossing the interesting kernel boundaries: 0 (empty),
/// 1 (no row pairing), below a quad, below the lane width, exactly one
/// lane, lane + tail, and a larger round size.
fn dim(rng: &mut StdRng) -> usize {
    [0usize, 1, 2, 3, 5, 8, 13, 32][(0..8usize).sample(rng)]
}

/// Nonzero variant for dimensions a shape can't legally collapse.
fn dim_nz(rng: &mut StdRng) -> usize {
    dim(rng).max(1)
}

fn tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    arb_tensor(rows, cols).sample(rng)
}

/// `(a: m×k, b: k×n, g: m×n)` — one dense layer's operands (forward
/// input/weight plus the upstream gradient) at boundary-crossing shapes.
fn arb_layer_operands() -> impl Strategy<Value = (Tensor, Tensor, Tensor)> {
    SampleFn(|rng: &mut StdRng| {
        let (m, k, n) = (dim(rng), dim_nz(rng), dim_nz(rng));
        (tensor(rng, m, k), tensor(rng, k, n), tensor(rng, m, n))
    })
}

/// Two same-shape tensors at a random boundary-crossing shape.
fn arb_same_shape_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    SampleFn(|rng: &mut StdRng| {
        let (m, n) = (dim(rng), dim_nz(rng));
        (tensor(rng, m, n), tensor(rng, m, n))
    })
}

/// One nonempty tensor at a random boundary-crossing shape.
fn arb_nonempty_tensor() -> impl Strategy<Value = Tensor> {
    SampleFn(|rng: &mut StdRng| {
        let (m, n) = (dim_nz(rng), dim_nz(rng));
        tensor(rng, m, n)
    })
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

/// Asserts the two tensors are bit-identical (shape and every element).
macro_rules! assert_bit_eq {
    ($fast:expr, $scalar:expr, $what:expr) => {{
        let (f, s) = (&$fast, &$scalar);
        prop_assert_eq!(f.shape(), s.shape(), "{}: shape mismatch", $what);
        prop_assert_eq!(
            bits(f),
            bits(s),
            "{}: bits diverge at shape {:?}",
            $what,
            f.shape()
        );
    }};
}

fn check_matmul_family(a: &Tensor, b: &Tensor, g: &Tensor) -> TestCaseResult {
    let mut pool = BufferPool::new();
    // Forward product and all three backward products of a dense layer.
    assert_bit_eq!(
        kernels::matmul(KernelMode::Fast, &mut pool, a, b),
        kernels::matmul(KernelMode::Scalar, &mut pool, a, b),
        "matmul"
    );
    assert_bit_eq!(
        kernels::matmul_t(KernelMode::Fast, &mut pool, g, b),
        kernels::matmul_t(KernelMode::Scalar, &mut pool, g, b),
        "matmul_t"
    );
    assert_bit_eq!(
        kernels::t_matmul(KernelMode::Fast, &mut pool, a, g),
        kernels::t_matmul(KernelMode::Scalar, &mut pool, a, g),
        "t_matmul"
    );
    assert_bit_eq!(
        kernels::col_sum(KernelMode::Fast, &mut pool, g),
        kernels::col_sum(KernelMode::Scalar, &mut pool, g),
        "col_sum"
    );
    Ok(())
}

fn check_fused_layers(x: &Tensor, w: &Tensor, h: &Tensor, bias_seed: f32) -> TestCaseResult {
    let n = w.cols();
    let bias = Tensor::from_vec(1, n, (0..n).map(|j| bias_seed + j as f32 * 0.17).collect());
    let wh = Tensor::from_vec(
        n,
        n,
        (0..n * n).map(|j| (j as f32 * 0.23 - 1.0).sin()).collect(),
    );
    let mut pool = BufferPool::new();
    assert_bit_eq!(
        kernels::linear(KernelMode::Fast, &mut pool, x, w, &bias),
        kernels::linear(KernelMode::Scalar, &mut pool, x, w, &bias),
        "linear"
    );
    assert_bit_eq!(
        kernels::linear2(KernelMode::Fast, &mut pool, x, w, h, &wh, &bias),
        kernels::linear2(KernelMode::Scalar, &mut pool, x, w, h, &wh, &bias),
        "linear2"
    );
    Ok(())
}

fn check_elementwise(a: &Tensor, b: &Tensor, k: f32, c: f32) -> TestCaseResult {
    let s = Tensor::from_vec(1, 1, vec![k * 0.3]);
    let n = a.cols();
    let row = Tensor::from_vec(1, n, (0..n).map(|j| c + j as f32 * 0.11).collect());
    let mut pool = BufferPool::new();
    for (name, fast, scalar) in [
        (
            "add",
            kernels::add(KernelMode::Fast, &mut pool, a, b),
            kernels::add(KernelMode::Scalar, &mut pool, a, b),
        ),
        (
            "mul",
            kernels::mul(KernelMode::Fast, &mut pool, a, b),
            kernels::mul(KernelMode::Scalar, &mut pool, a, b),
        ),
        (
            "scale",
            kernels::scale(KernelMode::Fast, &mut pool, a, k),
            kernels::scale(KernelMode::Scalar, &mut pool, a, k),
        ),
        (
            "affine",
            kernels::affine(KernelMode::Fast, &mut pool, a, k, c),
            kernels::affine(KernelMode::Scalar, &mut pool, a, k, c),
        ),
        (
            "scalar_mul",
            kernels::scalar_mul(KernelMode::Fast, &mut pool, &s, a),
            kernels::scalar_mul(KernelMode::Scalar, &mut pool, &s, a),
        ),
        (
            "mix",
            kernels::mix(KernelMode::Fast, &mut pool, &s, a, b),
            kernels::mix(KernelMode::Scalar, &mut pool, &s, a, b),
        ),
        (
            "sigmoid",
            kernels::sigmoid(KernelMode::Fast, &mut pool, a),
            kernels::sigmoid(KernelMode::Scalar, &mut pool, a),
        ),
        (
            "tanh",
            kernels::tanh(KernelMode::Fast, &mut pool, a),
            kernels::tanh(KernelMode::Scalar, &mut pool, a),
        ),
        (
            "relu",
            kernels::relu(KernelMode::Fast, &mut pool, a),
            kernels::relu(KernelMode::Scalar, &mut pool, a),
        ),
    ] {
        assert_bit_eq!(fast, scalar, name);
    }
    assert_bit_eq!(
        kernels::add_row(KernelMode::Fast, &mut pool, a, &row),
        kernels::add_row(KernelMode::Scalar, &mut pool, a, &row),
        "add_row"
    );
    Ok(())
}

fn check_gather_softmax_sparse(a: &Tensor, mask_seed: u32) -> TestCaseResult {
    let (m, n) = a.shape();
    let mut pool = BufferPool::new();

    // gather_rows: repeated and out-of-order indices.
    let rows: Vec<u32> = (0..m.min(5)).map(|i| ((i * 7 + 3) % m) as u32).collect();
    assert_bit_eq!(
        kernels::gather_rows(KernelMode::Fast, &mut pool, a, &rows),
        kernels::gather_rows(KernelMode::Scalar, &mut pool, a, &rows),
        "gather_rows"
    );

    // masked_log_softmax: random mask with at least one survivor.
    let mut mask: Vec<bool> = (0..m * n)
        .map(|i| (mask_seed >> (i % 31)) & 1 == 1)
        .collect();
    mask[0] = true;
    assert_bit_eq!(
        kernels::masked_log_softmax(KernelMode::Fast, &mut pool, a, &mask),
        kernels::masked_log_softmax(KernelMode::Scalar, &mut pool, a, &mask),
        "masked_log_softmax"
    );

    // spmm / spmm_t against a small fixed sparse matrix over `a`.
    let csr = Arc::new(Csr::new(
        2,
        m,
        vec![0, 1, 2],
        vec![0, m as u32 - 1],
        vec![1.25, -0.75],
    ));
    assert_bit_eq!(
        kernels::spmm(KernelMode::Fast, &mut pool, &csr, a),
        kernels::spmm(KernelMode::Scalar, &mut pool, &csr, a),
        "spmm"
    );
    let g = Tensor::from_vec(
        2,
        n,
        (0..2 * n).map(|j| (j as f32 * 0.31 - 0.4).cos()).collect(),
    );
    assert_bit_eq!(
        kernels::spmm_t(KernelMode::Fast, &mut pool, &csr, &g),
        kernels::spmm_t(KernelMode::Scalar, &mut pool, &csr, &g),
        "spmm_t"
    );
    Ok(())
}

/// Whole-graph parity: a random small network run forward+backward on a
/// fast [`Tape`] and on [`Tape::scalar_reference`] must agree on the loss
/// **and every gradient**, bit for bit. This is the contract the
/// serve-parity and distributed bit-parity suites stand on.
fn check_whole_graph(x: &Tensor, w: &Tensor, b: &Tensor, mask: &[bool]) -> TestCaseResult {
    let run = |tape: &mut Tape| -> (f32, Vec<(Var, Vec<u32>)>) {
        let xv = tape.leaf(x.clone());
        let wv = tape.leaf(w.clone());
        let bv = tape.leaf(b.clone());
        let h = tape.linear(xv, wv, bv);
        let h = tape.tanh(h);
        let ones = tape.leaf(Tensor::from_vec(3, 1, vec![1.0; 3]));
        let scores = tape.matmul(h, ones);
        let lp = tape.masked_log_softmax(scores, Arc::new(mask.to_vec()));
        let idx = mask.iter().position(|&v| v).expect("one valid");
        let picked = tape.pick(lp, idx, 0);
        let loss = tape.value(picked).data()[0];
        let grads = tape.backward(picked);
        let got: Vec<(Var, Vec<u32>)> = [xv, wv, bv]
            .into_iter()
            .filter_map(|v| grads.get(v).map(|g| (v, bits(g))))
            .collect();
        (loss, got)
    };
    let (fast_loss, fast_grads) = run(&mut Tape::new());
    let (scalar_loss, scalar_grads) = run(&mut Tape::scalar_reference());
    prop_assert_eq!(fast_loss.to_bits(), scalar_loss.to_bits(), "loss bits");
    prop_assert_eq!(fast_grads, scalar_grads, "gradient bits diverge");
    Ok(())
}

/// The no-grad (serve) tape must agree with the training tape's forward
/// pass bit for bit — same kernels, same order.
fn check_no_grad_forward(x: &Tensor, w: &Tensor) -> TestCaseResult {
    fn graph<T: TapeOps>(tape: &mut T, x: &Tensor, w: &Tensor) -> Vec<u32> {
        let xv = tape.leaf(x.clone());
        let wv = tape.leaf(w.clone());
        let h = tape.matmul(xv, wv);
        let h = tape.sigmoid(h);
        bits(tape.value(h))
    }
    let full = graph(&mut Tape::new(), x, w);
    let no_grad = graph(&mut NoGradTape::new(), x, w);
    let scalar = graph(&mut NoGradTape::scalar_reference(), x, w);
    prop_assert_eq!(&full, &no_grad, "Tape vs NoGradTape diverge");
    prop_assert_eq!(&full, &scalar, "fast vs scalar NoGradTape diverge");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_family_is_bit_identical(ops in arb_layer_operands()) {
        let (a, b, g) = &ops;
        check_matmul_family(a, b, g)?;
    }

    #[test]
    fn fused_layers_match_their_decompositions(
        ops in arb_layer_operands(),
        bias_seed in -1.0f32..1.0,
    ) {
        let (x, w, h) = &ops;
        check_fused_layers(x, w, h, bias_seed)?;
    }

    #[test]
    fn elementwise_kernels_are_bit_identical(
        pair in arb_same_shape_pair(),
        k in -2.0f32..2.0,
        c in -1.0f32..1.0,
    ) {
        let (a, b) = &pair;
        check_elementwise(a, b, k, c)?;
    }

    #[test]
    fn gather_softmax_and_sparse_are_bit_identical(
        a in arb_nonempty_tensor(),
        mask_seed in any::<u32>(),
    ) {
        check_gather_softmax_sparse(&a, mask_seed)?;
    }

    #[test]
    fn whole_graph_forward_backward_parity(
        x in arb_tensor(4, 6),
        w in arb_tensor(6, 3),
        b in arb_tensor(1, 3),
        mask in proptest::collection::vec(any::<bool>(), 4)
            .prop_filter("one valid", |m| m.iter().any(|&v| v)),
    ) {
        check_whole_graph(&x, &w, &b, &mask)?;
    }

    #[test]
    fn no_grad_forward_matches_tape(
        x in arb_tensor(3, 5),
        w in arb_tensor(5, 2),
    ) {
        check_no_grad_forward(&x, &w)?;
    }
}
