//! Trace sinks: the human-readable summary table and the JSONL event
//! stream. The JSONL writer is hand-rolled (no serde in the workspace);
//! escaping covers everything [`crate::validate_jsonl`]'s parser accepts.

use crate::metrics::MetricValue;
use crate::schema::{TRACE_SCHEMA_NAME, TRACE_SCHEMA_VERSION};
use crate::span::FieldValue;
use crate::Recorder;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write;

/// Escapes `s` as the body of a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no inf/nan; encode them as
/// strings so the trace stays parseable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Keep integers compact and round-trip everything else.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        format!("\"{v}\"")
    }
}

fn field_json(v: &FieldValue) -> String {
    match v {
        FieldValue::I64(i) => format!("{i}"),
        FieldValue::U64(u) => format!("{u}"),
        FieldValue::F64(f) => json_f64(*f),
        FieldValue::Bool(b) => format!("{b}"),
        FieldValue::Str(s) => format!("\"{}\"", escape_json(s)),
    }
}

/// Writes the versioned JSONL event stream. Layout (one JSON object per
/// line): a `header` line, one `span` line per closed span (start order),
/// one `metric` line per registered metric (name order), and an `end` line
/// carrying the event counts so truncated files are detectable.
pub(crate) fn write_jsonl<W: Write>(rec: &Recorder, mut w: W) -> std::io::Result<()> {
    let meta = rec.meta();
    let mut meta_body = String::new();
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            meta_body.push(',');
        }
        let _ = write!(meta_body, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
    }
    writeln!(
        w,
        "{{\"type\":\"header\",\"schema\":\"{TRACE_SCHEMA_NAME}\",\"version\":{TRACE_SCHEMA_VERSION},\"meta\":{{{meta_body}}}}}"
    )?;

    let spans = rec.spans();
    for s in &spans {
        let parent = match s.parent {
            Some(p) => format!("{p}"),
            None => "null".to_string(),
        };
        let mut fields = String::new();
        for (i, (k, v)) in s.fields.iter().enumerate() {
            if i > 0 {
                fields.push(',');
            }
            let _ = write!(fields, "\"{}\":{}", escape_json(k), field_json(v));
        }
        writeln!(
            w,
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\"start_us\":{},\"dur_us\":{},\"fields\":{{{}}}}}",
            s.id,
            parent,
            escape_json(s.name),
            s.thread,
            s.start_ns / 1_000,
            s.dur_ns / 1_000,
            fields
        )?;
    }

    let metrics = rec.metrics().snapshot();
    for (name, kind, value) in &metrics {
        let body = match value {
            MetricValue::Counter(c) => format!("\"value\":{c}"),
            MetricValue::Gauge(g) => format!("\"value\":{}", json_f64(*g)),
            MetricValue::Histogram(h) => format!(
                "\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max)
            ),
        };
        writeln!(
            w,
            "{{\"type\":\"metric\",\"name\":\"{}\",\"kind\":\"{}\",{}}}",
            escape_json(name),
            kind.as_str(),
            body
        )?;
    }

    // Labeled series ride the same `metric` event with an extra `label`
    // key (readers must ignore unknown keys, so this needs no version
    // bump); they count toward the end marker like any other metric.
    let labeled = rec.metrics().snapshot_labeled();
    for (name, label, kind, value) in &labeled {
        let body = match value {
            MetricValue::Counter(c) => format!("\"value\":{c}"),
            MetricValue::Gauge(g) => format!("\"value\":{}", json_f64(*g)),
            MetricValue::Histogram(h) => format!(
                "\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max)
            ),
        };
        writeln!(
            w,
            "{{\"type\":\"metric\",\"name\":\"{}\",\"label\":\"{}\",\"kind\":\"{}\",{}}}",
            escape_json(name),
            escape_json(label),
            kind.as_str(),
            body
        )?;
    }

    writeln!(
        w,
        "{{\"type\":\"end\",\"spans\":{},\"metrics\":{}}}",
        spans.len(),
        metrics.len() + labeled.len()
    )
}

/// Renders the end-of-run summary: per-span-name aggregates (count, total
/// and mean wall time) followed by every metric.
pub(crate) fn summary(rec: &Recorder) -> String {
    let mut out = String::new();
    let spans = rec.spans();
    let _ = writeln!(out, "── observability summary ──");
    if !spans.is_empty() {
        #[derive(Default)]
        struct Agg {
            count: u64,
            total_ns: u64,
        }
        let mut by_name: BTreeMap<&'static str, Agg> = BTreeMap::new();
        for s in &spans {
            let a = by_name.entry(s.name).or_default();
            a.count += 1;
            a.total_ns += s.dur_ns;
        }
        let _ = writeln!(
            out,
            "{:<32} {:>8} {:>12} {:>12}",
            "span", "count", "total ms", "mean ms"
        );
        for (name, a) in &by_name {
            let total_ms = a.total_ns as f64 / 1e6;
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>12.3} {:>12.3}",
                name,
                a.count,
                total_ms,
                total_ms / a.count as f64
            );
        }
    }
    let metrics = rec.metrics().snapshot();
    let labeled = rec.metrics().snapshot_labeled();
    if !metrics.is_empty() || !labeled.is_empty() {
        let _ = writeln!(out, "{:<32} {:>10} {:>24}", "metric", "kind", "value");
        let render = |value: &MetricValue| match value {
            MetricValue::Counter(c) => format!("{c}"),
            MetricValue::Gauge(g) => format!("{g:.4}"),
            MetricValue::Histogram(h) => format!(
                "n={} mean={:.3} [{:.3}, {:.3}]",
                h.count,
                h.mean(),
                h.min,
                h.max
            ),
        };
        for (name, kind, value) in &metrics {
            let _ = writeln!(
                out,
                "{:<32} {:>10} {:>24}",
                name,
                kind.as_str(),
                render(value)
            );
        }
        for (name, label, kind, value) in &labeled {
            let _ = writeln!(
                out,
                "{:<32} {:>10} {:>24}",
                format!("{name}{{{label}}}"),
                kind.as_str(),
                render(value)
            );
        }
    }
    if spans.is_empty() && metrics.is_empty() && labeled.is_empty() {
        let _ = writeln!(out, "(nothing recorded)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(
            escape_json("a\"b\\c\nd\te\u{1}"),
            "a\\\"b\\\\c\\nd\\te\\u0001"
        );
    }

    #[test]
    fn non_finite_numbers_stay_parseable() {
        assert_eq!(json_f64(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn summary_mentions_spans_and_metrics() {
        let rec = Recorder::new();
        {
            let _g = crate::attach(&rec);
            let _s = crate::span!("phase.one");
            crate::counter!("c.hits", 3);
        }
        let s = rec.summary();
        assert!(s.contains("phase.one"));
        assert!(s.contains("c.hits"));
    }

    #[test]
    fn empty_recorder_summary_says_so() {
        assert!(Recorder::new().summary().contains("(nothing recorded)"));
    }

    #[test]
    fn labeled_metrics_validate_and_show_in_summary() {
        let rec = Recorder::new();
        rec.metrics()
            .labeled_counter("daemon.tenant.requests", "acme")
            .add(7);
        rec.metrics()
            .labeled_histogram("daemon.tenant.latency_ms", "acme")
            .observe(2.25);
        let mut out = Vec::new();
        rec.write_jsonl(&mut out).unwrap();
        let sum = crate::validate_jsonl(&out[..]).expect("labeled trace validates");
        assert_eq!(sum.metrics, 2);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"label\":\"acme\""));
        assert!(rec.summary().contains("daemon.tenant.requests{acme}"));
        assert!(!rec.is_empty());
    }
}
