//! Metrics registry: named counters, gauges and histograms with atomic
//! updates.
//!
//! Handles returned by [`Registry::counter`] & co. are cheap `Arc` clones
//! and can be cached by hot loops to skip the name lookup. Values are
//! plain atomics; a histogram keeps count / sum / min / max (enough for
//! the summary table and the JSONL sink without bucket-boundary policy).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which kind of metric a name is registered as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-write-wins `f64`.
    Gauge,
    /// Count / sum / min / max of observed `f64` samples.
    Histogram,
}

impl MetricKind {
    /// Lower-case name used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Snapshot of one histogram's aggregate state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observation (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Snapshot value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram aggregate.
    Histogram(HistogramSnapshot),
}

/// Handle to a monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a last-write-wins `f64` gauge.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramCell {
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Handle to a count/sum/min/max histogram of `f64` samples.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

/// Lock-free f64 update via compare-and-swap on the bit pattern.
fn cas_f64(cell: &AtomicU64, update: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = update(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        cas_f64(&self.0.sum_bits, |s| s + v);
        cas_f64(&self.0.min_bits, |m| m.min(v));
        cas_f64(&self.0.max_bits, |m| m.max(v));
    }

    /// Aggregate snapshot.
    pub fn get(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.0.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.0.max_bits.load(Ordering::Relaxed)),
        }
    }
}

enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Cell {
    fn kind(&self) -> MetricKind {
        match self {
            Cell::Counter(_) => MetricKind::Counter,
            Cell::Gauge(_) => MetricKind::Gauge,
            Cell::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// Registry of named metrics. Names follow the `<crate>.<subsystem>.<what>`
/// convention (see DESIGN.md §11); a name is permanently bound to the kind
/// it is first registered as.
///
/// Besides plain named metrics, the registry holds *labeled* series — one
/// cell per `(name, label)` pair (e.g. `daemon.tenant.requests` labeled by
/// tenant id). Labels are runtime strings because the set of tenants is
/// not known at compile time; the name side keeps the `&'static str`
/// convention so labeled and unlabeled series sort together.
#[derive(Default)]
pub struct Registry {
    cells: Mutex<BTreeMap<&'static str, Cell>>,
    labeled: Mutex<BTreeMap<(&'static str, String), Cell>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell<F: FnOnce() -> Cell>(&self, name: &'static str, kind: MetricKind, make: F) -> Cell {
        let mut cells = self.cells.lock().expect("obs metrics lock");
        let cell = cells.entry(name).or_insert_with(make);
        assert_eq!(
            cell.kind(),
            kind,
            "metric {name:?} already registered as {:?}",
            cell.kind()
        );
        match cell {
            Cell::Counter(c) => Cell::Counter(c.clone()),
            Cell::Gauge(g) => Cell::Gauge(g.clone()),
            Cell::Histogram(h) => Cell::Histogram(h.clone()),
        }
    }

    /// Returns (registering on first use) the named counter.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &'static str) -> Counter {
        match self.cell(name, MetricKind::Counter, || {
            Cell::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Cell::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Returns (registering on first use) the named gauge.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match self.cell(name, MetricKind::Gauge, || {
            Cell::Gauge(Gauge(Arc::new(AtomicU64::new(0.0_f64.to_bits()))))
        }) {
            Cell::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Returns (registering on first use) the named histogram.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match self.cell(name, MetricKind::Histogram, || {
            Cell::Histogram(Histogram(Arc::new(HistogramCell {
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0_f64.to_bits()),
                min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
                max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            })))
        }) {
            Cell::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    fn labeled_cell<F: FnOnce() -> Cell>(
        &self,
        name: &'static str,
        label: &str,
        kind: MetricKind,
        make: F,
    ) -> Cell {
        let mut cells = self.labeled.lock().expect("obs labeled metrics lock");
        let cell = cells.entry((name, label.to_string())).or_insert_with(make);
        assert_eq!(
            cell.kind(),
            kind,
            "labeled metric {name:?}{{{label}}} already registered as {:?}",
            cell.kind()
        );
        match cell {
            Cell::Counter(c) => Cell::Counter(c.clone()),
            Cell::Gauge(g) => Cell::Gauge(g.clone()),
            Cell::Histogram(h) => Cell::Histogram(h.clone()),
        }
    }

    /// Returns (registering on first use) the counter for one labeled
    /// series, e.g. `labeled_counter("daemon.tenant.requests", "acme")`.
    ///
    /// # Panics
    /// Panics if `(name, label)` is already registered as a different kind.
    pub fn labeled_counter(&self, name: &'static str, label: &str) -> Counter {
        match self.labeled_cell(name, label, MetricKind::Counter, || {
            Cell::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Cell::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Returns (registering on first use) the histogram for one labeled
    /// series.
    ///
    /// # Panics
    /// Panics if `(name, label)` is already registered as a different kind.
    pub fn labeled_histogram(&self, name: &'static str, label: &str) -> Histogram {
        match self.labeled_cell(name, label, MetricKind::Histogram, || {
            Cell::Histogram(Histogram(Arc::new(HistogramCell {
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0_f64.to_bits()),
                min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
                max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            })))
        }) {
            Cell::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Sorted snapshot of every registered metric: `(name, kind, value)`.
    pub fn snapshot(&self) -> Vec<(&'static str, MetricKind, MetricValue)> {
        let cells = self.cells.lock().expect("obs metrics lock");
        cells
            .iter()
            .map(|(name, cell)| {
                let value = match cell {
                    Cell::Counter(c) => MetricValue::Counter(c.get()),
                    Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                    Cell::Histogram(h) => MetricValue::Histogram(h.get()),
                };
                (*name, cell.kind(), value)
            })
            .collect()
    }

    /// Sorted snapshot of every labeled series:
    /// `(name, label, kind, value)`.
    pub fn snapshot_labeled(&self) -> Vec<(&'static str, String, MetricKind, MetricValue)> {
        let cells = self.labeled.lock().expect("obs labeled metrics lock");
        cells
            .iter()
            .map(|((name, label), cell)| {
                let value = match cell {
                    Cell::Counter(c) => MetricValue::Counter(c.get()),
                    Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                    Cell::Histogram(h) => MetricValue::Histogram(h.get()),
                };
                (*name, label.clone(), cell.kind(), value)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("a.count");
        c.add(3);
        reg.counter("a.count").add(4);
        assert_eq!(c.get(), 7);

        let g = reg.gauge("a.gauge");
        g.set(2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);

        let h = reg.histogram("a.hist");
        h.observe(-4.0);
        h.observe(10.0);
        let snap = h.get();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 6.0);
        assert_eq!(snap.min, -4.0);
        assert_eq!(snap.max, 10.0);
        assert_eq!(snap.mean(), 3.0);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.gauge("a.first").set(1.0);
        reg.histogram("m.mid").observe(1.0);
        let names: Vec<_> = reg.snapshot().iter().map(|m| m.0).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn labeled_series_are_independent_per_label() {
        let reg = Registry::new();
        reg.labeled_counter("t.requests", "acme").add(2);
        reg.labeled_counter("t.requests", "bbco").add(5);
        reg.labeled_histogram("t.latency_ms", "acme").observe(1.5);
        assert_eq!(reg.labeled_counter("t.requests", "acme").get(), 2);
        assert_eq!(reg.labeled_counter("t.requests", "bbco").get(), 5);
        let snap = reg.snapshot_labeled();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].0, "t.latency_ms");
        assert_eq!(snap[0].1, "acme");
        assert_eq!(snap[1].1, "acme");
        assert_eq!(snap[2].1, "bbco");
        assert_eq!(snap[1].3, MetricValue::Counter(2));
        // Labeled series never collide with the unlabeled namespace.
        reg.counter("t.requests").add(1);
        assert_eq!(reg.snapshot().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn labeled_kind_conflict_panics() {
        let reg = Registry::new();
        reg.labeled_counter("dup", "a").add(1);
        let _ = reg.labeled_histogram("dup", "a");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("dup").add(1);
        let _ = reg.gauge("dup");
    }

    #[test]
    fn histogram_updates_race_free() {
        let reg = Registry::new();
        let h = reg.histogram("hot");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe(i as f64);
                    }
                });
            }
        });
        let snap = h.get();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.sum, 4.0 * 999.0 * 1000.0 / 2.0);
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 999.0);
    }
}
