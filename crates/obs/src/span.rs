//! Hierarchical timed spans with a lock-free per-thread buffer.
//!
//! Opening a span pushes a record onto a thread-local buffer and a
//! thread-local open-span stack (parenting is derived from the stack).
//! When the *outermost* span on a thread closes, the whole buffer is merged
//! into the attached [`Recorder`](crate::Recorder) in one lock acquisition —
//! i.e. once per rollout or flow run, never per span.

use crate::{thread_id, with_recorder};
use std::cell::RefCell;
use std::time::Instant;

/// A span field value. Constructed via `From` impls so the `span!` macro
/// accepts plain integers, floats, bools and strings.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Signed integer field.
    I64(i64),
    /// Unsigned integer field.
    U64(u64),
    /// Floating-point field.
    F64(f64),
    /// Boolean field.
    Bool(bool),
    /// String field.
    Str(String),
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        })*
    };
}

field_from!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One closed span as merged into a recorder.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique id (assigned at merge time).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name (static, from the `span!` call site).
    pub name: &'static str,
    /// Small integer naming the recording thread.
    pub thread: u32,
    /// Start time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Key/value fields captured at span entry.
    pub fields: Vec<(&'static str, FieldValue)>,
}

#[derive(Default)]
struct ThreadSpans {
    /// Closed and still-open records, ids local to this buffer.
    buf: Vec<SpanRecord>,
    /// Indices into `buf` of currently open spans (innermost last).
    open: Vec<usize>,
}

thread_local! {
    static SPANS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans::default());
}

/// Flushes this thread's span buffer into the attached recorder. Called when
/// the outermost span closes and when an [`AttachGuard`](crate::AttachGuard)
/// drops, so no records are lost if a guard outlives the attachment.
pub(crate) fn flush_thread_buffer() {
    SPANS.with(|s| {
        let mut s = s.borrow_mut();
        if !s.open.is_empty() || s.buf.is_empty() {
            return;
        }
        let records = std::mem::take(&mut s.buf);
        with_recorder(|rec| rec.merge_spans(records));
    });
}

/// RAII guard for an open span; closes (and possibly flushes) on drop.
/// Construct via the [`span!`](crate::span!) macro, not directly.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    /// `Some((buffer index, enter instant))` when recording.
    active: Option<(usize, Instant)>,
}

impl SpanGuard {
    /// Opens a span on the current thread's buffer. The `span!` macro only
    /// calls this when a recorder is enabled; a disabled guard is free.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Self {
        let mut start_ns = 0;
        with_recorder(|rec| start_ns = rec.elapsed_ns());
        let idx = SPANS.with(|s| {
            let mut s = s.borrow_mut();
            let idx = s.buf.len();
            let parent = s.open.last().map(|&i| i as u64);
            s.buf.push(SpanRecord {
                id: idx as u64,
                parent,
                name,
                thread: thread_id(),
                start_ns,
                dur_ns: 0,
                fields,
            });
            s.open.push(idx);
            idx
        });
        SpanGuard {
            active: Some((idx, Instant::now())),
        }
    }

    /// A guard that records nothing (the disabled fast path).
    pub fn disabled() -> Self {
        SpanGuard { active: None }
    }

    /// Appends a field to the open span — for values only known after the
    /// work ran (e.g. a stage's post-WNS). No-op on a disabled guard.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        let Some((idx, _)) = self.active else {
            return;
        };
        let value = value.into();
        SPANS.with(|s| {
            if let Some(r) = s.borrow_mut().buf.get_mut(idx) {
                r.fields.push((key, value));
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((idx, start)) = self.active.take() else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let outermost = SPANS.with(|s| {
            let mut s = s.borrow_mut();
            // Unwind any spans leaked above us (e.g. a panic unwound past
            // their guards) so parenting stays consistent.
            while let Some(&top) = s.open.last() {
                s.open.pop();
                if top == idx {
                    break;
                }
            }
            if let Some(r) = s.buf.get_mut(idx) {
                r.dur_ns = dur_ns;
            }
            s.open.is_empty()
        });
        if outermost {
            flush_thread_buffer();
        }
    }
}
