//! Workspace-wide observability: hierarchical spans, a metrics registry and
//! pluggable trace sinks.
//!
//! The layer is built around three pieces:
//!
//! * **Spans** — `span!("flow.useful_skew", sweep = i)` opens a timed,
//!   hierarchical region. Spans are buffered in a per-thread stack (no locks
//!   on the hot path) and merged into the attached [`Recorder`] whenever the
//!   outermost span on a thread closes — i.e. once per rollout / flow run.
//! * **Metrics** — a process-wide style registry of named counters, gauges
//!   and histograms ([`Registry`]) with cheap atomic updates, e.g.
//!   `counter!("sta.incremental.edits", 1)`.
//! * **Sinks** — a human-readable [`summary`](Recorder::summary) table and a
//!   versioned JSONL event stream ([`Recorder::write_jsonl`], validated by
//!   [`validate_jsonl`]).
//!
//! # Zero overhead when disabled
//!
//! Nothing is recorded unless a [`Recorder`] is *attached* to the current
//! thread ([`attach`]). Every instrumentation macro first checks a single
//! relaxed atomic (`enabled()`); when no recorder is attached anywhere in the
//! process this is the entire cost — field expressions are not even
//! evaluated. The `obs_overhead` criterion bench in `rl-ccd-bench` pins the
//! disabled-path overhead of a full flow run below the noise floor.
//!
//! # Example
//!
//! ```
//! use rl_ccd_obs as obs;
//!
//! let rec = obs::Recorder::new();
//! {
//!     let _g = obs::attach(&rec);
//!     let _root = obs::span!("work", items = 3_u64);
//!     obs::counter!("demo.items", 3);
//! }
//! assert_eq!(rec.spans().len(), 1);
//! let mut out = Vec::new();
//! rec.write_jsonl(&mut out).unwrap();
//! obs::validate_jsonl(&out[..]).unwrap();
//! ```

#![warn(missing_docs)]

mod metrics;
mod schema;
mod sink;
mod span;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricValue, Registry,
};
pub use schema::{
    validate_jsonl, Json, SchemaError, TraceSummary, TRACE_SCHEMA_NAME, TRACE_SCHEMA_VERSION,
};
pub use span::{FieldValue, SpanGuard, SpanRecord};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of recorders currently attached across all threads. The disabled
/// fast path is a single relaxed load of this counter.
static ATTACHED: AtomicUsize = AtomicUsize::new(0);

/// Monotonically increasing small integer naming each thread that records.
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// Stack of recorders attached to this thread (innermost last).
    static CURRENT: RefCell<Vec<Recorder>> = const { RefCell::new(Vec::new()) };
    /// Small per-thread id used to label span records.
    static THREAD_ID: u32 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Returns `true` when at least one [`Recorder`] is attached somewhere in
/// the process. This is the cheap guard instrumentation sites check before
/// doing any work; when it returns `false` the cost of an instrumentation
/// macro is exactly this relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ATTACHED.load(Ordering::Relaxed) != 0
}

/// Runs `f` with the recorder attached to the *current thread*, if any.
/// Does nothing (and does not touch thread-local storage) when no recorder
/// is attached anywhere in the process.
#[inline]
pub fn with_recorder<F: FnOnce(&Recorder)>(f: F) {
    if !enabled() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow().last() {
            f(rec);
        }
    });
}

/// Returns a clone of the recorder attached to the current thread, if any.
/// Used to propagate the recorder into spawned worker threads (each worker
/// calls [`attach`] on its own copy).
pub fn current() -> Option<Recorder> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Attaches `rec` to the current thread until the returned guard drops.
/// Attachments nest; the innermost recorder wins. Dropping the guard flushes
/// any spans still buffered on this thread into the recorder.
#[must_use = "recording stops when the guard drops"]
pub fn attach(rec: &Recorder) -> AttachGuard {
    CURRENT.with(|c| c.borrow_mut().push(rec.clone()));
    ATTACHED.fetch_add(1, Ordering::Relaxed);
    AttachGuard { _priv: () }
}

/// RAII guard returned by [`attach`]; detaches the recorder on drop.
pub struct AttachGuard {
    _priv: (),
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        span::flush_thread_buffer();
        ATTACHED.fetch_sub(1, Ordering::Relaxed);
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Small per-thread integer used to label span records in the trace.
pub(crate) fn thread_id() -> u32 {
    THREAD_ID.with(|t| *t)
}

struct Shared {
    epoch: Instant,
    metrics: Registry,
    spans: Mutex<Vec<SpanRecord>>,
    meta: Mutex<BTreeMap<String, String>>,
    next_span_id: AtomicU64,
}

/// Collects spans and metrics for one run. Cheap to clone (`Arc` inside);
/// clones share all state, so a recorder can be handed to worker threads
/// and inspected from the driver.
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("spans", &self.shared.spans.lock().unwrap().len())
            .field("metrics", &self.shared.metrics.snapshot().len())
            .finish()
    }
}

impl Recorder {
    /// Creates an empty recorder; its epoch (span timestamp zero) is now.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                epoch: Instant::now(),
                metrics: Registry::new(),
                spans: Mutex::new(Vec::new()),
                meta: Mutex::new(BTreeMap::new()),
                next_span_id: AtomicU64::new(0),
            }),
        }
    }

    /// The metrics registry backing `counter!`/`gauge!`/`observe!`.
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// Nanoseconds since this recorder was created.
    pub(crate) fn elapsed_ns(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    /// Attaches a key/value pair to the trace header (command line, seed…).
    pub fn set_meta(&self, key: &str, value: &str) {
        self.shared
            .meta
            .lock()
            .expect("obs meta lock")
            .insert(key.to_string(), value.to_string());
    }

    /// Snapshot of the header metadata.
    pub fn meta(&self) -> BTreeMap<String, String> {
        self.shared.meta.lock().expect("obs meta lock").clone()
    }

    /// Merges a thread's span buffer, assigning process-unique span ids.
    /// `records` use buffer-local ids/parents starting at 0.
    pub(crate) fn merge_spans(&self, mut records: Vec<SpanRecord>) {
        if records.is_empty() {
            return;
        }
        let base = self
            .shared
            .next_span_id
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        for r in &mut records {
            r.id += base;
            if let Some(p) = r.parent.as_mut() {
                *p += base;
            }
        }
        self.shared
            .spans
            .lock()
            .expect("obs span lock")
            .extend(records);
    }

    /// Snapshot of all merged span records, ordered by start time.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut v = self.shared.spans.lock().expect("obs span lock").clone();
        v.sort_by_key(|s| (s.start_ns, s.id));
        v
    }

    /// True when nothing was recorded (no spans, no metrics).
    pub fn is_empty(&self) -> bool {
        self.spans().is_empty()
            && self.metrics().snapshot().is_empty()
            && self.metrics().snapshot_labeled().is_empty()
    }

    /// Renders the human-readable end-of-run summary table.
    pub fn summary(&self) -> String {
        sink::summary(self)
    }

    /// Streams the versioned JSONL trace (header, span and metric events,
    /// end marker) to `w`. See `DESIGN.md` §11 for the schema.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        sink::write_jsonl(self, w)
    }

    /// Writes the JSONL trace to `path` (creating or truncating the file).
    ///
    /// # Errors
    /// Propagates file-creation and write errors.
    pub fn write_jsonl_to_path<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        let mut buf = std::io::BufWriter::new(f);
        self.write_jsonl(&mut buf)?;
        use std::io::Write as _;
        buf.flush()
    }
}

/// Opens a timed hierarchical span; returns an RAII guard that closes the
/// span when dropped. Field expressions are evaluated only when a recorder
/// is attached.
///
/// ```
/// # use rl_ccd_obs as obs;
/// let _span = obs::span!("flow.useful_skew", sweep = 3_u64, moves = 17_u64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter(
                $name,
                vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Adds `n` to the named counter on the attached recorder (no-op when
/// disabled). The amount expression is evaluated only when enabled.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {
        $crate::with_recorder(|r| r.metrics().counter($name).add($n as u64))
    };
}

/// Sets the named gauge to `v` on the attached recorder (no-op when
/// disabled).
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        $crate::with_recorder(|r| r.metrics().gauge($name).set($v as f64))
    };
}

/// Records one observation into the named histogram on the attached
/// recorder (no-op when disabled).
#[macro_export]
macro_rules! observe {
    ($name:expr, $v:expr) => {
        $crate::with_recorder(|r| r.metrics().histogram($name).observe($v as f64))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_macros_record_nothing() {
        let rec = Recorder::new();
        // Recorder exists but is *not* attached: nothing must be recorded.
        {
            let _s = span!("ghost", n = 1_u64);
            counter!("ghost.count", 5);
            gauge!("ghost.gauge", 1.5);
            observe!("ghost.hist", 2.0);
        }
        assert!(rec.is_empty(), "unattached recorder must stay empty");
    }

    #[test]
    fn attach_guard_nests_and_restores() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let g1 = attach(&outer);
        {
            let _g2 = attach(&inner);
            counter!("x", 1);
        }
        counter!("x", 2);
        drop(g1);
        counter!("x", 4); // detached: dropped on the floor
        let get = |r: &Recorder| {
            r.metrics()
                .snapshot()
                .iter()
                .find(|m| m.0 == "x")
                .map(|m| m.2.clone())
        };
        assert_eq!(get(&inner), Some(MetricValue::Counter(1)));
        assert_eq!(get(&outer), Some(MetricValue::Counter(2)));
    }

    #[test]
    fn spans_nest_and_merge_per_thread() {
        let rec = Recorder::new();
        {
            let _g = attach(&rec);
            {
                let _root = span!("root", size = 2_u64);
                {
                    let _a = span!("child_a");
                }
                let _b = span!("child_b", ok = true);
            }
            {
                let _root2 = span!("root");
            }
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 4);
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let a = spans.iter().find(|s| s.name == "child_a").unwrap();
        let b = spans.iter().find(|s| s.name == "child_b").unwrap();
        assert_eq!(a.parent, Some(root.id));
        assert_eq!(b.parent, Some(root.id));
        assert!(root.dur_ns >= a.dur_ns + b.dur_ns - 1);
        let root2 = spans
            .iter()
            .find(|s| s.name == "root" && s.parent.is_none() && s.id != root.id)
            .unwrap();
        assert_eq!(root2.parent, None);
    }

    #[test]
    fn recorder_propagates_to_worker_threads() {
        let rec = Recorder::new();
        let _g = attach(&rec);
        let handoff = current().expect("recorder attached");
        std::thread::scope(|scope| {
            for w in 0..3_u64 {
                let worker_rec = handoff.clone();
                scope.spawn(move || {
                    let _g = attach(&worker_rec);
                    let _s = span!("worker", index = w);
                    counter!("worker.done", 1);
                });
            }
        });
        assert_eq!(rec.spans().iter().filter(|s| s.name == "worker").count(), 3);
        let snap = rec.metrics().snapshot();
        let done = snap.iter().find(|m| m.0 == "worker.done").unwrap();
        assert_eq!(done.2, MetricValue::Counter(3));
    }

    #[test]
    fn jsonl_roundtrip_validates() {
        let rec = Recorder::new();
        rec.set_meta("command", "unit \"test\"");
        {
            let _g = attach(&rec);
            let _s = span!("run", label = "a\\b");
            counter!("c", 2);
            gauge!("g", -1.25);
            observe!("h", 3.0);
            observe!("h", 5.0);
        }
        let mut out = Vec::new();
        rec.write_jsonl(&mut out).unwrap();
        let sum = validate_jsonl(&out[..]).expect("schema-valid trace");
        assert_eq!(sum.version, TRACE_SCHEMA_VERSION);
        assert_eq!(sum.spans, 1);
        assert_eq!(sum.metrics, 3);
        assert!(sum.span_names.contains(&"run".to_string()));
        assert!(sum.metric_names.contains(&"h".to_string()));
    }
}
