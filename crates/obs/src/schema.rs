//! Versioned JSONL trace schema and its validator.
//!
//! The schema contract (see DESIGN.md §11): every line is one JSON object
//! with a `type` tag; the first line is a `header` carrying the schema name
//! and version; the last line is an `end` marker with event counts.
//! Consumers must ignore unknown keys (additions bump nothing); removing or
//! renaming keys, or changing a type, bumps [`TRACE_SCHEMA_VERSION`].
//!
//! [`validate_jsonl`] is the single source of truth used by the unit tests,
//! the `rlccd trace` subcommand and the CI smoke job.

use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;

/// Schema family name carried in the trace header.
pub const TRACE_SCHEMA_NAME: &str = "rl-ccd-trace";

/// Current schema version. Bump on any backwards-incompatible change
/// (removed/renamed key, changed type, changed line ordering contract).
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// A parsed JSON value (minimal in-tree parser; the workspace is
/// dependency-free by design).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (keys sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a single JSON document from `s`.
    ///
    /// # Errors
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Why a trace failed validation.
#[derive(Debug)]
pub struct SchemaError {
    /// 1-based line number the error was detected on (0 = whole file).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SchemaError {}

/// What a valid trace contained, for smoke checks and tests.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Schema version from the header.
    pub version: u64,
    /// Header metadata.
    pub meta: BTreeMap<String, String>,
    /// Number of span events.
    pub spans: usize,
    /// Number of metric events.
    pub metrics: usize,
    /// Distinct span names, sorted.
    pub span_names: Vec<String>,
    /// Metric names in file (= registry) order.
    pub metric_names: Vec<String>,
}

fn err(line: usize, message: impl Into<String>) -> SchemaError {
    SchemaError {
        line,
        message: message.into(),
    }
}

/// Validates a JSONL trace produced by [`Recorder::write_jsonl`]
/// (header/version check, per-event required keys and types, span parent
/// references, end-marker counts). Returns a [`TraceSummary`] on success.
///
/// [`Recorder::write_jsonl`]: crate::Recorder::write_jsonl
///
/// # Errors
/// Returns the first [`SchemaError`] encountered.
pub fn validate_jsonl<R: BufRead>(reader: R) -> Result<TraceSummary, SchemaError> {
    let mut summary = TraceSummary::default();
    let mut span_ids = std::collections::BTreeSet::new();
    let mut pending_parents: Vec<(usize, u64)> = Vec::new();
    let mut saw_header = false;
    let mut saw_end = false;

    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| err(lineno, format!("read error: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        if saw_end {
            return Err(err(lineno, "data after end marker"));
        }
        let v = Json::parse(&line).map_err(|e| err(lineno, format!("invalid JSON: {e}")))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| err(lineno, "missing \"type\""))?;
        match ty {
            "header" => {
                if saw_header {
                    return Err(err(lineno, "duplicate header"));
                }
                if lineno != 1 {
                    return Err(err(lineno, "header must be the first line"));
                }
                saw_header = true;
                let schema = v.get("schema").and_then(Json::as_str).unwrap_or_default();
                if schema != TRACE_SCHEMA_NAME {
                    return Err(err(lineno, format!("unknown schema {schema:?}")));
                }
                let version = v
                    .get("version")
                    .and_then(Json::as_num)
                    .ok_or_else(|| err(lineno, "missing numeric \"version\""))?
                    as u64;
                if version == 0 || version > TRACE_SCHEMA_VERSION {
                    return Err(err(lineno, format!("unsupported version {version}")));
                }
                summary.version = version;
                if let Some(Json::Obj(meta)) = v.get("meta") {
                    for (k, mv) in meta {
                        if let Json::Str(s) = mv {
                            summary.meta.insert(k.clone(), s.clone());
                        }
                    }
                }
            }
            "span" => {
                if !saw_header {
                    return Err(err(lineno, "span before header"));
                }
                let id = v
                    .get("id")
                    .and_then(Json::as_num)
                    .ok_or_else(|| err(lineno, "span missing numeric \"id\""))?
                    as u64;
                if !span_ids.insert(id) {
                    return Err(err(lineno, format!("duplicate span id {id}")));
                }
                match v.get("parent") {
                    Some(Json::Null) => {}
                    Some(Json::Num(p)) => pending_parents.push((lineno, *p as u64)),
                    _ => return Err(err(lineno, "span \"parent\" must be null or a number")),
                }
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err(lineno, "span missing \"name\""))?;
                for key in ["thread", "start_us", "dur_us"] {
                    if v.get(key).and_then(Json::as_num).is_none() {
                        return Err(err(lineno, format!("span missing numeric {key:?}")));
                    }
                }
                if !matches!(v.get("fields"), Some(Json::Obj(_))) {
                    return Err(err(lineno, "span missing \"fields\" object"));
                }
                summary.spans += 1;
                let name = name.to_string();
                if let Err(pos) = summary.span_names.binary_search(&name) {
                    summary.span_names.insert(pos, name);
                }
            }
            "metric" => {
                if !saw_header {
                    return Err(err(lineno, "metric before header"));
                }
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err(lineno, "metric missing \"name\""))?;
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err(lineno, "metric missing \"kind\""))?;
                // Non-finite numbers are encoded as strings ("inf", "NaN").
                let has_value =
                    |key: &str| matches!(v.get(key), Some(Json::Num(_)) | Some(Json::Str(_)));
                match kind {
                    "counter" | "gauge" => {
                        if !has_value("value") {
                            return Err(err(lineno, format!("{kind} missing \"value\"")));
                        }
                    }
                    "histogram" => {
                        for key in ["count", "sum", "min", "max"] {
                            if !has_value(key) {
                                return Err(err(lineno, format!("histogram missing {key:?}")));
                            }
                        }
                    }
                    other => return Err(err(lineno, format!("unknown metric kind {other:?}"))),
                }
                summary.metrics += 1;
                summary.metric_names.push(name.to_string());
            }
            "end" => {
                if !saw_header {
                    return Err(err(lineno, "end before header"));
                }
                saw_end = true;
                let spans = v.get("spans").and_then(Json::as_num).unwrap_or(-1.0) as i64;
                let metrics = v.get("metrics").and_then(Json::as_num).unwrap_or(-1.0) as i64;
                if spans != summary.spans as i64 || metrics != summary.metrics as i64 {
                    return Err(err(
                        lineno,
                        format!(
                            "end counts ({spans} spans, {metrics} metrics) disagree with file \
                             ({} spans, {} metrics)",
                            summary.spans, summary.metrics
                        ),
                    ));
                }
            }
            other => return Err(err(lineno, format!("unknown event type {other:?}"))),
        }
    }

    if !saw_header {
        return Err(err(0, "empty trace: missing header"));
    }
    if !saw_end {
        return Err(err(0, "truncated trace: missing end marker"));
    }
    for (lineno, parent) in pending_parents {
        if !span_ids.contains(&parent) {
            return Err(err(lineno, format!("span parent {parent} does not exist")));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v = Json::parse(r#"{"a":[1,-2.5,true,null],"b":{"c":"x\n\"y\""}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Bool(true),
                Json::Null
            ]))
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\n\"y\"")
        );
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    fn valid_trace() -> String {
        [
            r#"{"type":"header","schema":"rl-ccd-trace","version":1,"meta":{"seed":"7"}}"#,
            r#"{"type":"span","id":0,"parent":null,"name":"run","thread":0,"start_us":0,"dur_us":9,"fields":{}}"#,
            r#"{"type":"span","id":1,"parent":0,"name":"step","thread":0,"start_us":1,"dur_us":2,"fields":{"i":1}}"#,
            r#"{"type":"metric","name":"c","kind":"counter","value":3}"#,
            r#"{"type":"metric","name":"h","kind":"histogram","count":2,"sum":8,"min":3,"max":5}"#,
            r#"{"type":"end","spans":2,"metrics":2}"#,
        ]
        .join("\n")
    }

    #[test]
    fn validator_accepts_a_well_formed_trace() {
        let sum = validate_jsonl(valid_trace().as_bytes()).unwrap();
        assert_eq!(sum.version, 1);
        assert_eq!(sum.meta.get("seed").map(String::as_str), Some("7"));
        assert_eq!((sum.spans, sum.metrics), (2, 2));
        assert_eq!(sum.span_names, vec!["run", "step"]);
        assert_eq!(sum.metric_names, vec!["c", "h"]);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        let cases: Vec<(String, &str)> = vec![
            (String::new(), "missing header"),
            (
                valid_trace().replace("rl-ccd-trace", "other"),
                "unknown schema",
            ),
            (
                valid_trace().replace("\"version\":1", "\"version\":99"),
                "unsupported version",
            ),
            (
                valid_trace().replace("\"parent\":0", "\"parent\":42"),
                "does not exist",
            ),
            (
                valid_trace().replace("\"spans\":2", "\"spans\":5"),
                "disagree",
            ),
            (
                valid_trace().replace("\"kind\":\"counter\"", "\"kind\":\"meter\""),
                "unknown metric kind",
            ),
            (
                valid_trace().lines().take(5).collect::<Vec<_>>().join("\n"),
                "missing end",
            ),
            (valid_trace() + "\n{\"type\":\"span\"}", "after end"),
        ];
        for (trace, needle) in cases {
            let e = validate_jsonl(trace.as_bytes()).expect_err(needle);
            assert!(e.to_string().contains(needle), "expected {needle:?} in {e}");
        }
    }
}
