//! Property tests for the `rl-ccd-exp v1` record codec: randomized
//! records survive an encode → parse round trip exactly, re-encoding is
//! a fixed point, and malformed lines (truncated, oversized, tampered)
//! are rejected instead of misparsing.
//!
//! Cases are generated from a seeded RNG rather than nested strategies:
//! one `u64` pins the whole case, which keeps failures reproducible under
//! the vendored proptest (no shrinking).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl_ccd_exp::{ExpRecord, MAX_LINE_BYTES};

fn wild_f32(rng: &mut StdRng) -> f32 {
    let mantissa = rng.gen_range(-1.0f32..1.0);
    let exp = rng.gen_range(0u32..12) as i32 - 6;
    mantissa * 10f32.powi(exp)
}

fn wild_f64(rng: &mut StdRng) -> f64 {
    let mantissa = rng.gen_range(-1.0f64..1.0);
    let exp = rng.gen_range(0u32..16) as i32 - 8;
    mantissa * 10f64.powi(exp)
}

fn random_record(rng: &mut StdRng) -> ExpRecord {
    let techs = ["7nm", "16nm", "28nm"];
    let design = format!(
        "d{}:{}:{}:{}",
        rng.gen_range(0u32..1000),
        rng.gen_range(1u32..4096),
        techs[rng.gen_range(0usize..techs.len())],
        rng.gen_range(0u64..1000),
    );
    let steps = rng.gen_range(1usize..32);
    let selection: Vec<u32> = (0..steps).map(|_| rng.gen_range(0u32..100_000)).collect();
    let log_probs: Vec<f32> = (0..steps).map(|_| -wild_f32(rng).abs()).collect();
    ExpRecord {
        design,
        feat_fp: rng.gen_range(0u64..u64::MAX),
        model: format!("m{}", rng.gen_range(0u32..100)),
        policy_version: rng.gen_range(0usize..1_000_000),
        policy_fp: rng.gen_range(0u64..u64::MAX),
        rho: rng.gen_range(0.01f32..1.0),
        fanout_cap: rng.gen_range(1usize..256),
        seed: rng.gen_range(0u64..u64::MAX),
        selection,
        log_probs,
        reward_tns_ps: wild_f64(rng),
        base_tns_ps: wild_f64(rng),
        wns_delta_ps: wild_f64(rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_parse_round_trips_exactly(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let record = random_record(&mut rng);
        let line = record.to_jsonl();
        let parsed = ExpRecord::parse(&line).expect("own encoding must parse");
        prop_assert_eq!(&parsed, &record);
        prop_assert_eq!(parsed.content_id(), record.content_id());
        // Re-encoding is byte-stable (canonical form is a fixed point).
        prop_assert_eq!(parsed.to_jsonl(), line);
    }

    #[test]
    fn truncations_never_parse_as_the_same_record(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let record = random_record(&mut rng);
        let line = record.to_jsonl();
        let cut = rng.gen_range(1usize..line.len());
        let truncated: String = line.chars().take(line.chars().count() - cut).collect();
        if let Ok(parsed) = ExpRecord::parse(&truncated) {
            prop_assert_ne!(parsed, record);
        }
    }

    #[test]
    fn oversized_lines_are_rejected(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut line = random_record(&mut rng).to_jsonl();
        line.push_str(&" ".repeat(MAX_LINE_BYTES));
        prop_assert!(ExpRecord::parse(&line).is_err());
    }

    #[test]
    fn digit_tampering_is_caught_or_semantically_inert(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let record = random_record(&mut rng);
        let line = record.to_jsonl();
        let mut tampered = line.clone().into_bytes();
        let digit_positions: Vec<usize> = tampered
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_ascii_digit())
            .map(|(i, _)| i)
            .collect();
        let idx = digit_positions[rng.gen_range(0..digit_positions.len())];
        tampered[idx] = if tampered[idx] == b'9' { b'8' } else { tampered[idx] + 1 };
        let tampered = String::from_utf8(tampered).expect("still utf-8");
        // A flipped digit either breaks validation (usually the content-id
        // check) or — if it landed somewhere inert like a float's trailing
        // precision that still parses to the same value — re-canonicalizes
        // to the *original* bytes, proving nothing was silently altered.
        match ExpRecord::parse(&tampered) {
            Err(_) => {}
            Ok(parsed) => prop_assert_eq!(parsed.to_jsonl(), line),
        }
    }
}
