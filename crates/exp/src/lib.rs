//! Closed-loop learning for RL-CCD: experience logging, replay, and
//! offline retraining wired into gated promotion.
//!
//! Serving generates exactly the data self-supervised RL needs — sampled
//! selections, their behavior log-probs, and (cheaply recomputable)
//! realized QoR — and this crate turns that exhaust into policy
//! improvement without ever putting an unvetted model in front of a
//! tenant. The loop has four stages, one module each:
//!
//! 1. **Log** ([`sink`]): an [`ExpSink`] installed on the server's
//!    experience hook appends one content-addressed `rl-ccd-exp v1`
//!    record ([`record`]) per completed sampled query, off the request
//!    path.
//! 2. **Buffer** ([`buffer`]): a [`ReplayBuffer`] dedups by content id,
//!    bounds policy-version staleness, and hands out a seed-deterministic
//!    training order.
//! 3. **Retrain** ([`mod@retrain`]): importance-weighted offline REINFORCE
//!    replays logged trajectories under the current parameters and
//!    commits a versioned checkpoint. Same log + same seed →
//!    bit-identical `state.txt`.
//! 4. **Promote**: the emitted checkpoint enters the daemon as a
//!    *challenger* and reaches tenants only through the existing eval
//!    gate / canary / rollback machinery — a bad retrain is a rejected
//!    challenger, never an outage.
//!
//! Environment reconstruction ([`rebuild`]) is the determinism hinge both
//! the sink and the trainer share: a design key rebuilds the identical
//! [`rl_ccd::CcdEnv`] the server answered from, cross-checked by the
//! feature fingerprint carried in every record.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod rebuild;
pub mod record;
pub mod retrain;
pub mod sink;

pub use buffer::{BufferStats, ReplayBuffer};
pub use rebuild::{build_env, feature_fingerprint};
pub use record::{
    validate_exp_jsonl, ExpRecord, ExpSummary, EXP_SCHEMA, MAX_LINE_BYTES, MAX_SELECTION,
};
pub use retrain::{retrain, RetrainConfig, RetrainReport};
pub use sink::{ExpSink, SinkReport};

/// Everything that can go wrong while logging, loading, or retraining.
#[derive(Debug)]
pub enum ExpError {
    /// The log file (or checkpoint directory) could not be read/written.
    Io(std::io::Error),
    /// A log line failed schema validation (1-based line number).
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What the codec rejected.
        message: String,
    },
    /// The base checkpoint failed manifest or state verification.
    Checkpoint(rl_ccd::CheckpointError),
    /// The checkpoint does not describe a complete, servable model.
    Serve(rl_ccd_serve::ServeError),
    /// The retrain could not proceed (e.g. no usable records).
    Retrain(String),
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(err) => write!(f, "i/o error: {err}"),
            Self::Parse { line, message } => write!(f, "line {line}: {message}"),
            Self::Checkpoint(err) => write!(f, "checkpoint error: {err}"),
            Self::Serve(err) => write!(f, "serve error: {err}"),
            Self::Retrain(message) => write!(f, "retrain refused: {message}"),
        }
    }
}

impl std::error::Error for ExpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            Self::Checkpoint(err) => Some(err),
            Self::Serve(err) => Some(err),
            Self::Parse { .. } | Self::Retrain(_) => None,
        }
    }
}

impl From<std::io::Error> for ExpError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

impl From<rl_ccd::CheckpointError> for ExpError {
    fn from(err: rl_ccd::CheckpointError) -> Self {
        Self::Checkpoint(err)
    }
}

impl From<rl_ccd_serve::ServeError> for ExpError {
    fn from(err: rl_ccd_serve::ServeError) -> Self {
        Self::Serve(err)
    }
}
