//! Deterministic environment reconstruction shared by the sink (reward
//! realization) and the trainer (trajectory replay).
//!
//! A [`DesignKey`] fully pins a design — generator name, cell count,
//! technology node, generator seed — so both sides of the loop rebuild
//! the *identical* [`CcdEnv`] the server answered from (the same recipe
//! as serve's `EnvCache`). [`feature_fingerprint`] is the cross-check:
//! the FNV-1a 64 digest of the unflagged feature matrix travels in every
//! record, and a retrain refuses to learn from a record whose rebuilt
//! features hash differently (a generator or STA change since logging).

use rl_ccd::fnv1a64;
use rl_ccd::CcdEnv;
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, Library};
use rl_ccd_serve::DesignKey;

/// Rebuilds the environment for `key` exactly as serving does.
///
/// # Errors
/// A human-readable message when the key names an unknown technology
/// node (the only failure mode of deterministic generation).
pub fn build_env(key: &DesignKey, fanout_cap: usize) -> Result<CcdEnv, String> {
    let tech = Library::parse_tech(&key.tech)
        .ok_or_else(|| format!("unknown technology node {:?}", key.tech))?;
    let design = generate(&DesignSpec::new(
        key.name.clone(),
        key.cells,
        tech,
        key.seed,
    ));
    Ok(CcdEnv::new(design, FlowRecipe::default(), fanout_cap))
}

/// FNV-1a 64 digest of the environment's unflagged feature matrix (the
/// per-record design snapshot).
pub fn feature_fingerprint(env: &CcdEnv) -> u64 {
    let features = env.features().with_flags(&[]);
    let mut bytes = Vec::with_capacity(features.data().len() * 4);
    for v in features.data() {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_is_deterministic_and_fingerprint_pins_the_design() {
        let key: DesignKey = "fp:360:7nm:5".parse().expect("key");
        let a = build_env(&key, 24).expect("build");
        let b = build_env(&key, 24).expect("build");
        assert_eq!(feature_fingerprint(&a), feature_fingerprint(&b));
        assert_eq!(a.pool(), b.pool());
        let other: DesignKey = "fp:360:7nm:6".parse().expect("key");
        let c = build_env(&other, 24).expect("build");
        assert_ne!(feature_fingerprint(&a), feature_fingerprint(&c));
    }

    #[test]
    fn unknown_tech_is_an_error() {
        let key: DesignKey = "fp:360:3nm:5".parse().expect("key");
        assert!(build_env(&key, 24).is_err());
    }
}
