//! The replay buffer: deduplicated, staleness-bounded experience with a
//! deterministic iteration order.
//!
//! Determinism is the spine of the closed loop: a retrain must be a pure
//! function of (base checkpoint, experience log, seed). The buffer keeps
//! records in a `BTreeMap` keyed by content id — so membership and
//! ordering never depend on insertion order or hash randomization — and
//! [`ReplayBuffer::iter_shuffled`] derives the training order from a
//! caller seed via Fisher–Yates over the id-sorted records.
//!
//! Staleness is measured in *policy-version distance*: a record served by
//! policy version `v` is dropped once `current_version − v` exceeds the
//! configured bound (the behavior policy is too far from the training
//! policy for a clamped importance weight to say anything useful).
//! Records claiming a version *newer* than the current policy are
//! "unknown": they cannot have been produced by any ancestor of this
//! checkpoint, so they are skipped with a counter — never a panic.

use crate::record::ExpRecord;
use crate::ExpError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io::BufRead;

/// Why records did or did not make it into the buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Records admitted.
    pub accepted: usize,
    /// Records dropped because their content id was already present.
    pub duplicates: usize,
    /// Records dropped because their policy version is newer than the
    /// current policy (no ancestor could have produced them).
    pub unknown_version: usize,
    /// Records dropped (at admission or by
    /// [`ReplayBuffer::advance_version`]) because their policy-version
    /// distance exceeded the staleness bound.
    pub evicted_stale: usize,
}

/// A deduplicated, staleness-bounded set of experience records.
#[derive(Debug)]
pub struct ReplayBuffer {
    current_version: usize,
    max_staleness: usize,
    records: BTreeMap<u64, ExpRecord>,
    stats: BufferStats,
}

impl ReplayBuffer {
    /// An empty buffer filtering against `current_version`: records newer
    /// than it are unknown, records more than `max_staleness` versions
    /// older are stale.
    pub fn new(current_version: usize, max_staleness: usize) -> Self {
        Self {
            current_version,
            max_staleness,
            records: BTreeMap::new(),
            stats: BufferStats::default(),
        }
    }

    /// Offers one record; returns whether it was admitted. Duplicates,
    /// unknown versions, and stale records are counted, never errors.
    pub fn push(&mut self, record: ExpRecord) -> bool {
        if record.policy_version > self.current_version {
            self.stats.unknown_version += 1;
            rl_ccd_obs::counter!("exp.buffer.unknown_version", 1);
            return false;
        }
        if self.current_version - record.policy_version > self.max_staleness {
            self.stats.evicted_stale += 1;
            rl_ccd_obs::counter!("exp.buffer.stale", 1);
            return false;
        }
        match self.records.entry(record.content_id()) {
            std::collections::btree_map::Entry::Occupied(_) => {
                self.stats.duplicates += 1;
                rl_ccd_obs::counter!("exp.buffer.duplicate", 1);
                false
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(record);
                self.stats.accepted += 1;
                true
            }
        }
    }

    /// Parses an `rl-ccd-exp v1` JSONL stream and offers every record,
    /// returning how many were admitted.
    ///
    /// # Errors
    /// [`ExpError::Parse`] on the first malformed line (a corrupt log is
    /// a hard error — silent partial loads would make retrains
    /// irreproducible), [`ExpError::Io`] on read failure.
    pub fn load_jsonl<R: BufRead>(&mut self, reader: R) -> Result<usize, ExpError> {
        let mut admitted = 0;
        for (idx, line) in reader.lines().enumerate() {
            let line = line.map_err(ExpError::Io)?;
            if line.is_empty() {
                continue;
            }
            let record = ExpRecord::parse(&line).map_err(|message| ExpError::Parse {
                line: idx + 1,
                message,
            })?;
            if self.push(record) {
                admitted += 1;
            }
        }
        Ok(admitted)
    }

    /// Moves the staleness window forward: re-filters everything already
    /// admitted against the new current version, evicting what fell out.
    /// Returns the number evicted.
    pub fn advance_version(&mut self, current_version: usize) -> usize {
        self.current_version = current_version;
        let bound = self.max_staleness;
        let before = self.records.len();
        self.records
            .retain(|_, r| current_version.saturating_sub(r.policy_version) <= bound);
        let evicted = before - self.records.len();
        self.stats.evicted_stale += evicted;
        evicted
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Admission/eviction counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// The buffer's records in the deterministic training order for
    /// `seed`: id-sorted, then Fisher–Yates shuffled by a
    /// [`StdRng`] seeded with `seed`. Same buffer + same seed → the same
    /// order, byte for byte, in any process.
    pub fn iter_shuffled(&self, seed: u64) -> Vec<&ExpRecord> {
        let mut out: Vec<&ExpRecord> = self.records.values().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        out.shuffle(&mut rng);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tag: u64, version: usize) -> ExpRecord {
        ExpRecord {
            design: "gate_a:360:7nm:5".into(),
            feat_fp: 1,
            model: "champion".into(),
            policy_version: version,
            policy_fp: 2,
            rho: 0.3,
            fanout_cap: 24,
            seed: tag,
            selection: vec![1, 2],
            log_probs: vec![-0.5, -0.25],
            reward_tns_ps: -10.0,
            base_tns_ps: -20.0,
            wns_delta_ps: 0.5,
        }
    }

    #[test]
    fn empty_log_loads_to_an_empty_buffer() {
        let mut buf = ReplayBuffer::new(5, 3);
        assert_eq!(buf.load_jsonl(&b""[..]).expect("empty ok"), 0);
        assert!(buf.is_empty());
        assert_eq!(buf.stats(), BufferStats::default());
    }

    #[test]
    fn duplicates_are_counted_not_stored() {
        let mut buf = ReplayBuffer::new(5, 3);
        assert!(buf.push(record(1, 5)));
        assert!(!buf.push(record(1, 5)));
        assert!(!buf.push(record(1, 5)));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.stats().duplicates, 2);
        assert_eq!(buf.stats().accepted, 1);
    }

    #[test]
    fn all_duplicate_log_keeps_one_record() {
        let line = record(9, 5).to_jsonl();
        let file = format!("{line}\n{line}\n{line}\n");
        let mut buf = ReplayBuffer::new(5, 3);
        assert_eq!(buf.load_jsonl(file.as_bytes()).expect("valid"), 1);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.stats().duplicates, 2);
    }

    #[test]
    fn unknown_and_stale_versions_are_skipped_with_counters() {
        let mut buf = ReplayBuffer::new(5, 2);
        assert!(!buf.push(record(1, 6)), "future version admitted");
        assert!(!buf.push(record(2, 1)), "stale version admitted");
        assert!(buf.push(record(3, 3)), "in-window version rejected");
        assert!(buf.push(record(4, 5)));
        assert_eq!(buf.stats().unknown_version, 1);
        assert_eq!(buf.stats().evicted_stale, 1);
        assert_eq!(buf.len(), 2);
        // Advancing the window evicts what fell out of it.
        assert_eq!(buf.advance_version(7), 1);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.stats().evicted_stale, 2);
    }

    #[test]
    fn shuffled_order_is_seed_deterministic_and_insertion_independent() {
        let mut a = ReplayBuffer::new(5, 5);
        let mut b = ReplayBuffer::new(5, 5);
        for tag in 0..8 {
            a.push(record(tag, 5));
        }
        for tag in (0..8).rev() {
            b.push(record(tag, 5));
        }
        let seeds_a: Vec<u64> = a.iter_shuffled(0xCCD).iter().map(|r| r.seed).collect();
        let seeds_b: Vec<u64> = b.iter_shuffled(0xCCD).iter().map(|r| r.seed).collect();
        assert_eq!(seeds_a, seeds_b, "insertion order leaked into iteration");
        let again: Vec<u64> = a.iter_shuffled(0xCCD).iter().map(|r| r.seed).collect();
        assert_eq!(seeds_a, again, "same seed gave a different order");
        let other: Vec<u64> = a.iter_shuffled(0xCCE).iter().map(|r| r.seed).collect();
        assert_ne!(seeds_a, other, "different seeds gave the same order");
    }

    #[test]
    fn corrupt_log_is_a_hard_error_with_line_number() {
        let file = format!("{}\ngarbage\n", record(1, 5).to_jsonl());
        let err = ReplayBuffer::new(5, 3)
            .load_jsonl(file.as_bytes())
            .unwrap_err();
        let ExpError::Parse { line, .. } = err else {
            panic!("expected parse error, got {err:?}")
        };
        assert_eq!(line, 2);
    }
}
