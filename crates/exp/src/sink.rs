//! The experience sink: the serve-side half of the closed loop.
//!
//! [`ExpSink`] implements [`ExperienceHook`], so installing it on a
//! [`rl_ccd_serve::ServeConfig`] makes every completed sampled query emit
//! one [`ExpRecord`] line. The hot path pays exactly one bounded enqueue
//! (`try_send`; a full channel drops the event and bumps a counter —
//! experience is best-effort, replies are not). Everything expensive
//! happens on the sink's own thread, mirroring the obs sink machinery:
//! rebuild the environment from the design key, run the flow to realize
//! the selection's TNS/WNS delta, content-address the record, dedup
//! against everything already in the file, and append JSONL.
//!
//! Re-opening an existing log preloads its content ids, so a restarted
//! daemon never duplicates records it already has.

use crate::rebuild::{build_env, feature_fingerprint};
use crate::record::ExpRecord;
use rl_ccd::CcdEnv;
use rl_ccd_serve::{ExperienceEvent, ExperienceHook};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// How many rebuilt environments the sink thread keeps warm before
/// clearing its cache (environments are large; traffic is usually a few
/// hot designs).
const ENV_CACHE_CAP: usize = 8;

/// Final accounting of a drained sink.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SinkReport {
    /// Records appended to the log.
    pub written: u64,
    /// Events whose record was already in the log (content-id dedup).
    pub deduped: u64,
    /// Events dropped on the request path because the channel was full
    /// (or the sink already finished).
    pub dropped: u64,
    /// Events skipped because the selection was empty (nothing to learn
    /// from a clean design).
    pub skipped_empty: u64,
    /// Events skipped because the environment could not be rebuilt, the
    /// realized metrics were non-finite, or the write failed.
    pub failed: u64,
}

/// A background experience logger; install via
/// [`rl_ccd_serve::ServeConfig::experience`].
#[derive(Debug)]
pub struct ExpSink {
    tx: Mutex<Option<SyncSender<ExperienceEvent>>>,
    dropped: AtomicU64,
    worker: Mutex<Option<JoinHandle<SinkReport>>>,
    path: PathBuf,
}

impl ExpSink {
    /// Opens (or creates) the log at `path` in append mode with the
    /// default channel capacity, preloading existing content ids for
    /// dedup. Unparsable existing lines are ignored here — `rlccd
    /// exp-validate` is the strict gate.
    ///
    /// # Errors
    /// Propagates file-open failures.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Arc<Self>> {
        Self::with_capacity(path, 256)
    }

    /// [`ExpSink::create`] with an explicit bounded-channel capacity.
    ///
    /// # Errors
    /// Propagates file-open failures.
    pub fn with_capacity(path: impl AsRef<Path>, capacity: usize) -> std::io::Result<Arc<Self>> {
        let path = path.as_ref().to_path_buf();
        let mut seen = BTreeSet::new();
        if let Ok(file) = std::fs::File::open(&path) {
            for line in std::io::BufReader::new(file).lines() {
                let Ok(line) = line else { break };
                if let Ok(record) = ExpRecord::parse(&line) {
                    seen.insert(record.content_id());
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        let recorder = rl_ccd_obs::current();
        let worker = std::thread::Builder::new()
            .name("exp-sink".into())
            .spawn(move || sink_loop(rx, file, seen, recorder))
            .expect("spawn exp sink");
        Ok(Arc::new(Self {
            tx: Mutex::new(Some(tx)),
            dropped: AtomicU64::new(0),
            worker: Mutex::new(Some(worker)),
            path,
        }))
    }

    /// The log file this sink appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Closes the channel, drains the backlog, joins the worker, and
    /// returns the final accounting. Idempotent: the first caller gets
    /// the report, later calls get `None`. Events arriving after finish
    /// are counted as dropped.
    pub fn finish(&self) -> Option<SinkReport> {
        self.tx.lock().expect("exp sink tx lock").take()?;
        let worker = self.worker.lock().expect("exp sink worker lock").take()?;
        let mut report = worker.join().expect("exp sink thread");
        report.dropped = self.dropped.load(Ordering::SeqCst);
        Some(report)
    }
}

impl ExperienceHook for ExpSink {
    fn on_sample(&self, event: ExperienceEvent) {
        let guard = self.tx.lock().expect("exp sink tx lock");
        let sent = match guard.as_ref() {
            Some(tx) => match tx.try_send(event) {
                Ok(()) => true,
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => false,
            },
            None => false,
        };
        drop(guard);
        if sent {
            rl_ccd_obs::counter!("exp.sink.enqueued", 1);
        } else {
            self.dropped.fetch_add(1, Ordering::SeqCst);
            rl_ccd_obs::counter!("exp.sink.dropped", 1);
        }
    }
}

/// Per-design state the sink thread keeps warm: the environment plus its
/// default-flow baseline (computed once, reused by every event on the
/// design).
struct CachedEnv {
    env: Arc<CcdEnv>,
    feat_fp: u64,
    base_tns_ps: f64,
    base_wns_ps: f32,
}

fn sink_loop(
    rx: Receiver<ExperienceEvent>,
    file: std::fs::File,
    mut seen: BTreeSet<u64>,
    recorder: Option<rl_ccd_obs::Recorder>,
) -> SinkReport {
    let _obs = recorder.as_ref().map(rl_ccd_obs::attach);
    let mut out = BufWriter::new(file);
    let mut envs: BTreeMap<String, CachedEnv> = BTreeMap::new();
    let mut report = SinkReport::default();
    while let Ok(event) = rx.recv() {
        if event.selection.is_empty() {
            report.skipped_empty += 1;
            continue;
        }
        let design = event.design.to_string();
        if !envs.contains_key(&design) {
            let built = match build_env(&event.design, event.fanout_cap) {
                Ok(env) => env,
                Err(_) => {
                    report.failed += 1;
                    rl_ccd_obs::counter!("exp.sink.failed", 1);
                    continue;
                }
            };
            let base = built.default_flow();
            if envs.len() >= ENV_CACHE_CAP {
                envs.clear();
            }
            envs.insert(
                design.clone(),
                CachedEnv {
                    feat_fp: feature_fingerprint(&built),
                    base_tns_ps: base.final_qor.tns_ps,
                    base_wns_ps: base.final_qor.wns_ps,
                    env: Arc::new(built),
                },
            );
        }
        let cached = envs.get(&design).expect("inserted above");
        let _span = rl_ccd_obs::span!("exp.sink.realize", steps = event.selection.len() as u64);
        let realized = cached.env.evaluate(&event.selection);
        let reward_tns_ps = realized.final_qor.tns_ps;
        let wns_delta_ps = (realized.final_qor.wns_ps - cached.base_wns_ps) as f64;
        if !reward_tns_ps.is_finite()
            || !wns_delta_ps.is_finite()
            || !event.log_probs.iter().all(|v| v.is_finite())
        {
            report.failed += 1;
            rl_ccd_obs::counter!("exp.sink.failed", 1);
            continue;
        }
        let record = ExpRecord {
            design,
            feat_fp: cached.feat_fp,
            model: event.model,
            policy_version: event.version,
            policy_fp: event.fingerprint,
            rho: event.rho,
            fanout_cap: event.fanout_cap,
            seed: event.seed,
            selection: event.selection.iter().map(|e| e.index() as u32).collect(),
            log_probs: event.log_probs,
            reward_tns_ps,
            base_tns_ps: cached.base_tns_ps,
            wns_delta_ps,
        };
        if !seen.insert(record.content_id()) {
            report.deduped += 1;
            rl_ccd_obs::counter!("exp.sink.deduped", 1);
            continue;
        }
        if writeln!(out, "{}", record.to_jsonl())
            .and_then(|()| out.flush())
            .is_err()
        {
            report.failed += 1;
            rl_ccd_obs::counter!("exp.sink.failed", 1);
            continue;
        }
        report.written += 1;
        rl_ccd_obs::counter!("exp.sink.written", 1);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::validate_exp_jsonl;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rl_ccd::{sample_endpoints, RlCcd, RlConfig};

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rl_ccd_exp_sink_{tag}.jsonl"))
    }

    fn event_for(key: &rl_ccd_serve::DesignKey, seed: u64) -> ExperienceEvent {
        let env = build_env(key, 24).expect("env");
        let (model, params) = RlCcd::init(RlConfig::fast());
        let mut rng = StdRng::seed_from_u64(seed);
        let selection = sample_endpoints(&model, &params, &env, &mut rng);
        let log_probs = vec![-0.5; selection.len()];
        ExperienceEvent {
            design: key.clone(),
            model: "champion".into(),
            version: 3,
            fingerprint: 0xfeed,
            rho: 0.3,
            fanout_cap: 24,
            seed,
            selection,
            log_probs,
        }
    }

    #[test]
    fn sink_writes_valid_deduped_records_and_survives_restart() {
        let path = tmp_path("roundtrip");
        std::fs::remove_file(&path).ok();
        let key: rl_ccd_serve::DesignKey = "sink:360:7nm:5".parse().expect("key");
        let sink = ExpSink::create(&path).expect("create");
        let event = event_for(&key, 7);
        sink.on_sample(event.clone());
        sink.on_sample(event.clone()); // identical → deduped
        sink.on_sample(event_for(&key, 8));
        // Empty selections carry no signal.
        let mut empty = event.clone();
        empty.selection.clear();
        empty.log_probs.clear();
        sink.on_sample(empty);
        let report = sink.finish().expect("first finish");
        assert_eq!(report.written, 2, "{report:?}");
        assert_eq!(report.deduped, 1);
        assert_eq!(report.skipped_empty, 1);
        assert_eq!(report.dropped, 0);
        assert!(sink.finish().is_none(), "finish is idempotent");
        let file = std::fs::File::open(&path).expect("log exists");
        let summary = validate_exp_jsonl(std::io::BufReader::new(file)).expect("valid log");
        assert_eq!(summary.records, 2);
        assert_eq!(summary.unique, 2);
        assert_eq!(summary.versions.get(&3), Some(&2));
        // Restart: the same event is deduped against the existing file.
        let sink = ExpSink::create(&path).expect("reopen");
        sink.on_sample(event);
        let report = sink.finish().expect("second finish");
        assert_eq!(report.written, 0);
        assert_eq!(report.deduped, 1);
        let file = std::fs::File::open(&path).expect("log exists");
        let summary = validate_exp_jsonl(std::io::BufReader::new(file)).expect("still valid");
        assert_eq!(summary.records, 2, "restart duplicated records");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn events_after_finish_are_counted_dropped() {
        let path = tmp_path("dropped");
        std::fs::remove_file(&path).ok();
        let key: rl_ccd_serve::DesignKey = "sink:360:7nm:6".parse().expect("key");
        let sink = ExpSink::create(&path).expect("create");
        let event = event_for(&key, 1);
        assert!(sink.finish().is_some());
        sink.on_sample(event);
        assert_eq!(sink.dropped.load(Ordering::SeqCst), 1);
        std::fs::remove_file(&path).ok();
    }
}
