//! The `rl-ccd-exp v1` experience record: one JSONL line per completed
//! sampled query, content-addressed with FNV-1a 64.
//!
//! Schema contract (DESIGN.md §18): every line is one JSON object whose
//! `v` field is the literal schema token. The `id` field is the 16-hex
//! FNV-1a 64 digest of the record's *canonical body* — the line as
//! written with every field except `id`, in fixed key order — so two
//! records with the same content have the same id no matter who wrote
//! them, and a flipped byte is caught at parse time. Unknown keys are
//! ignored (additions bump nothing); removing or renaming a key, or
//! changing a type, bumps the version token. All 64-bit identifiers
//! (`id`, `feat_fp`, `policy_fp`, `seed`) travel as 16-hex strings
//! because JSON numbers lose precision past 2⁵³.

use rl_ccd::fnv1a64;
use std::collections::BTreeMap;
use std::io::BufRead;

use crate::ExpError;

/// Version token carried in every record's `v` field.
pub const EXP_SCHEMA: &str = "rl-ccd-exp v1";

/// Longest accepted line, in bytes. A record is a selection plus its
/// log-probs — kilobytes — so anything near this bound is corrupt, and
/// rejecting it keeps a truncated/garbage file from ballooning memory.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Longest accepted selection (and log-prob vector).
pub const MAX_SELECTION: usize = 4096;

/// One logged interaction: the design, the policy that served it, the
/// sampled selection with its behavior log-probs, and the realized
/// quality-of-result delta.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpRecord {
    /// Design key in its canonical `name:cells:tech:seed` form (fully
    /// pins the environment).
    pub design: String,
    /// FNV-1a 64 fingerprint of the design's unflagged feature matrix —
    /// the snapshot check that a rebuilt environment matches the one the
    /// selection was served against.
    pub feat_fp: u64,
    /// Registry name of the serving model.
    pub model: String,
    /// Checkpoint version of the serving policy (its training iteration).
    pub policy_version: usize,
    /// FNV-1a 64 fingerprint of the serving policy's checkpoint bytes.
    pub policy_fp: u64,
    /// Cone-overlap threshold the policy served with.
    pub rho: f32,
    /// Fanout cap the environment was built with.
    pub fanout_cap: usize,
    /// Client-supplied sampling seed.
    pub seed: u64,
    /// Sampled endpoints as global endpoint indices, in selection order.
    pub selection: Vec<u32>,
    /// Behavior log-probability of each selected action.
    pub log_probs: Vec<f32>,
    /// Realized TNS (ps) after running the flow with this selection —
    /// the REINFORCE reward (≤ 0, higher is better).
    pub reward_tns_ps: f64,
    /// TNS (ps) of the default flow on the same design (the baseline the
    /// reward is an improvement over).
    pub base_tns_ps: f64,
    /// Realized WNS minus default-flow WNS, in ps.
    pub wns_delta_ps: f64,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ExpRecord {
    /// The canonical body: every field except `id`, fixed key order.
    /// Hashing these bytes is what makes records content-addressed.
    fn canonical_body(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("\"v\":\"");
        s.push_str(EXP_SCHEMA);
        s.push_str("\",\"design\":\"");
        s.push_str(&escape_json(&self.design));
        s.push_str(&format!("\",\"feat_fp\":\"{:016x}\"", self.feat_fp));
        s.push_str(",\"model\":\"");
        s.push_str(&escape_json(&self.model));
        s.push_str(&format!("\",\"policy_version\":{}", self.policy_version));
        s.push_str(&format!(",\"policy_fp\":\"{:016x}\"", self.policy_fp));
        s.push_str(&format!(",\"rho\":{}", self.rho));
        s.push_str(&format!(",\"fanout_cap\":{}", self.fanout_cap));
        s.push_str(&format!(",\"seed\":\"{:016x}\"", self.seed));
        s.push_str(",\"selection\":[");
        for (i, v) in self.selection.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&v.to_string());
        }
        s.push_str("],\"log_probs\":[");
        for (i, v) in self.log_probs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&v.to_string());
        }
        s.push_str(&format!("],\"reward_tns_ps\":{}", self.reward_tns_ps));
        s.push_str(&format!(",\"base_tns_ps\":{}", self.base_tns_ps));
        s.push_str(&format!(",\"wns_delta_ps\":{}", self.wns_delta_ps));
        s
    }

    /// FNV-1a 64 digest of the canonical body — the record's identity.
    pub fn content_id(&self) -> u64 {
        fnv1a64(self.canonical_body().as_bytes())
    }

    /// Renders the record as one JSONL line (no trailing newline), with
    /// the content id up front.
    ///
    /// # Panics
    /// Panics if any float field is non-finite (JSON cannot carry those;
    /// the sink filters them before construction) or the selection and
    /// log-prob lengths disagree.
    pub fn to_jsonl(&self) -> String {
        assert_eq!(
            self.selection.len(),
            self.log_probs.len(),
            "selection/log_probs length mismatch"
        );
        let finite = self.rho.is_finite()
            && self.reward_tns_ps.is_finite()
            && self.base_tns_ps.is_finite()
            && self.wns_delta_ps.is_finite()
            && self.log_probs.iter().all(|v| v.is_finite());
        assert!(finite, "experience record has non-finite fields");
        format!(
            "{{\"id\":\"{:016x}\",{}}}",
            self.content_id(),
            self.canonical_body()
        )
    }

    /// Parses one JSONL line, verifying the schema token, field types,
    /// size bounds, and that the carried `id` matches the recomputed
    /// content digest. Unknown keys are ignored.
    ///
    /// # Errors
    /// A human-readable message describing the first problem found
    /// (truncated JSON, oversized line, wrong schema, type mismatch,
    /// length mismatch, non-finite float, id mismatch).
    pub fn parse(line: &str) -> Result<ExpRecord, String> {
        if line.len() > MAX_LINE_BYTES {
            return Err(format!(
                "oversized record: {} bytes (max {MAX_LINE_BYTES})",
                line.len()
            ));
        }
        let value = rl_ccd_obs::Json::parse(line)?;
        let rl_ccd_obs::Json::Obj(map) = value else {
            return Err("record is not a JSON object".into());
        };
        let get_str = |key: &str| -> Result<&str, String> {
            match map.get(key) {
                Some(rl_ccd_obs::Json::Str(s)) => Ok(s.as_str()),
                Some(_) => Err(format!("field {key:?} is not a string")),
                None => Err(format!("missing field {key:?}")),
            }
        };
        let get_num = |key: &str| -> Result<f64, String> {
            match map.get(key) {
                Some(rl_ccd_obs::Json::Num(n)) => Ok(*n),
                Some(_) => Err(format!("field {key:?} is not a number")),
                None => Err(format!("missing field {key:?}")),
            }
        };
        let get_hex = |key: &str| -> Result<u64, String> {
            let s = get_str(key)?;
            u64::from_str_radix(s, 16).map_err(|_| format!("field {key:?} is not 16-hex"))
        };
        let get_usize = |key: &str| -> Result<usize, String> {
            let n = get_num(key)?;
            if n.fract() != 0.0 || !(0.0..=9.007_199_254_740_992e15).contains(&n) {
                return Err(format!("field {key:?} is not a non-negative integer"));
            }
            Ok(n as usize)
        };
        let v = get_str("v")?;
        if v != EXP_SCHEMA {
            return Err(format!("schema token {v:?}, expected {EXP_SCHEMA:?}"));
        }
        let selection = match map.get("selection") {
            Some(rl_ccd_obs::Json::Arr(items)) => items
                .iter()
                .map(|item| match item {
                    rl_ccd_obs::Json::Num(n)
                        if n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(n) =>
                    {
                        Ok(*n as u32)
                    }
                    _ => Err("selection entries must be u32 indices".to_string()),
                })
                .collect::<Result<Vec<u32>, String>>()?,
            Some(_) => return Err("field \"selection\" is not an array".into()),
            None => return Err("missing field \"selection\"".into()),
        };
        let log_probs = match map.get("log_probs") {
            Some(rl_ccd_obs::Json::Arr(items)) => items
                .iter()
                .map(|item| match item {
                    rl_ccd_obs::Json::Num(n) if n.is_finite() => Ok(*n as f32),
                    _ => Err("log_probs entries must be finite numbers".to_string()),
                })
                .collect::<Result<Vec<f32>, String>>()?,
            Some(_) => return Err("field \"log_probs\" is not an array".into()),
            None => return Err("missing field \"log_probs\"".into()),
        };
        if selection.is_empty() {
            return Err("empty selection".into());
        }
        if selection.len() > MAX_SELECTION {
            return Err(format!(
                "oversized selection: {} endpoints (max {MAX_SELECTION})",
                selection.len()
            ));
        }
        if selection.len() != log_probs.len() {
            return Err(format!(
                "selection has {} entries but log_probs has {}",
                selection.len(),
                log_probs.len()
            ));
        }
        let rho = get_num("rho")? as f32;
        let reward_tns_ps = get_num("reward_tns_ps")?;
        let base_tns_ps = get_num("base_tns_ps")?;
        let wns_delta_ps = get_num("wns_delta_ps")?;
        if !rho.is_finite()
            || !reward_tns_ps.is_finite()
            || !base_tns_ps.is_finite()
            || !wns_delta_ps.is_finite()
        {
            return Err("non-finite float field".into());
        }
        let record = ExpRecord {
            design: get_str("design")?.to_string(),
            feat_fp: get_hex("feat_fp")?,
            model: get_str("model")?.to_string(),
            policy_version: get_usize("policy_version")?,
            policy_fp: get_hex("policy_fp")?,
            rho,
            fanout_cap: get_usize("fanout_cap")?,
            seed: get_hex("seed")?,
            selection,
            log_probs,
            reward_tns_ps,
            base_tns_ps,
            wns_delta_ps,
        };
        let carried = get_hex("id")?;
        let computed = record.content_id();
        if carried != computed {
            return Err(format!(
                "content id mismatch: line says {carried:016x}, body hashes to {computed:016x}"
            ));
        }
        Ok(record)
    }

    /// Sum of the behavior log-probs: log π_b(τ) for the whole
    /// trajectory, the denominator of the importance weight.
    pub fn behavior_log_prob(&self) -> f32 {
        self.log_probs.iter().sum()
    }
}

/// What a valid experience file contained (the `rlccd exp-validate`
/// report).
#[derive(Clone, Debug, Default)]
pub struct ExpSummary {
    /// Parsed records (lines).
    pub records: usize,
    /// Distinct content ids.
    pub unique: usize,
    /// Records whose content id was already seen.
    pub duplicates: usize,
    /// policy version → record count.
    pub versions: BTreeMap<usize, usize>,
    /// Distinct designs.
    pub designs: usize,
    /// Total selection steps across all records.
    pub total_steps: usize,
}

impl ExpSummary {
    /// Unique records over total records; 1.0 for an empty or fully
    /// duplicate-free file.
    pub fn dedup_ratio(&self) -> f64 {
        if self.records == 0 {
            1.0
        } else {
            self.unique as f64 / self.records as f64
        }
    }
}

/// Schema-checks an `rl-ccd-exp v1` JSONL stream line by line (the single
/// source of truth behind `rlccd exp-validate` and the tests). An empty
/// stream is a valid, empty log.
///
/// # Errors
/// [`ExpError::Parse`] naming the first offending line, or
/// [`ExpError::Io`] if reading fails.
pub fn validate_exp_jsonl<R: BufRead>(reader: R) -> Result<ExpSummary, ExpError> {
    let mut summary = ExpSummary::default();
    let mut seen = std::collections::BTreeSet::new();
    let mut designs = std::collections::BTreeSet::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(ExpError::Io)?;
        if line.is_empty() {
            continue;
        }
        let record = ExpRecord::parse(&line).map_err(|message| ExpError::Parse {
            line: idx + 1,
            message,
        })?;
        summary.records += 1;
        summary.total_steps += record.selection.len();
        *summary.versions.entry(record.policy_version).or_insert(0) += 1;
        designs.insert(record.design.clone());
        if seen.insert(record.content_id()) {
            summary.unique += 1;
        } else {
            summary.duplicates += 1;
        }
    }
    summary.designs = designs.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record() -> ExpRecord {
        ExpRecord {
            design: "gate_a:360:7nm:5".into(),
            feat_fp: 0xdead_beef_cafe_f00d,
            model: "champion".into(),
            policy_version: 3,
            policy_fp: 0x0123_4567_89ab_cdef,
            rho: 0.3,
            fanout_cap: 24,
            seed: 42,
            selection: vec![7, 1, 12],
            log_probs: vec![-0.5, -1.25, -0.125],
            reward_tns_ps: -123.5,
            base_tns_ps: -220.25,
            wns_delta_ps: 3.5,
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let rec = sample_record();
        let line = rec.to_jsonl();
        assert!(line.starts_with("{\"id\":\""));
        assert!(line.contains("\"v\":\"rl-ccd-exp v1\""));
        let back = ExpRecord::parse(&line).expect("roundtrip");
        assert_eq!(back, rec);
    }

    #[test]
    fn content_id_is_stable_and_content_sensitive() {
        let a = sample_record();
        let mut b = sample_record();
        assert_eq!(a.content_id(), b.content_id());
        b.seed += 1;
        assert_ne!(a.content_id(), b.content_id());
    }

    #[test]
    fn tampered_line_is_rejected_by_the_id_check() {
        let line = sample_record().to_jsonl();
        let tampered = line.replace("\"policy_version\":3", "\"policy_version\":4");
        assert_ne!(line, tampered);
        let err = ExpRecord::parse(&tampered).unwrap_err();
        assert!(err.contains("content id mismatch"), "{err}");
    }

    #[test]
    fn truncated_and_oversized_lines_are_rejected() {
        let line = sample_record().to_jsonl();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(
                ExpRecord::parse(&line[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let oversized = format!("{}{}", " ".repeat(MAX_LINE_BYTES), line);
        let err = ExpRecord::parse(&oversized).unwrap_err();
        assert!(err.contains("oversized record"), "{err}");
    }

    #[test]
    fn length_mismatch_and_empty_selection_are_rejected() {
        let mut rec = sample_record();
        rec.log_probs.pop();
        // Hand-build the line since to_jsonl asserts the invariant.
        let line = format!(
            "{{\"id\":\"{:016x}\",{}}}",
            rec.content_id(),
            rec.canonical_body()
        );
        let err = ExpRecord::parse(&line).unwrap_err();
        assert!(err.contains("entries"), "{err}");
        let mut empty = sample_record();
        empty.selection.clear();
        empty.log_probs.clear();
        let line = format!(
            "{{\"id\":\"{:016x}\",{}}}",
            empty.content_id(),
            empty.canonical_body()
        );
        let err = ExpRecord::parse(&line).unwrap_err();
        assert!(err.contains("empty selection"), "{err}");
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let line = sample_record().to_jsonl();
        let extended = line.replacen('{', "{\"future_key\":true,", 1);
        let rec = ExpRecord::parse(&extended).expect("forward compatible");
        assert_eq!(rec, sample_record());
    }

    #[test]
    fn validate_reports_counts_dedup_and_version_histogram() {
        let a = sample_record();
        let mut b = sample_record();
        b.policy_version = 4;
        let mut file = String::new();
        file.push_str(&a.to_jsonl());
        file.push('\n');
        file.push_str(&a.to_jsonl());
        file.push('\n');
        file.push_str(&b.to_jsonl());
        file.push('\n');
        let sum = validate_exp_jsonl(file.as_bytes()).expect("valid file");
        assert_eq!(sum.records, 3);
        assert_eq!(sum.unique, 2);
        assert_eq!(sum.duplicates, 1);
        assert_eq!(sum.versions.get(&3), Some(&2));
        assert_eq!(sum.versions.get(&4), Some(&1));
        assert_eq!(sum.designs, 1);
        assert!((sum.dedup_ratio() - 2.0 / 3.0).abs() < 1e-12);
        // Empty stream: valid, empty.
        let empty = validate_exp_jsonl(&b""[..]).expect("empty ok");
        assert_eq!(empty.records, 0);
        assert_eq!(empty.dedup_ratio(), 1.0);
        // A corrupt line names its line number.
        let bad = format!("{}\nnot json\n", a.to_jsonl());
        let err = validate_exp_jsonl(bad.as_bytes()).unwrap_err();
        let ExpError::Parse { line, .. } = err else {
            panic!("expected parse error, got {err:?}")
        };
        assert_eq!(line, 2);
    }
}
