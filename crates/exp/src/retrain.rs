//! Offline importance-weighted retraining: the trainer half of the
//! closed loop.
//!
//! [`retrain`] is a pure function of `(base checkpoint, experience log,
//! config)` — nothing reads the clock, the filesystem beyond its two
//! inputs, or any unseeded RNG — so two retrains from the same inputs
//! produce **bit-identical** checkpoints (`cmp` the `state.txt` files).
//! That is the property the CI loop-smoke job pins.
//!
//! The update rule is off-policy REINFORCE. For each logged record the
//! current policy replays the logged action sequence with teacher
//! forcing ([`rl_ccd::RlCcd::replay_trajectory`]), giving
//! `Σ_t log π_θ(a_t|s_t)` on a gradient tape. The behavior policy's
//! log-probs were captured at serve time, so the importance weight is
//! `w = exp(Σ log π_θ − Σ log π_b)`, clamped to `w_max` to bound the
//! variance of stale records. Rewards are standardized across the batch
//! exactly as the online trainer does (population std, update skipped
//! when the batch is degenerate), and each record contributes
//! `−(w · advantage) · ∇ Σ_t log π_θ`. Everything downstream of the
//! gradient — averaging, global-norm clipping, Adam, the non-finite
//! guards with snapshot-restore and learning-rate decay — mirrors
//! `rl_ccd::reinforce` line for line, so an offline step is the online
//! step with `w ≡ 1` when the data is fresh.

use crate::buffer::ReplayBuffer;
use crate::rebuild::{build_env, feature_fingerprint};
use crate::record::ExpRecord;
use crate::ExpError;
use rl_ccd::{load_training_state, save_training_state, CcdEnv, IterationStats, TrainingState};
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::GradSet;
use rl_ccd_serve::{DesignKey, ModelRegistry};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::Path;

/// Knobs for one offline retraining run. Everything here feeds the
/// deterministic recipe; two runs with equal configs and inputs are
/// bit-identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetrainConfig {
    /// Seed for the buffer's deterministic iteration order.
    pub seed: u64,
    /// Offline update steps to take (the version bump is exactly this).
    pub steps: usize,
    /// Records per update step (the buffer is cycled when smaller).
    pub batch: usize,
    /// Maximum policy-version distance a record may have from the base
    /// checkpoint before it is evicted as stale.
    pub max_staleness: usize,
    /// Clamp on the importance weight `exp(Σlogπ_θ − Σlogπ_b)`.
    pub w_max: f32,
    /// Override for the optimizer learning rate (`None` keeps the rate
    /// the base checkpoint's Adam state carries).
    pub learning_rate: Option<f32>,
    /// Global-norm gradient clip, matching the online trainer's knob.
    pub grad_clip: f32,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        Self {
            seed: 0xE1,
            steps: 4,
            batch: 8,
            max_staleness: 16,
            w_max: 10.0,
            learning_rate: None,
            grad_clip: 5.0,
        }
    }
}

/// What one retraining run did with its inputs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RetrainReport {
    /// Version (training iteration) of the base checkpoint.
    pub base_version: usize,
    /// Version of the emitted checkpoint (`base + steps`).
    pub new_version: usize,
    /// Records admitted to the replay buffer.
    pub records_loaded: usize,
    /// Duplicate records the buffer collapsed.
    pub duplicates: usize,
    /// Records skipped for claiming a policy version newer than the base.
    pub unknown_version: usize,
    /// Records evicted for exceeding the staleness bound.
    pub stale: usize,
    /// Records skipped because their rho/fanout-cap disagreed with the
    /// first record (one retrain = one serving configuration).
    pub config_mismatch: usize,
    /// Records skipped because the rebuilt environment disagreed with the
    /// logged feature fingerprint or rejected the action sequence.
    pub replay_failures: usize,
    /// Update steps actually applied to the parameters (degenerate and
    /// guarded batches advance the version without stepping Adam).
    pub steps_taken: usize,
    /// Steps the non-finite guards intercepted.
    pub guarded_steps: usize,
    /// Mean clamped importance weight over every replayed record.
    pub mean_importance_weight: f64,
}

/// Retrains the checkpoint in `base_dir` from the experience log at
/// `log_path`, committing the result to `out_dir` (atomic
/// `state.txt` + manifest, same format the daemon promotes from).
///
/// # Errors
/// [`ExpError::Checkpoint`] when the base checkpoint fails verification,
/// [`ExpError::Parse`]/[`ExpError::Io`] when the log is corrupt or
/// unreadable, [`ExpError::Serve`] when the checkpoint does not describe
/// a complete model, and [`ExpError::Retrain`] when no record survives
/// filtering (an empty retrain would silently re-emit the base — better
/// to refuse).
pub fn retrain(
    base_dir: impl AsRef<Path>,
    log_path: impl AsRef<Path>,
    out_dir: impl AsRef<Path>,
    cfg: &RetrainConfig,
) -> Result<RetrainReport, ExpError> {
    let state = load_training_state(&base_dir)?;
    let file = std::fs::File::open(&log_path)?;
    let mut records = Vec::new();
    for (idx, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let record = ExpRecord::parse(&line).map_err(|message| ExpError::Parse {
            line: idx + 1,
            message,
        })?;
        records.push(record);
    }
    let Some(first) = records.first() else {
        return Err(ExpError::Retrain("experience log holds no records".into()));
    };
    let (rho, fanout_cap) = (first.rho, first.fanout_cap);
    let serve_model = ModelRegistry::prepare("retrain", &base_dir, rho)?;
    let mut report = RetrainReport {
        base_version: serve_model.version,
        new_version: serve_model.version + cfg.steps,
        ..RetrainReport::default()
    };

    let mut buffer = ReplayBuffer::new(serve_model.version, cfg.max_staleness);
    for record in records {
        if record.rho != rho || record.fanout_cap != fanout_cap {
            report.config_mismatch += 1;
            continue;
        }
        buffer.push(record);
    }
    let stats = buffer.stats();
    report.records_loaded = stats.accepted;
    report.duplicates = stats.duplicates;
    report.unknown_version = stats.unknown_version;
    report.stale = stats.evicted_stale;

    // Environments are rebuilt once per distinct design and cross-checked
    // against the logged feature fingerprint: a record whose rebuilt
    // features hash differently was logged against a different generator
    // or STA and would replay a trajectory the server never ran.
    let mut envs: BTreeMap<String, Option<CcdEnv>> = BTreeMap::new();
    let ordered = buffer.iter_shuffled(cfg.seed);
    let mut usable: Vec<&ExpRecord> = Vec::with_capacity(ordered.len());
    for record in ordered {
        let env = envs.entry(record.design.clone()).or_insert_with(|| {
            record
                .design
                .parse::<DesignKey>()
                .ok()
                .and_then(|key| build_env(&key, fanout_cap).ok())
        });
        let ok = env
            .as_ref()
            .is_some_and(|env| feature_fingerprint(env) == record.feat_fp);
        if ok {
            usable.push(record);
        } else {
            report.replay_failures += 1;
            rl_ccd_obs::counter!("exp.retrain.replay_failed", 1);
        }
    }
    if usable.is_empty() {
        return Err(ExpError::Retrain(format!(
            "no usable records after filtering ({stats:?}, {} replay failures)",
            report.replay_failures
        )));
    }

    let model = &serve_model.model;
    let mut params = state.params.clone();
    let mut adam = state.adam.clone();
    if let Some(lr) = cfg.learning_rate {
        adam.lr = lr;
    }
    let mut best_reward = state.best_reward;
    let mut best_selection = state.best_selection.clone();
    let mut history = state.history.clone();
    let mut weight_sum = 0.0f64;
    let mut weight_count = 0u64;

    for step in 0..cfg.steps {
        let _span = rl_ccd_obs::span!("exp.retrain.step", iteration = step as u64);
        // Cycle the shuffled buffer, deduping within the batch so a short
        // log cannot produce a zero-variance batch of one repeated record.
        let mut indices: Vec<usize> = Vec::with_capacity(cfg.batch);
        for j in 0..cfg.batch.max(1) {
            let idx = (step * cfg.batch.max(1) + j) % usable.len();
            if !indices.contains(&idx) {
                indices.push(idx);
            }
        }
        let mut replays = Vec::with_capacity(indices.len());
        for idx in indices {
            let record = usable[idx];
            let env = envs
                .get(&record.design)
                .and_then(Option::as_ref)
                .expect("usable records have environments");
            let actions: Vec<EndpointId> = record
                .selection
                .iter()
                .map(|&v| EndpointId::new(v as usize))
                .collect();
            let rollout = match model.replay_trajectory(&params, env, &actions) {
                Ok(rollout) => rollout,
                Err(_) => {
                    report.replay_failures += 1;
                    rl_ccd_obs::counter!("exp.retrain.replay_failed", 1);
                    continue;
                }
            };
            let lp_theta = rollout.tape.value(rollout.total_log_prob).data()[0];
            let weight = (lp_theta - record.behavior_log_prob()).exp().min(cfg.w_max);
            if !weight.is_finite() {
                report.replay_failures += 1;
                rl_ccd_obs::counter!("exp.retrain.replay_failed", 1);
                continue;
            }
            weight_sum += weight as f64;
            weight_count += 1;
            if record.reward_tns_ps > best_reward {
                best_reward = record.reward_tns_ps;
                best_selection = actions.clone();
            }
            replays.push((record, rollout, weight));
        }

        let rewards: Vec<f64> = replays.iter().map(|(r, _, _)| r.reward_tns_ps).collect();
        let iteration = state.next_iteration + step;
        if replays.is_empty() {
            history.push(IterationStats {
                iteration,
                mean_reward: f64::NEG_INFINITY,
                batch_best: f64::NEG_INFINITY,
                greedy_reward: f64::NEG_INFINITY,
                best_so_far: best_reward,
                steps: Vec::new(),
                rewards: Vec::new(),
            });
            continue;
        }
        let mean = rewards.iter().sum::<f64>() / rewards.len() as f64;
        let var = rewards.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rewards.len() as f64;
        let std = var.sqrt();
        let batch_best = rewards.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // The update mirrors rl_ccd::reinforce exactly: standardized
        // advantage, importance weight folded into the per-record scale,
        // average, clip, and the two non-finite guards.
        if std > 1e-9 {
            let mut grads = GradSet::new();
            for (record, rollout, weight) in &replays {
                let advantage = ((record.reward_tns_ps - mean) / std) as f32;
                let mut gradients = rollout.tape.backward(rollout.total_log_prob);
                let mut local = GradSet::new();
                local.accumulate(&rollout.binding, &mut gradients);
                local.scale(-(advantage * weight));
                grads.merge(local);
            }
            grads.average();
            grads.clip_global_norm(cfg.grad_clip);
            if !grads.all_finite() {
                report.guarded_steps += 1;
                rl_ccd_obs::counter!("exp.retrain.guarded", 1);
            } else {
                let last_good = (params.clone(), adam.clone());
                adam.step(&mut params, &grads);
                if !params.all_finite() || !adam.state_is_finite() {
                    params = last_good.0;
                    adam = last_good.1;
                    adam.decay_lr(0.5);
                    report.guarded_steps += 1;
                    rl_ccd_obs::counter!("exp.retrain.guarded", 1);
                } else {
                    report.steps_taken += 1;
                }
            }
        }
        history.push(IterationStats {
            iteration,
            mean_reward: mean,
            batch_best,
            greedy_reward: batch_best,
            best_so_far: best_reward,
            steps: replays.iter().map(|(r, _, _)| r.selection.len()).collect(),
            rewards,
        });
    }

    if weight_count > 0 {
        report.mean_importance_weight = weight_sum / weight_count as f64;
    }
    let new_state = TrainingState {
        next_iteration: state.next_iteration + cfg.steps,
        seed_base: state.seed_base,
        best_reward,
        best_mean: state.best_mean,
        stale: state.stale,
        best_selection,
        params,
        adam,
        history,
        faults: state.faults,
    };
    save_training_state(&new_state, &out_dir)?;
    rl_ccd_obs::counter!("exp.retrain.committed", 1);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rl_ccd::{InferSession, RlCcd, RlConfig};
    use rl_ccd_nn::Adam;
    use std::io::Write;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rl_ccd_exp_retrain_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    /// A base checkpoint at version 3 plus an experience log of `n`
    /// genuinely-sampled trajectories from that policy.
    fn seed_loop_inputs(tag: &str, n: u64) -> (PathBuf, PathBuf, RlConfig) {
        let dir = tmp_dir(tag);
        let config = RlConfig::fast();
        let (model, params) = RlCcd::init(config.clone());
        let state = TrainingState {
            next_iteration: 3,
            seed_base: config.seed,
            best_reward: -1.0e9,
            best_mean: -1.0e9,
            stale: 0,
            best_selection: vec![],
            params: params.clone(),
            adam: Adam::new(config.learning_rate),
            history: vec![],
            faults: vec![],
        };
        save_training_state(&state, &dir).expect("save base");
        let key: DesignKey = "retrain:360:7nm:5".parse().expect("key");
        let env = build_env(&key, 24).expect("env");
        let feat_fp = feature_fingerprint(&env);
        let log_path = dir.join("exp.jsonl");
        let mut log = std::fs::File::create(&log_path).expect("log");
        let mut session = InferSession::new(&model, &params);
        for seed in 0..n {
            let mut rng = StdRng::seed_from_u64(seed);
            let (selection, log_probs) = session.sample_logged(&env, &mut rng);
            if selection.is_empty() {
                continue;
            }
            let realized = env.evaluate(&selection);
            let record = ExpRecord {
                design: key.to_string(),
                feat_fp,
                model: "champion".into(),
                policy_version: 3,
                policy_fp: 0xbeef,
                rho: config.rho,
                fanout_cap: 24,
                seed,
                selection: selection.iter().map(|e| e.index() as u32).collect(),
                log_probs,
                reward_tns_ps: realized.final_qor.tns_ps,
                base_tns_ps: 0.0,
                wns_delta_ps: 0.0,
            };
            writeln!(log, "{}", record.to_jsonl()).expect("write record");
        }
        (dir, log_path, config)
    }

    #[test]
    fn double_retrain_is_bit_identical_and_moves_the_params() {
        let (base, log, _config) = seed_loop_inputs("twice", 6);
        let out_a = tmp_dir("twice_a");
        let out_b = tmp_dir("twice_b");
        let cfg = RetrainConfig {
            steps: 2,
            batch: 4,
            ..RetrainConfig::default()
        };
        let report_a = retrain(&base, &log, &out_a, &cfg).expect("retrain a");
        let report_b = retrain(&base, &log, &out_b, &cfg).expect("retrain b");
        assert_eq!(report_a, report_b);
        assert_eq!(report_a.base_version, 3);
        assert_eq!(report_a.new_version, 5);
        assert!(report_a.steps_taken > 0, "{report_a:?}");
        assert_eq!(report_a.replay_failures, 0, "{report_a:?}");
        let bytes_a = std::fs::read(out_a.join("state.txt")).expect("state a");
        let bytes_b = std::fs::read(out_b.join("state.txt")).expect("state b");
        assert_eq!(bytes_a, bytes_b, "same log + seed must be bit-identical");
        let base_state = load_training_state(&base).expect("base");
        let new_state = load_training_state(&out_a).expect("new");
        assert_eq!(new_state.next_iteration, 5);
        assert_ne!(new_state.params, base_state.params, "no learning happened");
        assert!(new_state.params.all_finite());
        assert_eq!(new_state.history.len(), base_state.history.len() + 2);
        // A different seed orders the buffer differently → different bytes.
        let out_c = tmp_dir("twice_c");
        let other = RetrainConfig { seed: 0xE2, ..cfg };
        retrain(&base, &log, &out_c, &other).expect("retrain c");
        let bytes_c = std::fs::read(out_c.join("state.txt")).expect("state c");
        assert_ne!(bytes_a, bytes_c, "seed does not reach the recipe");
        for dir in [base, out_a, out_b, out_c] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn empty_and_unusable_logs_are_refused() {
        let (base, log, config) = seed_loop_inputs("refuse", 2);
        let out = tmp_dir("refuse_out");
        std::fs::write(&log, b"").expect("truncate");
        let err = retrain(&base, &log, &out, &RetrainConfig::default()).unwrap_err();
        assert!(matches!(err, ExpError::Retrain(_)), "{err:?}");
        // Records whose fingerprint disagrees with the rebuilt env are
        // replay failures, and a log of only those is refused too.
        let key: DesignKey = "retrain:360:7nm:5".parse().expect("key");
        let record = ExpRecord {
            design: key.to_string(),
            feat_fp: 0xDEAD,
            model: "champion".into(),
            policy_version: 3,
            policy_fp: 0xbeef,
            rho: config.rho,
            fanout_cap: 24,
            seed: 1,
            selection: vec![0],
            log_probs: vec![-0.5],
            reward_tns_ps: -10.0,
            base_tns_ps: 0.0,
            wns_delta_ps: 0.0,
        };
        std::fs::write(&log, format!("{}\n", record.to_jsonl())).expect("write");
        let err = retrain(&base, &log, &out, &RetrainConfig::default()).unwrap_err();
        let ExpError::Retrain(message) = err else {
            panic!("expected retrain refusal, got {err:?}")
        };
        assert!(message.contains("1 replay failures"), "{message}");
        assert!(!out.join("state.txt").exists(), "refusal must not commit");
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn stale_and_future_records_are_filtered_not_fatal() {
        let (base, log, config) = seed_loop_inputs("filter", 4);
        let out = tmp_dir("filter_out");
        // Append one future-version and one ancient record.
        let key: DesignKey = "retrain:360:7nm:5".parse().expect("key");
        let env = build_env(&key, 24).expect("env");
        let feat_fp = feature_fingerprint(&env);
        let mut extra = ExpRecord {
            design: key.to_string(),
            feat_fp,
            model: "champion".into(),
            policy_version: 9,
            policy_fp: 0xbeef,
            rho: config.rho,
            fanout_cap: 24,
            seed: 99,
            selection: vec![0],
            log_probs: vec![-0.5],
            reward_tns_ps: -10.0,
            base_tns_ps: 0.0,
            wns_delta_ps: 0.0,
        };
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&log)
            .expect("append");
        writeln!(file, "{}", extra.to_jsonl()).expect("future record");
        extra.policy_version = 0;
        extra.seed = 100;
        writeln!(file, "{}", extra.to_jsonl()).expect("stale record");
        drop(file);
        let cfg = RetrainConfig {
            steps: 1,
            batch: 4,
            max_staleness: 1,
            ..RetrainConfig::default()
        };
        let report = retrain(&base, &log, &out, &cfg).expect("retrain");
        assert_eq!(report.unknown_version, 1, "{report:?}");
        assert_eq!(report.stale, 1, "{report:?}");
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&out).ok();
    }
}
