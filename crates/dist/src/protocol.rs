//! The `rl-ccd-dist v1` wire protocol: what the training coordinator and
//! rollout workers exchange over TCP.
//!
//! The format is the shared [`rl_ccd_wire`] two-layer scheme — length-
//! prefixed frames around a versioned text envelope — with a larger frame
//! cap ([`DIST_MAX_FRAME_LEN`]) because init frames carry a serialized
//! netlist and run frames carry the full parameter set. Everything is
//! plain text: Rust's shortest-roundtrip float formatting makes every
//! value bit-exact across the wire, which the determinism contract of
//! [`rl_ccd::RolloutExecutor`] depends on.
//!
//! A session is: one [`Request::Init`] (design + recipe + config, so the
//! worker can rebuild the environment and model the trainer holds), then
//! one [`Request::Run`] per training iteration carrying the current
//! parameters and this worker's `(slot, seed)` share of the batch, each
//! answered by a [`Response::Batch`] of lean rollouts — selection, reward
//! and `∇ Σ log π` only; the trainer recomputes the champion's flow result
//! locally — plus quarantine records.

use rl_ccd::{EncoderKind, FaultKind, RlConfig, RolloutFault};
use rl_ccd_flow::{DatapathOpts, FlowRecipe, MarginMode, UsefulSkewOpts};
use rl_ccd_nn::{GradSet, ParamSet};
use rl_ccd_wire::{head_fields, read_frame_limited, split_versioned, write_frame_limited};
use std::io::{self, Read, Write};

/// Version token on line 1 of every dist payload.
pub const PROTOCOL_VERSION: &str = "rl-ccd-dist v1";

/// Frame cap for dist messages (256 MiB): init frames carry a full
/// serialized netlist and run frames a full parameter set, far past the
/// control-message default of [`rl_ccd_wire::MAX_FRAME_LEN`].
pub const DIST_MAX_FRAME_LEN: usize = 256 << 20;

/// Writes one dist-capped frame.
///
/// # Errors
/// Propagates I/O errors; `InvalidInput` past [`DIST_MAX_FRAME_LEN`].
pub fn write_message<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    write_frame_limited(w, payload, DIST_MAX_FRAME_LEN)
}

/// Reads one dist-capped frame.
///
/// # Errors
/// Propagates I/O errors; `InvalidData` on an oversized length prefix and
/// `UnexpectedEof` on a torn frame.
pub fn read_message<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    read_frame_limited(r, DIST_MAX_FRAME_LEN)
}

/// A coordinator → worker message.
// `Init` dwarfs the other variants, but exactly one is ever alive per
// worker connection — boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Load a design and build the environment and model once, before any
    /// rollouts.
    Init(InitRequest),
    /// Run one iteration's share of rollouts.
    Run(RunRequest),
    /// Liveness/readiness probe: answered inline, never touches the
    /// rollout path, legal before `Init`.
    Health,
    /// Stop serving and exit the accept loop.
    Shutdown,
}

/// A worker → coordinator message.
#[derive(Clone, Debug)]
pub enum Response {
    /// The worker finished building its environment.
    InitAck {
        /// Total endpoints in the rebuilt design.
        endpoints: usize,
        /// Size of the violating-endpoint pool (must match the
        /// coordinator's, or the designs diverged).
        pool: usize,
    },
    /// One iteration's surviving rollouts plus quarantine records.
    Batch(BatchResponse),
    /// Answer to a [`Request::Health`] probe.
    HealthAck {
        /// Whether the worker has an initialized environment and can
        /// serve `Run` requests (`false` before `Init` — still alive).
        ready: bool,
    },
    /// The worker could not serve the request.
    Err {
        /// Human-readable reason.
        message: String,
    },
}

/// Body of [`Request::Init`].
#[derive(Clone, Debug, PartialEq)]
pub struct InitRequest {
    /// Clock period of the design, ps (carried beside the netlist text —
    /// the netlist format does not store it).
    pub period_ps: f32,
    /// The flow recipe every rollout evaluation runs.
    pub recipe: FlowRecipe,
    /// The RL configuration (the worker rebuilds the model from its seed
    /// and widths, and honors its tape memory budget).
    pub config: RlConfig,
    /// The design netlist in [`rl_ccd_netlist::write_netlist`] text form.
    pub netlist_text: String,
}

/// Body of [`Request::Run`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunRequest {
    /// Training iteration index.
    pub iteration: usize,
    /// Coordinator-unique request id. Retried dispatches re-use the id,
    /// so a worker that already served it can replay its cached reply
    /// instead of recomputing (idempotent re-issue). 0 means "no id".
    pub req_id: u64,
    /// Remaining deadline budget at send time, ms. The worker uses it to
    /// bound its reply write — a coordinator that has already given up is
    /// not worth blocking on. Absent means unbounded.
    pub budget_ms: Option<u64>,
    /// This worker's `(slot, seed)` share of the iteration's batch.
    pub pairs: Vec<(usize, u64)>,
    /// Test-only fault injections the worker should apply.
    pub injects: Vec<Inject>,
    /// Current policy parameters.
    pub params: ParamSet,
}

/// A fault injection carried to a worker (test harness and chaos drills
/// only; the empty list is the production path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inject {
    /// Die mid-batch: close the connection without replying and stop
    /// serving.
    Drop,
    /// Write a torn frame (length prefix promising more bytes than
    /// follow), then die.
    Torn,
    /// Stall this many milliseconds before replying — past the
    /// coordinator's deadline, so the reply lands on an abandoned socket.
    SleepMs(u64),
    /// Panic the rollout at this slot (quarantined in-worker).
    Panic(usize),
    /// Replace the reward of the rollout at this slot with NaN.
    NanReward(usize),
    /// Poison one gradient element of the rollout at this slot.
    Poison(usize),
}

impl Inject {
    fn encode(self) -> String {
        match self {
            Inject::Drop => "drop".into(),
            Inject::Torn => "torn".into(),
            Inject::SleepMs(ms) => format!("sleep:{ms}"),
            Inject::Panic(slot) => format!("panic:{slot}"),
            Inject::NanReward(slot) => format!("nan:{slot}"),
            Inject::Poison(slot) => format!("poison:{slot}"),
        }
    }

    fn decode(tok: &str) -> Result<Self, String> {
        let (kind, arg) = match tok.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (tok, None),
        };
        let num = |what: &str| -> Result<u64, String> {
            arg.ok_or_else(|| format!("inject {what} needs an argument"))?
                .parse::<u64>()
                .map_err(|e| format!("bad inject argument in {tok:?}: {e}"))
        };
        Ok(match kind {
            "drop" => Inject::Drop,
            "torn" => Inject::Torn,
            "sleep" => Inject::SleepMs(num("sleep")?),
            "panic" => Inject::Panic(num("panic")? as usize),
            "nan" => Inject::NanReward(num("nan")? as usize),
            "poison" => Inject::Poison(num("poison")? as usize),
            other => return Err(format!("unknown inject token {other:?}")),
        })
    }
}

/// One executed rollout as it crosses the wire — lean: no flow result.
#[derive(Clone, Debug)]
pub struct RolloutItem {
    /// Worker slot within the iteration.
    pub slot: usize,
    /// The rollout's sampling seed.
    pub seed: u64,
    /// Trajectory length.
    pub steps: usize,
    /// Trajectory reward (final TNS, ps).
    pub reward: f64,
    /// Selected endpoint indices, in selection order.
    pub selection: Vec<usize>,
    /// `∇ Σ log π` for the trajectory (count preserved, so averaging on
    /// the coordinator matches the single-process path).
    pub grads: GradSet,
}

/// Body of [`Response::Batch`].
#[derive(Clone, Debug, Default)]
pub struct BatchResponse {
    /// Surviving rollouts.
    pub items: Vec<RolloutItem>,
    /// Quarantine records for rollouts that faulted in-worker.
    pub faults: Vec<RolloutFault>,
}

// ---------------------------------------------------------------------------
// key=value field helpers

fn kv_fields(line: &str) -> Vec<(&str, &str)> {
    line.split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .collect()
}

struct Fields<'a> {
    what: &'a str,
    fields: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn get(&self, key: &str) -> Result<&'a str, String> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("{} is missing field {key:?}", self.what))
    }

    fn parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.get(key)?
            .parse::<T>()
            .map_err(|e| format!("{}: bad {key}: {e}", self.what))
    }
}

// ---------------------------------------------------------------------------
// recipe and config codecs

fn push_kv(out: &mut String, key: &str, value: impl std::fmt::Display) {
    out.push(' ');
    out.push_str(key);
    out.push('=');
    out.push_str(&value.to_string());
}

fn encode_skew(out: &mut String, prefix: &str, o: &UsefulSkewOpts) {
    push_kv(out, &format!("{prefix}.sweeps"), o.sweeps);
    push_kv(out, &format!("{prefix}.rate"), o.rate);
    push_kv(out, &format!("{prefix}.hold_floor"), o.hold_floor);
    push_kv(out, &format!("{prefix}.launch_floor"), o.launch_floor);
    push_kv(out, &format!("{prefix}.tolerance"), o.tolerance);
    push_kv(out, &format!("{prefix}.move_budget"), o.move_budget_frac);
    push_kv(out, &format!("{prefix}.serves"), o.serves_per_sweep_frac);
}

fn decode_skew(f: &Fields<'_>, prefix: &str) -> Result<UsefulSkewOpts, String> {
    Ok(UsefulSkewOpts {
        sweeps: f.parse(&format!("{prefix}.sweeps"))?,
        rate: f.parse(&format!("{prefix}.rate"))?,
        hold_floor: f.parse(&format!("{prefix}.hold_floor"))?,
        launch_floor: f.parse(&format!("{prefix}.launch_floor"))?,
        tolerance: f.parse(&format!("{prefix}.tolerance"))?,
        move_budget_frac: f.parse(&format!("{prefix}.move_budget"))?,
        serves_per_sweep_frac: f.parse(&format!("{prefix}.serves"))?,
    })
}

fn encode_datapath(out: &mut String, prefix: &str, o: &DatapathOpts) {
    push_kv(out, &format!("{prefix}.passes"), o.passes);
    push_kv(out, &format!("{prefix}.ops_per_pass"), o.ops_per_pass);
    push_kv(out, &format!("{prefix}.ops_per_kcell"), o.ops_per_kcell);
    push_kv(out, &format!("{prefix}.ops_per_ep"), o.ops_per_endpoint);
    push_kv(out, &format!("{prefix}.buffer_min_len"), o.buffer_min_len);
    push_kv(out, &format!("{prefix}.min_gain"), o.min_gain);
}

fn decode_datapath(f: &Fields<'_>, prefix: &str) -> Result<DatapathOpts, String> {
    Ok(DatapathOpts {
        passes: f.parse(&format!("{prefix}.passes"))?,
        ops_per_pass: f.parse(&format!("{prefix}.ops_per_pass"))?,
        ops_per_kcell: f.parse(&format!("{prefix}.ops_per_kcell"))?,
        ops_per_endpoint: f.parse(&format!("{prefix}.ops_per_ep"))?,
        buffer_min_len: f.parse(&format!("{prefix}.buffer_min_len"))?,
        min_gain: f.parse(&format!("{prefix}.min_gain"))?,
    })
}

fn encode_recipe(out: &mut String, r: &FlowRecipe) {
    encode_skew(out, "skew", &r.skew);
    encode_skew(out, "touchup", &r.skew_touchup);
    encode_datapath(out, "pre", &r.pre_datapath);
    encode_datapath(out, "main", &r.main_datapath);
    push_kv(out, "recovery_slack", r.recovery_slack);
    let mode = match r.margin_mode {
        MarginMode::OverFixToWns => "overfix",
        MarginMode::UnderFix => "underfix",
    };
    push_kv(out, "margin_mode", mode);
    push_kv(out, "clock_insertion", r.clock_insertion_frac);
    push_kv(out, "clock_variation", r.clock_variation_frac);
    push_kv(out, "skew_bound", r.skew_bound_frac);
    push_kv(out, "legalize_disp", r.legalize_disp);
    push_kv(out, "flow_seed", r.seed);
}

fn decode_recipe(f: &Fields<'_>) -> Result<FlowRecipe, String> {
    Ok(FlowRecipe {
        skew: decode_skew(f, "skew")?,
        skew_touchup: decode_skew(f, "touchup")?,
        pre_datapath: decode_datapath(f, "pre")?,
        main_datapath: decode_datapath(f, "main")?,
        recovery_slack: f.parse("recovery_slack")?,
        margin_mode: match f.get("margin_mode")? {
            "overfix" => MarginMode::OverFixToWns,
            "underfix" => MarginMode::UnderFix,
            other => return Err(format!("unknown margin_mode {other:?}")),
        },
        clock_insertion_frac: f.parse("clock_insertion")?,
        clock_variation_frac: f.parse("clock_variation")?,
        skew_bound_frac: f.parse("skew_bound")?,
        legalize_disp: f.parse("legalize_disp")?,
        seed: f.parse("flow_seed")?,
    })
}

fn encode_config(out: &mut String, c: &RlConfig) {
    push_kv(out, "cfg.gnn_hidden", c.gnn_hidden);
    push_kv(out, "cfg.embed_dim", c.embed_dim);
    push_kv(out, "cfg.lstm_hidden", c.lstm_hidden);
    push_kv(out, "cfg.attn_dim", c.attn_dim);
    push_kv(out, "cfg.rho", c.rho);
    push_kv(out, "cfg.lr", c.learning_rate);
    push_kv(out, "cfg.grad_clip", c.grad_clip);
    push_kv(out, "cfg.workers", c.workers);
    push_kv(out, "cfg.max_iterations", c.max_iterations);
    push_kv(out, "cfg.patience", c.patience);
    push_kv(out, "cfg.fanout_cap", c.fanout_cap);
    push_kv(out, "cfg.seed", c.seed);
    let enc = match c.encoder {
        EncoderKind::Lstm => "lstm",
        EncoderKind::Gru => "gru",
        EncoderKind::None => "none",
    };
    push_kv(out, "cfg.encoder", enc);
    push_kv(out, "cfg.tape_budget", c.tape_memory_budget);
    match c.quorum {
        Some(q) => push_kv(out, "cfg.quorum", q),
        None => push_kv(out, "cfg.quorum", "none"),
    }
    push_kv(out, "cfg.div_lr_decay", c.divergence_lr_decay);
}

fn decode_config(f: &Fields<'_>) -> Result<RlConfig, String> {
    Ok(RlConfig {
        gnn_hidden: f.parse("cfg.gnn_hidden")?,
        embed_dim: f.parse("cfg.embed_dim")?,
        lstm_hidden: f.parse("cfg.lstm_hidden")?,
        attn_dim: f.parse("cfg.attn_dim")?,
        rho: f.parse("cfg.rho")?,
        learning_rate: f.parse("cfg.lr")?,
        grad_clip: f.parse("cfg.grad_clip")?,
        workers: f.parse("cfg.workers")?,
        max_iterations: f.parse("cfg.max_iterations")?,
        patience: f.parse("cfg.patience")?,
        fanout_cap: f.parse("cfg.fanout_cap")?,
        seed: f.parse("cfg.seed")?,
        encoder: match f.get("cfg.encoder")? {
            "lstm" => EncoderKind::Lstm,
            "gru" => EncoderKind::Gru,
            "none" => EncoderKind::None,
            other => return Err(format!("unknown encoder {other:?}")),
        },
        tape_memory_budget: f.parse("cfg.tape_budget")?,
        quorum: match f.get("cfg.quorum")? {
            "none" => None,
            n => Some(
                n.parse::<usize>()
                    .map_err(|e| format!("bad cfg.quorum: {e}"))?,
            ),
        },
        divergence_lr_decay: f.parse("cfg.div_lr_decay")?,
    })
}

// ---------------------------------------------------------------------------
// request codec

/// Encodes a request into a framed-payload byte string.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut head = String::new();
    let mut body = String::new();
    match req {
        Request::Init(init) => {
            head.push_str("init");
            push_kv(&mut head, "period_ps", init.period_ps);
            encode_recipe(&mut head, &init.recipe);
            encode_config(&mut head, &init.config);
            body.push_str(&init.netlist_text);
        }
        Request::Run(run) => {
            head.push_str("run");
            push_kv(&mut head, "iteration", run.iteration);
            if run.req_id != 0 {
                push_kv(&mut head, "req_id", run.req_id);
            }
            if let Some(ms) = run.budget_ms {
                push_kv(&mut head, "budget_ms", ms);
            }
            let pairs = run
                .pairs
                .iter()
                .map(|(slot, seed)| format!("{slot}:{seed}"))
                .collect::<Vec<_>>()
                .join(",");
            push_kv(&mut head, "pairs", pairs);
            if !run.injects.is_empty() {
                let injects = run
                    .injects
                    .iter()
                    .map(|i| i.encode())
                    .collect::<Vec<_>>()
                    .join(",");
                push_kv(&mut head, "inject", injects);
            }
            let mut params = Vec::new();
            run.params.save(&mut params).expect("in-memory write");
            body.push_str(&String::from_utf8(params).expect("params text is UTF-8"));
        }
        Request::Health => head.push_str("health"),
        Request::Shutdown => head.push_str("shutdown"),
    }
    format!("{PROTOCOL_VERSION}\n{head}\n{body}").into_bytes()
}

/// Decodes a request payload.
///
/// # Errors
/// A human-readable reason on a version mismatch or malformed message.
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let (head, body) = split_versioned(payload, PROTOCOL_VERSION)?;
    let (verb, rest) = head.split_once(' ').unwrap_or((head, ""));
    let fields = Fields {
        what: "request",
        fields: head_fields(rest)?,
    };
    match verb {
        "init" => Ok(Request::Init(InitRequest {
            period_ps: fields.parse("period_ps")?,
            recipe: decode_recipe(&fields)?,
            config: decode_config(&fields)?,
            netlist_text: body.to_string(),
        })),
        "run" => {
            let mut pairs = Vec::new();
            for tok in fields.get("pairs")?.split(',').filter(|t| !t.is_empty()) {
                let (slot, seed) = tok
                    .split_once(':')
                    .ok_or_else(|| format!("bad pair token {tok:?}"))?;
                pairs.push((
                    slot.parse::<usize>()
                        .map_err(|e| format!("bad pair slot {tok:?}: {e}"))?,
                    seed.parse::<u64>()
                        .map_err(|e| format!("bad pair seed {tok:?}: {e}"))?,
                ));
            }
            let mut injects = Vec::new();
            if let Ok(toks) = fields.get("inject") {
                for tok in toks.split(',').filter(|t| !t.is_empty()) {
                    injects.push(Inject::decode(tok)?);
                }
            }
            let params =
                ParamSet::load(body.as_bytes()).map_err(|e| format!("bad params body: {e}"))?;
            // req_id and budget_ms are optional: older coordinators omit
            // them and get the pre-idempotency behavior.
            let req_id = match fields.get("req_id") {
                Ok(_) => fields.parse("req_id")?,
                Err(_) => 0,
            };
            let budget_ms = match fields.get("budget_ms") {
                Ok(_) => Some(fields.parse("budget_ms")?),
                Err(_) => None,
            };
            Ok(Request::Run(RunRequest {
                iteration: fields.parse("iteration")?,
                req_id,
                budget_ms,
                pairs,
                injects,
                params,
            }))
        }
        "health" => Ok(Request::Health),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request verb {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// response codec

/// Encodes a response into a framed-payload byte string.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut head = String::new();
    let mut body = String::new();
    match resp {
        Response::InitAck { endpoints, pool } => {
            head.push_str("init-ack");
            push_kv(&mut head, "endpoints", endpoints);
            push_kv(&mut head, "pool", pool);
        }
        Response::Batch(batch) => {
            head.push_str("batch");
            push_kv(&mut head, "items", batch.items.len());
            push_kv(&mut head, "faults", batch.faults.len());
            for item in &batch.items {
                body.push_str("item");
                push_kv(&mut body, "slot", item.slot);
                push_kv(&mut body, "seed", item.seed);
                push_kv(&mut body, "steps", item.steps);
                push_kv(&mut body, "reward", item.reward);
                let sel = item
                    .selection
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                push_kv(&mut body, "selection", sel);
                body.push('\n');
                let mut grads = Vec::new();
                item.grads.save(&mut grads).expect("in-memory write");
                body.push_str(&String::from_utf8(grads).expect("grads text is UTF-8"));
            }
            for fault in &batch.faults {
                body.push_str("fault");
                push_kv(&mut body, "iteration", fault.iteration);
                push_kv(&mut body, "worker", fault.worker);
                push_kv(&mut body, "seed", fault.seed);
                push_kv(&mut body, "kind", fault.kind.as_str());
                // detail is free-form text and must stay the last field:
                // everything after "detail=" to end of line is the value.
                push_kv(&mut body, "detail", fault.detail.replace('\n', " "));
                body.push('\n');
            }
        }
        Response::HealthAck { ready } => {
            head.push_str("health-ack");
            push_kv(&mut head, "ready", u8::from(*ready));
        }
        Response::Err { message } => {
            head.push_str("err");
            push_kv(&mut head, "message", message.replace(['\n', ' '], "_"));
        }
    }
    format!("{PROTOCOL_VERSION}\n{head}\n{body}").into_bytes()
}

/// Decodes a response payload.
///
/// # Errors
/// A human-readable reason on a version mismatch or malformed message.
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let (head, body) = split_versioned(payload, PROTOCOL_VERSION)?;
    let (verb, rest) = head.split_once(' ').unwrap_or((head, ""));
    let fields = Fields {
        what: "response",
        fields: head_fields(rest)?,
    };
    match verb {
        "init-ack" => Ok(Response::InitAck {
            endpoints: fields.parse("endpoints")?,
            pool: fields.parse("pool")?,
        }),
        "batch" => {
            let n_items: usize = fields.parse("items")?;
            let n_faults: usize = fields.parse("faults")?;
            let mut lines = body.lines();
            let mut items = Vec::with_capacity(n_items);
            for _ in 0..n_items {
                let line = lines.next().ok_or("batch body truncated (item line)")?;
                let f = Fields {
                    what: "batch item",
                    fields: kv_fields(line),
                };
                let selection = f
                    .get("selection")?
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(|t| t.parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("bad selection: {e}"))?;
                // The gradient block is self-delimiting: its header names
                // the tensor count, so that many lines follow.
                let header = lines.next().ok_or("batch body truncated (grads header)")?;
                let tensors: usize = header
                    .split_whitespace()
                    .nth(2)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("bad gradient header {header:?}"))?;
                let mut grads_text = String::from(header);
                grads_text.push('\n');
                for _ in 0..tensors {
                    let l = lines.next().ok_or("batch body truncated (grads line)")?;
                    grads_text.push_str(l);
                    grads_text.push('\n');
                }
                let grads = GradSet::load(grads_text.as_bytes())
                    .map_err(|e| format!("bad gradient block: {e}"))?;
                items.push(RolloutItem {
                    slot: f.parse("slot")?,
                    seed: f.parse("seed")?,
                    steps: f.parse("steps")?,
                    reward: f.parse("reward")?,
                    selection,
                    grads,
                });
            }
            let mut faults = Vec::with_capacity(n_faults);
            for _ in 0..n_faults {
                let line = lines.next().ok_or("batch body truncated (fault line)")?;
                let detail = line
                    .split_once("detail=")
                    .map(|(_, d)| d.to_string())
                    .ok_or_else(|| format!("fault line missing detail: {line:?}"))?;
                let f = Fields {
                    what: "batch fault",
                    fields: kv_fields(line),
                };
                let kind_tok = f.get("kind")?;
                faults.push(RolloutFault {
                    iteration: f.parse("iteration")?,
                    worker: f.parse("worker")?,
                    seed: f.parse("seed")?,
                    kind: FaultKind::parse(kind_tok)
                        .ok_or_else(|| format!("unknown fault kind {kind_tok:?}"))?,
                    detail,
                });
            }
            Ok(Response::Batch(BatchResponse { items, faults }))
        }
        "health-ack" => Ok(Response::HealthAck {
            ready: fields.parse::<u8>("ready")? != 0,
        }),
        "err" => Ok(Response::Err {
            message: fields.get("message")?.to_string(),
        }),
        other => Err(format!("unknown response verb {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_roundtrip_preserves_recipe_and_config() {
        let req = Request::Init(InitRequest {
            period_ps: 812.25,
            recipe: FlowRecipe::default(),
            config: RlConfig::fast(),
            netlist_text: "netlist body line 1\nline 2\n".into(),
        });
        let back = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn run_roundtrip_preserves_pairs_injects_and_params() {
        let mut params = ParamSet::new();
        params.insert(
            "w",
            rl_ccd_nn::Tensor::from_vec(1, 3, vec![0.5, -1.25, 3.0]),
        );
        let req = Request::Run(RunRequest {
            iteration: 7,
            req_id: 99,
            budget_ms: Some(1_500),
            pairs: vec![(0, 9001), (3, 42)],
            injects: vec![
                Inject::Drop,
                Inject::Torn,
                Inject::SleepMs(1500),
                Inject::Panic(2),
                Inject::NanReward(0),
                Inject::Poison(1),
            ],
            params,
        });
        let back = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn shutdown_and_empty_run_roundtrip() {
        let back = decode_request(&encode_request(&Request::Shutdown)).unwrap();
        assert_eq!(back, Request::Shutdown);
        let req = Request::Run(RunRequest {
            iteration: 0,
            req_id: 0,
            budget_ms: None,
            pairs: vec![],
            injects: vec![],
            params: ParamSet::new(),
        });
        let back = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn health_roundtrips_and_run_defaults_cover_old_coordinators() {
        let back = decode_request(&encode_request(&Request::Health)).unwrap();
        assert_eq!(back, Request::Health);
        for ready in [true, false] {
            let resp = Response::HealthAck { ready };
            match decode_response(&encode_response(&resp)).unwrap() {
                Response::HealthAck { ready: r } => assert_eq!(r, ready),
                other => panic!("expected health-ack, got {other:?}"),
            }
        }
        // A run head without req_id/budget_ms (the pre-idempotency wire
        // shape) decodes with the no-id defaults.
        let payload =
            format!("{PROTOCOL_VERSION}\nrun iteration=3 pairs=0:11\nrl-ccd-params v1 0\n");
        match decode_request(payload.as_bytes()).unwrap() {
            Request::Run(run) => {
                assert_eq!(run.req_id, 0);
                assert_eq!(run.budget_ms, None);
                assert_eq!(run.pairs, vec![(0, 11)]);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn batch_roundtrip_preserves_items_and_faults() {
        let mut grads = GradSet::new();
        grads.set(
            "g",
            rl_ccd_nn::Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]),
        );
        let resp = Response::Batch(BatchResponse {
            items: vec![RolloutItem {
                slot: 1,
                seed: 77,
                steps: 9,
                reward: -1234.5678901,
                selection: vec![3, 1, 4],
                grads,
            }],
            faults: vec![RolloutFault {
                iteration: 2,
                worker: 1,
                seed: 55,
                kind: FaultKind::WorkerPanic,
                detail: "panic with spaces and = signs".into(),
            }],
        });
        let back = decode_response(&encode_response(&resp)).unwrap();
        match back {
            Response::Batch(b) => {
                assert_eq!(b.items.len(), 1);
                let item = &b.items[0];
                assert_eq!(item.slot, 1);
                assert_eq!(item.seed, 77);
                assert_eq!(item.steps, 9);
                assert_eq!(item.reward, -1234.5678901);
                assert_eq!(item.selection, vec![3, 1, 4]);
                assert_eq!(item.grads.count(), 0);
                assert_eq!(
                    item.grads.get("g").unwrap().data(),
                    &[1.0, 2.0, 3.0, 4.0][..]
                );
                assert_eq!(b.faults.len(), 1);
                assert_eq!(b.faults[0].kind, FaultKind::WorkerPanic);
                assert_eq!(b.faults[0].detail, "panic with spaces and = signs");
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let payload = b"rl-ccd-serve v1\nshutdown\n";
        assert!(decode_request(payload).is_err());
    }
}
