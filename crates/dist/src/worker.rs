//! The rollout worker: one process serving `RunRollouts` requests.
//!
//! A worker is stateless until the coordinator's [`Request::Init`]
//! arrives; it then rebuilds the *same* environment and model the trainer
//! holds — the design from the netlist text, the model from the config's
//! seed and widths — and keeps them across requests, so the expensive
//! setup (STA, endpoint pool, GNN graphs, features) is paid exactly once
//! per training run, not per iteration.
//!
//! Each [`Request::Run`] then fans its `(slot, seed)` pairs over the
//! shared in-process rollout runner
//! ([`rl_ccd::run_rollouts_assigned`]) — the *identical* code path a
//! single-process run takes, which is what makes distributed training
//! bit-identical to local training.
//!
//! Connections ride the unified [`rl_ccd_wire`] transport stack: accepted
//! sockets come back as [`FramedTcp`] through a [`FramedListener`], so a
//! [`NetFaultPlan`] can cover the worker's *accept* path ([`WorkerNet`]) —
//! previously worker sockets were raw `TcpStream`s that chaos could never
//! touch. On Linux the accept loop is readiness-multiplexed over the
//! [`Poller`]: health probes answer while another connection is mid-batch,
//! and a parked coordinator connection costs no wakeups. Frame operations
//! themselves stay blocking, so chaos injection and framing are
//! bit-identical to the sequential loop (the non-epoll fallback).

use crate::protocol::{
    decode_request, encode_response, BatchResponse, Inject, Request, Response, RolloutItem,
    DIST_MAX_FRAME_LEN,
};
use rl_ccd::{run_rollouts_assigned, CcdEnv, FaultPlan, RlCcd, RlConfig};
use rl_ccd_netlist::{read_netlist, ClusterClass, DesignSpec, GeneratedDesign};
use rl_ccd_obs as obs;
use rl_ccd_wire::reactor::Interest;
use rl_ccd_wire::{FramedListener, FramedTcp, NetFaultPlan, Poller, Transport};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// The design, environment and model a worker builds on `Init` and reuses
/// for every subsequent request.
struct WorkerState {
    env: CcdEnv,
    model: RlCcd,
    config: RlConfig,
}

/// Everything a worker keeps across connections: the built environment
/// plus the reply cache that makes retried dispatches idempotent.
#[derive(Default)]
struct WorkerSession {
    state: Option<WorkerState>,
    /// The last identified run's `(req_id, encoded reply)`. A retried
    /// dispatch (same non-zero `req_id`, typically on a fresh connection
    /// after a transport failure) replays the cached bytes instead of
    /// recomputing the batch. One slot is enough: the coordinator issues
    /// at most one in-flight request per worker.
    last_reply: Option<(u64, Vec<u8>)>,
}

/// What handling one message tells the serving loop to do next.
enum Step {
    /// Message answered (or ignored); keep serving this connection.
    Served,
    /// The peer hung up (or the transport died); close this connection.
    Close,
    /// A `Shutdown` request (or an injected death): stop serving.
    Exit,
}

/// Network-side configuration for a worker: how accepted connections are
/// wrapped. The default is a plain wire; attaching a [`NetFaultPlan`]
/// routes every *accepted* connection through chaos — the same fault
/// vocabulary the coordinator side injects — numbered sequentially from
/// `conn_base` in accept order.
#[derive(Clone, Debug, Default)]
pub struct WorkerNet {
    /// Fault plan applied to every accepted connection (`None` = plain).
    pub chaos: Option<Arc<NetFaultPlan>>,
    /// Connection id of the first accepted connection in the plan's
    /// addressing; subsequent accepts count up from here.
    pub conn_base: u64,
}

/// Serves rollout requests on `listener` until a `Shutdown` request or an
/// injected worker death. Blocks the calling thread; run it in a process
/// of its own (`rlccd worker`) or a test thread.
///
/// # Errors
/// Propagates fatal accept-loop I/O errors. Per-connection errors are
/// answered with [`Response::Err`] or end that connection only.
pub fn serve_worker(listener: TcpListener) -> io::Result<()> {
    serve_worker_with(listener, WorkerNet::default())
}

/// [`serve_worker`] with explicit network wrapping: accepted connections
/// come through a [`FramedListener`], so `net.chaos` covers the worker's
/// accept path. Multiplexes connections over the [`Poller`] where the
/// platform supports it (health probes answer while a batch is in flight)
/// and falls back to the sequential accept loop elsewhere.
///
/// # Errors
/// Same contract as [`serve_worker`].
pub fn serve_worker_with(listener: TcpListener, net: WorkerNet) -> io::Result<()> {
    let mut flistener = FramedListener::new(listener);
    if let Some(plan) = net.chaos {
        flistener = flistener.with_chaos(plan, net.conn_base);
    }
    let mut session = WorkerSession::default();
    match Poller::new() {
        Ok(poller) => serve_multiplexed(&poller, flistener, &mut session),
        Err(_) => serve_sequential(flistener, &mut session),
    }
}

/// The sequential accept loop: one connection served at a time, exactly
/// the pre-reactor behavior (and the non-epoll fallback).
fn serve_sequential(mut listener: FramedListener, session: &mut WorkerSession) -> io::Result<()> {
    loop {
        let (mut conn, peer) = listener.accept()?;
        obs::counter!("dist.worker.connections", 1);
        let _span = obs::span!("dist.worker.serve", peer = peer.to_string());
        loop {
            match handle_message(&mut conn, session) {
                Step::Served => continue,
                Step::Close => break,
                Step::Exit => return Ok(()),
            }
        }
    }
}

const LISTENER_TOKEN: u64 = 0;
const FIRST_CONN_TOKEN: u64 = 1;

/// The readiness-multiplexed loop: the listener and every accepted
/// connection share one epoll set. A readable connection gets one
/// blocking frame read + dispatch per event (level-triggered readiness
/// re-reports buffered pipelined requests), so frame operations — and
/// chaos injection — run the identical blocking code path as
/// [`serve_sequential`].
fn serve_multiplexed(
    poller: &Poller,
    mut listener: FramedListener,
    session: &mut WorkerSession,
) -> io::Result<()> {
    listener.get_ref().set_nonblocking(true)?;
    poller.register(listener.get_ref(), LISTENER_TOKEN, Interest::READABLE)?;
    let mut conns: HashMap<u64, (FramedTcp, String)> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = Vec::new();
    loop {
        poller.poll(&mut events, None)?;
        for ev in &events {
            match ev.token {
                LISTENER_TOKEN => loop {
                    match listener.accept() {
                        Ok((conn, peer)) => {
                            obs::counter!("dist.worker.connections", 1);
                            // Accepted sockets must block: frame reads and
                            // writes run to completion once readiness fires.
                            if conn.stream().set_nonblocking(false).is_err() {
                                continue;
                            }
                            let token = next_token;
                            next_token += 1;
                            if poller
                                .register(conn.stream(), token, Interest::READABLE)
                                .is_ok()
                            {
                                conns.insert(token, (conn, peer.to_string()));
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        // Per-connection accept failures must not kill the
                        // worker.
                        Err(_) => break,
                    }
                },
                token => {
                    let Some((conn, peer)) = conns.get_mut(&token) else {
                        continue;
                    };
                    let step = if ev.readable {
                        let _span = obs::span!("dist.worker.serve", peer = peer.clone());
                        handle_message(conn, session)
                    } else if ev.hangup {
                        Step::Close
                    } else {
                        Step::Served
                    };
                    match step {
                        Step::Served => {}
                        Step::Close => {
                            if let Some((conn, _)) = conns.remove(&token) {
                                let _ = poller.deregister(conn.stream());
                            }
                        }
                        Step::Exit => return Ok(()),
                    }
                }
            }
        }
    }
}

/// Reads and answers one message on `conn`. Blocking: once the socket is
/// readable (or the caller is the sequential loop), the frame is read to
/// completion.
fn handle_message(conn: &mut FramedTcp, session: &mut WorkerSession) -> Step {
    let payload = match conn.read_frame_limited(DIST_MAX_FRAME_LEN) {
        Ok(p) => p,
        // EOF or a broken pipe: the coordinator hung up (normal when
        // it abandoned this connection past a deadline).
        Err(_) => return Step::Close,
    };
    let request = match decode_request(&payload) {
        Ok(r) => r,
        Err(why) => {
            send(conn, &Response::Err { message: why });
            return Step::Served;
        }
    };
    match request {
        Request::Shutdown => Step::Exit,
        Request::Health => {
            obs::counter!("dist.worker.health_probes", 1);
            send(
                conn,
                &Response::HealthAck {
                    ready: session.state.is_some(),
                },
            );
            Step::Served
        }
        Request::Init(init) => {
            let response =
                match build_state(init.period_ps, &init.netlist_text, init.recipe, init.config) {
                    Ok(built) => {
                        let ack = Response::InitAck {
                            endpoints: built.env.design().netlist.endpoints().len(),
                            pool: built.env.pool().len(),
                        };
                        session.state = Some(built);
                        ack
                    }
                    Err(why) => Response::Err { message: why },
                };
            send(conn, &response);
            Step::Served
        }
        Request::Run(run) => {
            let Some(st) = session.state.as_ref() else {
                send(
                    conn,
                    &Response::Err {
                        message: "run before init".into(),
                    },
                );
                return Step::Served;
            };
            // A coordinator that has already given up is not worth
            // blocking on: bound the reply write by its budget.
            if let Some(ms) = run.budget_ms {
                let _ = conn
                    .stream()
                    .set_write_timeout(Some(Duration::from_millis(ms.max(1))));
            }
            // Idempotent re-issue: a retried dispatch replays the
            // cached reply bit-for-bit instead of recomputing.
            if run.req_id != 0 {
                if let Some((id, reply)) = &session.last_reply {
                    if *id == run.req_id {
                        obs::counter!("dist.worker.replayed_replies", 1);
                        let reply = reply.clone();
                        let _ = conn.write_frame_limited(&reply, DIST_MAX_FRAME_LEN);
                        return Step::Served;
                    }
                }
            }
            // Process-level injections (test harness): die, tear the
            // reply frame, or stall past the coordinator's deadline.
            if run.injects.contains(&Inject::Drop) {
                obs::counter!("dist.worker.injected_drops", 1);
                return Step::Exit;
            }
            if run.injects.contains(&Inject::Torn) {
                obs::counter!("dist.worker.injected_torn", 1);
                // A length prefix promising 64 bytes, backed by 8 — raw
                // bytes on the socket, past any chaos wrapping.
                let mut stream = conn.stream();
                let _ = stream.write_all(&64u32.to_be_bytes());
                let _ = stream.write_all(b"truncate");
                let _ = stream.flush();
                return Step::Exit;
            }
            let batch = run_batch(st, &run.params, &run.pairs, run.iteration, &run.injects);
            if let Some(ms) = run.injects.iter().find_map(|i| match i {
                Inject::SleepMs(ms) => Some(*ms),
                _ => None,
            }) {
                obs::counter!("dist.worker.injected_stalls", 1);
                std::thread::sleep(Duration::from_millis(ms));
            }
            let payload = encode_response(&Response::Batch(batch));
            if run.req_id != 0 {
                session.last_reply = Some((run.req_id, payload.clone()));
            }
            let _ = conn.write_frame_limited(&payload, DIST_MAX_FRAME_LEN);
            Step::Served
        }
    }
}

fn send(conn: &mut FramedTcp, response: &Response) {
    let payload = encode_response(response);
    let _ = conn.write_frame_limited(&payload, DIST_MAX_FRAME_LEN);
}

fn build_state(
    period_ps: f32,
    netlist_text: &str,
    recipe: rl_ccd_flow::FlowRecipe,
    config: RlConfig,
) -> Result<WorkerState, String> {
    let _span = obs::span!("dist.worker.init");
    let netlist =
        read_netlist(netlist_text.as_bytes()).map_err(|e| format!("bad netlist text: {e}"))?;
    // Spec and cluster classes are diagnostics only — nothing in the
    // rollout path reads them — so a synthetic spec keeps the wire format
    // down to what determinism actually needs: netlist + period.
    let spec = DesignSpec::new(
        netlist.name().to_string(),
        netlist.cell_count(),
        netlist.library().tech(),
        0,
    );
    let endpoint_class = vec![ClusterClass::Normal; netlist.endpoints().len()];
    let design = GeneratedDesign {
        netlist,
        period_ps,
        spec,
        endpoint_class,
    };
    let env = CcdEnv::new(design, recipe, config.fanout_cap);
    let (model, _initial) = RlCcd::init(config.clone());
    Ok(WorkerState { env, model, config })
}

fn run_batch(
    st: &WorkerState,
    params: &rl_ccd_nn::ParamSet,
    pairs: &[(usize, u64)],
    iteration: usize,
    injects: &[Inject],
) -> BatchResponse {
    let _span = obs::span!(
        "dist.worker.run_batch",
        iteration = iteration as u64,
        pairs = pairs.len() as u64
    );
    // Slot-level injections become a local fault plan, so quarantine runs
    // through the same supervisor a single-process run uses.
    let mut plan = FaultPlan::none();
    for inject in injects {
        plan = match *inject {
            Inject::Panic(slot) => plan.with_worker_panic(iteration, slot),
            Inject::NanReward(slot) => plan.with_nan_reward(iteration, slot),
            Inject::Poison(slot) => plan.with_poisoned_gradient(iteration, slot),
            _ => plan,
        };
    }
    let batch = run_rollouts_assigned(
        &st.model,
        params,
        &st.env,
        pairs,
        iteration,
        st.config.tape_memory_budget,
        &plan,
    );
    let seed_of = |slot: usize| {
        pairs
            .iter()
            .find(|(s, _)| *s == slot)
            .map(|&(_, seed)| seed)
            .unwrap_or_default()
    };
    obs::counter!("dist.worker.rollouts", batch.survivors.len() as u64);
    BatchResponse {
        items: batch
            .survivors
            .into_iter()
            .map(|(slot, r)| RolloutItem {
                slot,
                seed: seed_of(slot),
                steps: r.steps,
                reward: r.reward(),
                selection: r.selected.iter().map(|e| e.index()).collect(),
                grads: r.log_prob_grads,
            })
            .collect(),
        faults: batch.faults,
    }
}
