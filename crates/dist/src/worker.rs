//! The rollout worker: one process serving `RunRollouts` requests.
//!
//! A worker is stateless until the coordinator's [`Request::Init`]
//! arrives; it then rebuilds the *same* environment and model the trainer
//! holds — the design from the netlist text, the model from the config's
//! seed and widths — and keeps them across requests, so the expensive
//! setup (STA, endpoint pool, GNN graphs, features) is paid exactly once
//! per training run, not per iteration.
//!
//! Each [`Request::Run`] then fans its `(slot, seed)` pairs over the
//! shared in-process rollout runner
//! ([`rl_ccd::run_rollouts_assigned`]) — the *identical* code path a
//! single-process run takes, which is what makes distributed training
//! bit-identical to local training.

use crate::protocol::{
    decode_request, encode_response, read_message, write_message, BatchResponse, Inject, Request,
    Response, RolloutItem,
};
use rl_ccd::{run_rollouts_assigned, CcdEnv, FaultPlan, RlCcd, RlConfig};
use rl_ccd_netlist::{read_netlist, ClusterClass, DesignSpec, GeneratedDesign};
use rl_ccd_obs as obs;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// The design, environment and model a worker builds on `Init` and reuses
/// for every subsequent request.
struct WorkerState {
    env: CcdEnv,
    model: RlCcd,
    config: RlConfig,
}

/// Everything a worker keeps across connections: the built environment
/// plus the reply cache that makes retried dispatches idempotent.
#[derive(Default)]
struct WorkerSession {
    state: Option<WorkerState>,
    /// The last identified run's `(req_id, encoded reply)`. A retried
    /// dispatch (same non-zero `req_id`, typically on a fresh connection
    /// after a transport failure) replays the cached bytes instead of
    /// recomputing the batch. One slot is enough: the coordinator issues
    /// at most one in-flight request per worker.
    last_reply: Option<(u64, Vec<u8>)>,
}

/// What a connection handler tells the accept loop to do next.
enum Next {
    /// The peer hung up; accept the next connection.
    Accept,
    /// A `Shutdown` request (or an injected death): stop serving.
    Exit,
}

/// Serves rollout requests on `listener` until a `Shutdown` request or an
/// injected worker death. Blocks the calling thread; run it in a process
/// of its own (`rlccd worker`) or a test thread.
///
/// # Errors
/// Propagates fatal accept-loop I/O errors. Per-connection errors are
/// answered with [`Response::Err`] or end that connection only.
pub fn serve_worker(listener: TcpListener) -> io::Result<()> {
    let mut session = WorkerSession::default();
    loop {
        let (stream, peer) = listener.accept()?;
        obs::counter!("dist.worker.connections", 1);
        let _span = obs::span!("dist.worker.serve", peer = peer.to_string());
        match handle_connection(stream, &mut session) {
            Next::Accept => continue,
            Next::Exit => return Ok(()),
        }
    }
}

fn handle_connection(stream: TcpStream, session: &mut WorkerSession) -> Next {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return Next::Accept,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_message(&mut reader) {
            Ok(p) => p,
            // EOF or a broken pipe: the coordinator hung up (normal when
            // it abandoned this connection past a deadline).
            Err(_) => return Next::Accept,
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(why) => {
                send(&mut writer, &Response::Err { message: why });
                continue;
            }
        };
        match request {
            Request::Shutdown => return Next::Exit,
            Request::Health => {
                obs::counter!("dist.worker.health_probes", 1);
                send(
                    &mut writer,
                    &Response::HealthAck {
                        ready: session.state.is_some(),
                    },
                );
            }
            Request::Init(init) => {
                let response =
                    match build_state(init.period_ps, &init.netlist_text, init.recipe, init.config)
                    {
                        Ok(built) => {
                            let ack = Response::InitAck {
                                endpoints: built.env.design().netlist.endpoints().len(),
                                pool: built.env.pool().len(),
                            };
                            session.state = Some(built);
                            ack
                        }
                        Err(why) => Response::Err { message: why },
                    };
                send(&mut writer, &response);
            }
            Request::Run(run) => {
                let Some(st) = session.state.as_ref() else {
                    send(
                        &mut writer,
                        &Response::Err {
                            message: "run before init".into(),
                        },
                    );
                    continue;
                };
                // A coordinator that has already given up is not worth
                // blocking on: bound the reply write by its budget.
                if let Some(ms) = run.budget_ms {
                    let _ = writer
                        .get_ref()
                        .set_write_timeout(Some(Duration::from_millis(ms.max(1))));
                }
                // Idempotent re-issue: a retried dispatch replays the
                // cached reply bit-for-bit instead of recomputing.
                if run.req_id != 0 {
                    if let Some((id, reply)) = &session.last_reply {
                        if *id == run.req_id {
                            obs::counter!("dist.worker.replayed_replies", 1);
                            let _ = write_message(&mut writer, reply);
                            continue;
                        }
                    }
                }
                // Process-level injections (test harness): die, tear the
                // reply frame, or stall past the coordinator's deadline.
                if run.injects.contains(&Inject::Drop) {
                    obs::counter!("dist.worker.injected_drops", 1);
                    return Next::Exit;
                }
                if run.injects.contains(&Inject::Torn) {
                    obs::counter!("dist.worker.injected_torn", 1);
                    // A length prefix promising 64 bytes, backed by 8.
                    let _ = writer.write_all(&64u32.to_be_bytes());
                    let _ = writer.write_all(b"truncate");
                    let _ = writer.flush();
                    return Next::Exit;
                }
                let batch = run_batch(st, &run.params, &run.pairs, run.iteration, &run.injects);
                if let Some(ms) = run.injects.iter().find_map(|i| match i {
                    Inject::SleepMs(ms) => Some(*ms),
                    _ => None,
                }) {
                    obs::counter!("dist.worker.injected_stalls", 1);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                let payload = encode_response(&Response::Batch(batch));
                if run.req_id != 0 {
                    session.last_reply = Some((run.req_id, payload.clone()));
                }
                let _ = write_message(&mut writer, &payload);
            }
        }
    }
}

fn send(writer: &mut BufWriter<TcpStream>, response: &Response) {
    let payload = encode_response(response);
    let _ = write_message(writer, &payload);
}

fn build_state(
    period_ps: f32,
    netlist_text: &str,
    recipe: rl_ccd_flow::FlowRecipe,
    config: RlConfig,
) -> Result<WorkerState, String> {
    let _span = obs::span!("dist.worker.init");
    let netlist =
        read_netlist(netlist_text.as_bytes()).map_err(|e| format!("bad netlist text: {e}"))?;
    // Spec and cluster classes are diagnostics only — nothing in the
    // rollout path reads them — so a synthetic spec keeps the wire format
    // down to what determinism actually needs: netlist + period.
    let spec = DesignSpec::new(
        netlist.name().to_string(),
        netlist.cell_count(),
        netlist.library().tech(),
        0,
    );
    let endpoint_class = vec![ClusterClass::Normal; netlist.endpoints().len()];
    let design = GeneratedDesign {
        netlist,
        period_ps,
        spec,
        endpoint_class,
    };
    let env = CcdEnv::new(design, recipe, config.fanout_cap);
    let (model, _initial) = RlCcd::init(config.clone());
    Ok(WorkerState { env, model, config })
}

fn run_batch(
    st: &WorkerState,
    params: &rl_ccd_nn::ParamSet,
    pairs: &[(usize, u64)],
    iteration: usize,
    injects: &[Inject],
) -> BatchResponse {
    let _span = obs::span!(
        "dist.worker.run_batch",
        iteration = iteration as u64,
        pairs = pairs.len() as u64
    );
    // Slot-level injections become a local fault plan, so quarantine runs
    // through the same supervisor a single-process run uses.
    let mut plan = FaultPlan::none();
    for inject in injects {
        plan = match *inject {
            Inject::Panic(slot) => plan.with_worker_panic(iteration, slot),
            Inject::NanReward(slot) => plan.with_nan_reward(iteration, slot),
            Inject::Poison(slot) => plan.with_poisoned_gradient(iteration, slot),
            _ => plan,
        };
    }
    let batch = run_rollouts_assigned(
        &st.model,
        params,
        &st.env,
        pairs,
        iteration,
        st.config.tape_memory_budget,
        &plan,
    );
    let seed_of = |slot: usize| {
        pairs
            .iter()
            .find(|(s, _)| *s == slot)
            .map(|&(_, seed)| seed)
            .unwrap_or_default()
    };
    obs::counter!("dist.worker.rollouts", batch.survivors.len() as u64);
    BatchResponse {
        items: batch
            .survivors
            .into_iter()
            .map(|(slot, r)| RolloutItem {
                slot,
                seed: seed_of(slot),
                steps: r.steps,
                reward: r.reward(),
                selection: r.selected.iter().map(|e| e.index()).collect(),
                grads: r.log_prob_grads,
            })
            .collect(),
        faults: batch.faults,
    }
}
