//! Distributed rollout execution for RL-CCD training.
//!
//! REINFORCE spends essentially all of its wall-clock inside rollout flow
//! evaluations, and rollouts within an iteration are embarrassingly
//! parallel — the paper runs 8 concurrent rollout processes. This crate
//! scales that axis past one machine: a **coordinator** (the trainer,
//! through [`DistExecutor`]) shards each iteration's `(slot, seed)` pairs
//! across **worker** processes ([`serve_worker`]) over the framed TCP
//! protocol in [`protocol`], and aggregates rewards and gradients back.
//!
//! The headline property is *bit-identical determinism*: a distributed
//! run produces exactly the training trajectory of a single-process run —
//! same parameters, same champion, same checkpoints — for any worker
//! count, any timing, and any number of worker failures handled by
//! re-queuing, because rollout values are pure functions of
//! `(params, env, seed)` and the trainer reduces gradients in slot order.
//! See [`coordinator`] for the argument and the failure model.
//!
//! ```no_run
//! use rl_ccd::Session;
//! use rl_ccd_dist::DistExecutor;
//! use rl_ccd_netlist::{generate, DesignSpec, TechNode};
//!
//! let design = generate(&DesignSpec::new("demo", 800, TechNode::N7, 1));
//! let executor = DistExecutor::connect(&["10.0.0.2:7401", "10.0.0.3:7401"])?;
//! let session = Session::builder()
//!     .design(design)
//!     .executor(Box::new(executor))
//!     .build()?;
//! let outcome = session.train()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use coordinator::{DistExecutor, NetStats};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, read_message, write_message,
    BatchResponse, InitRequest, Inject, Request, Response, RolloutItem, RunRequest,
    DIST_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use worker::{serve_worker, serve_worker_with, WorkerNet};
