//! The coordinator side: [`DistExecutor`], a [`RolloutExecutor`] that
//! shards each iteration's `(slot, seed)` pairs across worker processes.
//!
//! # Determinism
//!
//! Each rollout's value is a pure function of `(params, env, seed)`, and
//! workers run the identical rollout code a single-process trainer runs.
//! The coordinator therefore only has to guarantee *coverage*, not
//! placement: every pair must be served by *some* live worker, and pairs
//! whose worker fails — dies mid-batch, stalls past the deadline, or
//! writes a torn frame — are re-queued onto the survivors. The trainer
//! reduces gradients in slot order, so which worker served a pair, when it
//! replied, and how often it was retried cannot change the training
//! trajectory: distributed runs are bit-identical to single-process runs
//! for any worker count.
//!
//! # Failure model
//!
//! A failed roundtrip is first *retried*: the coordinator backs off
//! (seeded exponential backoff, [`RetryPolicy`]), reconnects to the same
//! worker, and re-issues the identical request. Re-issue is safe because
//! requests carry a coordinator-unique `req_id` and workers replay the
//! cached reply for a repeated id — and because rollouts are pure, even a
//! recomputed reply is bit-identical. Only when retries are exhausted (or
//! the reconnect itself fails) is the worker quarantined for the rest of
//! the run and its pairs re-queued onto the survivors.
//!
//! Transport failures recovered by retry or re-queuing are *not* training
//! faults — they leave no [`RolloutFault`] record, only observability
//! counters ([`NetStats`]) — because a single-process run of the same
//! seeds has no such record either, and fault records are part of the
//! checkpointed state. Only a pair that no live worker can serve becomes
//! a [`FaultKind::WorkerLost`] record; if that drops the batch below the
//! quorum, the trainer fails with `TrainError::QuorumLost` exactly as it
//! does when local rollouts are quarantined.
//!
//! Every socket operation runs under a read *and* write timeout derived
//! from the configured deadline, so a silent or stalled peer can never
//! hang the trainer, and health probes ([`DistExecutor::probe`]) exclude
//! unreachable workers before the expensive init broadcast.
//!
//! # Transport
//!
//! Worker connections are [`FramedTcp`] — the unified
//! [`rl_ccd_wire::Transport`] stack shared with `serve::client` and the
//! worker's accept path — so chaos wrapping and reconnect frame-numbering
//! live in one place. Scatter-gather runs on the [`Poller`] reactor where
//! available: one thread multiplexes every in-flight worker's readiness
//! plus its deadline and retry-backoff timers (a [`TimerWheel`]), while
//! frame operations stay blocking for bit-exact chaos behavior. Platforms
//! without epoll fall back to the thread-per-dispatch scatter.

use crate::protocol::{
    decode_response, encode_request, InitRequest, Inject, Request, Response, RunRequest,
    DIST_MAX_FRAME_LEN,
};
use rl_ccd::{
    ExecutedRollout, ExecutorBatch, FaultKind, FaultPlan, InjectedFault, RolloutExecutor,
    RolloutFault, RolloutRequest,
};
use rl_ccd_netlist::{write_netlist, EndpointId};
use rl_ccd_obs as obs;
use rl_ccd_wire::reactor::Interest;
use rl_ccd_wire::{
    Endpoint, FramedTcp, NetFault, NetFaultPlan, Poller, RetryPolicy, TimerId, TimerWheel,
    Transport,
};
use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One worker process as the coordinator sees it.
#[derive(Debug)]
struct Worker {
    addr: String,
    /// `None` once the worker is quarantined (dead or abandoned).
    conn: Option<FramedTcp>,
}

/// Transport-layer failure counters for one executor: what the network
/// did to the run, independent of training faults. Exposed for bench and
/// CLI reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Roundtrips re-issued after a transport failure.
    pub retries: u64,
    /// Fresh connections dialed to replace a suspect one.
    pub reconnects: u64,
    /// Pairs re-queued onto surviving workers after retries ran out.
    pub requeued: u64,
    /// Workers quarantined for the rest of the run.
    pub quarantined: u64,
    /// Health probes that went unanswered.
    pub probes_failed: u64,
}

/// A [`RolloutExecutor`] that dispatches rollouts to worker processes over
/// the `rl-ccd-dist v1` protocol.
#[derive(Debug)]
pub struct DistExecutor {
    workers: Vec<Worker>,
    deadline: Duration,
    init_deadline: Duration,
    initialized: bool,
    retry: RetryPolicy,
    next_req_id: u64,
    stats: NetStats,
}

/// What one dispatch hands back: the worker index, its chunk (for
/// re-queuing), the surviving connection (`None` = unusable), the
/// decoded result, and the retry counters the exchange burned.
struct Exchange {
    widx: usize,
    chunk: Vec<(usize, u64)>,
    conn: Option<FramedTcp>,
    result: Result<Response, String>,
    retries: u64,
    reconnects: u64,
}

/// One worker's slice of a dispatch round, ready to scatter: the encoded
/// request (shared, not cloned per worker), the connection to send it on,
/// and any one-shot wire faults the training plan addressed to this
/// connection.
struct Dispatch {
    widx: usize,
    chunk: Vec<(usize, u64)>,
    conn: FramedTcp,
    payload: Arc<Vec<u8>>,
    wire: Vec<NetFault>,
}

impl DistExecutor {
    /// Connects to every worker address (e.g. `"127.0.0.1:7401"`).
    /// Workers are initialized lazily on the first batch, when the design
    /// is known.
    ///
    /// # Errors
    /// `InvalidInput` when `addrs` is empty; otherwise the first
    /// connection failure.
    pub fn connect<S: AsRef<str>>(addrs: &[S]) -> io::Result<Self> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "DistExecutor needs at least one worker address",
            ));
        }
        let mut workers = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let conn = Endpoint::resolve(addr.as_ref())?.connect(None)?;
            workers.push(Worker {
                addr: addr.as_ref().to_string(),
                conn: Some(conn),
            });
        }
        Ok(Self {
            workers,
            deadline: Duration::from_secs(120),
            init_deadline: Duration::from_secs(600),
            initialized: false,
            retry: RetryPolicy::seeded(0),
            next_req_id: 0,
            stats: NetStats::default(),
        })
    }

    /// Per-request deadline: a worker that has not replied within it is
    /// retried, then quarantined and its pairs re-queued (default 120 s).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline.max(Duration::from_millis(1));
        self
    }

    /// Deadline for the one-time worker initialization, which rebuilds the
    /// environment from the netlist (default 600 s).
    pub fn with_init_deadline(mut self, deadline: Duration) -> Self {
        self.init_deadline = deadline.max(Duration::from_millis(1));
        self
    }

    /// Replaces the retry policy (default: [`RetryPolicy::seeded`] with
    /// seed 0). [`RetryPolicy::none`] restores quarantine-on-first-failure.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a chaos plan to every worker connection; worker index is
    /// the plan's connection id. Reconnects keep frame numbering, so plan
    /// coordinates stay stable across retries.
    #[must_use]
    pub fn with_chaos(mut self, plan: Arc<NetFaultPlan>) -> Self {
        for (widx, worker) in self.workers.iter_mut().enumerate() {
            if let Some(conn) = worker.conn.as_mut() {
                conn.rewire_chaos(Arc::clone(&plan), widx as u64);
            }
        }
        self
    }

    /// Workers still eligible for dispatch.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.conn.is_some()).count()
    }

    /// Transport-layer failure counters accumulated so far.
    pub fn net_stats(&self) -> NetStats {
        self.stats
    }

    /// Probes every live worker with [`Request::Health`] and quarantines
    /// the ones that do not answer, so the expensive init broadcast (and
    /// everything after it) only targets reachable workers. Returns the
    /// live count after the probe. A `ready=false` answer is still alive:
    /// workers are not initialized until the first batch.
    pub fn probe(&mut self) -> usize {
        let payload = encode_request(&Request::Health);
        // Probes answer inline from the accept loop; a worker that needs
        // more than a few seconds for that is not healthy.
        let deadline = self.deadline.min(Duration::from_secs(5));
        for worker in &mut self.workers {
            let Some(mut conn) = worker.conn.take() else {
                continue;
            };
            match roundtrip(&mut conn, &payload, deadline) {
                Ok(Response::HealthAck { .. }) => worker.conn = Some(conn),
                Ok(_) | Err(_) => {
                    self.stats.probes_failed += 1;
                    self.stats.quarantined += 1;
                    obs::counter!("dist.probe_failed", 1);
                    obs::counter!("dist.workers_dead", 1);
                    eprintln!(
                        "dist: worker {} failed its health probe, quarantined",
                        worker.addr
                    );
                }
            }
        }
        self.live_workers()
    }

    /// Sends `Shutdown` to every live worker and drops the connections.
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        let payload = encode_request(&Request::Shutdown);
        for worker in &mut self.workers {
            if let Some(conn) = worker.conn.take() {
                // Bypass any chaos plan: shutdown is best-effort cleanup,
                // written raw past the framed transport.
                let mut stream = conn.stream();
                let _ = crate::protocol::write_message(&mut stream, &payload);
            }
        }
    }

    /// Sends `Init` to every live worker in parallel; quarantines any that
    /// fail or disagree on the endpoint pool.
    fn init_workers(&mut self, req: &RolloutRequest<'_>) {
        let _span = obs::span!("dist.init", workers = self.live_workers() as u64);
        // Cull unreachable workers before shipping them a full netlist.
        self.probe();
        let design = req.env.design();
        let mut netlist_bytes = Vec::new();
        write_netlist(&design.netlist, &mut netlist_bytes).expect("in-memory write");
        let payload = Arc::new(encode_request(&Request::Init(InitRequest {
            period_ps: design.period_ps,
            recipe: req.env.recipe().clone(),
            config: req.config.clone(),
            netlist_text: String::from_utf8(netlist_bytes).expect("netlist text is UTF-8"),
        })));
        let expected_pool = req.env.pool().len();
        let round: Vec<Dispatch> = self
            .workers
            .iter_mut()
            .enumerate()
            .filter_map(|(i, w)| {
                w.conn.take().map(|conn| Dispatch {
                    widx: i,
                    chunk: Vec::new(),
                    conn,
                    payload: Arc::clone(&payload),
                    wire: Vec::new(),
                })
            })
            .collect();
        let outcomes = scatter(round, self.init_deadline, &self.retry);
        for out in outcomes {
            self.note_recovery(&out);
            match out.result {
                Ok(Response::InitAck { pool, .. }) if pool == expected_pool => {
                    self.workers[out.widx].conn = out.conn;
                }
                Ok(Response::InitAck { pool, .. }) => {
                    self.quarantine_note(
                        out.widx,
                        &format!("rebuilt a different design (pool {pool} vs {expected_pool})"),
                    );
                }
                Ok(Response::Err { message }) => {
                    self.quarantine_note(out.widx, &format!("failed init: {message}"));
                }
                Ok(_) => {
                    self.quarantine_note(out.widx, "answered init with the wrong message");
                }
                Err(why) => {
                    self.quarantine_note(out.widx, &format!("unreachable during init: {why}"));
                }
            }
        }
        self.initialized = true;
    }

    /// Folds one exchange's retry/reconnect tallies into the stats and the
    /// observability registry — here, on the coordinator thread, because
    /// the dispatch threads the exchange ran on carry no recorder.
    fn note_recovery(&mut self, out: &Exchange) {
        self.stats.retries += out.retries;
        self.stats.reconnects += out.reconnects;
        if out.retries > 0 {
            obs::counter!("dist.retries", out.retries);
        }
        if out.reconnects > 0 {
            obs::counter!("dist.reconnects", out.reconnects);
        }
    }

    fn quarantine_note(&mut self, widx: usize, why: &str) {
        self.stats.quarantined += 1;
        obs::counter!("dist.workers_dead", 1);
        eprintln!(
            "dist: worker {} {why}, quarantined",
            self.workers[widx].addr
        );
    }

    /// The injections a run request to worker-process `widx` must carry:
    /// process-level faults addressed to that process, plus slot-level
    /// faults for the slots in its chunk.
    fn injects_for(
        plan: &FaultPlan,
        iteration: usize,
        widx: usize,
        chunk: &[(usize, u64)],
        deadline: Duration,
    ) -> Vec<Inject> {
        let mut injects = Vec::new();
        if plan.injects(iteration, widx, InjectedFault::WorkerDrop) {
            injects.push(Inject::Drop);
        }
        if plan.injects(iteration, widx, InjectedFault::TornFrame) {
            injects.push(Inject::Torn);
        }
        if plan.injects(iteration, widx, InjectedFault::SlowWorker) {
            // Stall well past the deadline so the coordinator definitely
            // abandons the connection first.
            let ms = deadline.as_millis() as u64 * 3 + 50;
            injects.push(Inject::SleepMs(ms));
        }
        for &(slot, _) in chunk {
            if plan.injects(iteration, slot, InjectedFault::WorkerPanic) {
                injects.push(Inject::Panic(slot));
            }
            if plan.injects(iteration, slot, InjectedFault::NanReward) {
                injects.push(Inject::NanReward(slot));
            }
            if plan.injects(iteration, slot, InjectedFault::PoisonedGradient) {
                injects.push(Inject::Poison(slot));
            }
        }
        injects
    }

    /// Wire-level faults the training [`FaultPlan`] addresses to this
    /// worker's connection, translated into one-shot transport injections.
    fn wire_injects_for(plan: &FaultPlan, iteration: usize, widx: usize) -> Vec<NetFault> {
        plan.net_injects(iteration, widx)
            .into_iter()
            .map(|(fault, arg)| match fault {
                InjectedFault::NetDelay => NetFault::Delay(arg),
                InjectedFault::NetReset => NetFault::Reset,
                InjectedFault::NetStall => NetFault::Stall(arg),
                InjectedFault::NetTorn => NetFault::Torn,
                other => unreachable!("net_injects returned non-net fault {other:?}"),
            })
            .collect()
    }
}

impl RolloutExecutor for DistExecutor {
    fn run_batch(&mut self, req: &RolloutRequest<'_>) -> ExecutorBatch {
        if !self.initialized {
            self.init_workers(req);
        }
        let _span = obs::span!(
            "dist.run_batch",
            iteration = req.iteration as u64,
            pairs = req.pairs.len() as u64
        );
        let mut batch = ExecutorBatch::default();
        let mut pending: Vec<(usize, u64)> = req.pairs.to_vec();
        while !pending.is_empty() {
            pending.sort_by_key(|&(slot, _)| slot);
            let live: Vec<usize> = self
                .workers
                .iter()
                .enumerate()
                .filter_map(|(i, w)| w.conn.is_some().then_some(i))
                .collect();
            obs::gauge!("dist.live_workers", live.len() as f64);
            if live.is_empty() {
                obs::counter!("dist.worker_lost", pending.len() as u64);
                for (slot, seed) in pending.drain(..) {
                    batch.faults.push(RolloutFault {
                        iteration: req.iteration,
                        worker: slot,
                        seed,
                        kind: FaultKind::WorkerLost,
                        detail: "no live worker left to serve the rollout".into(),
                    });
                }
                break;
            }
            // Contiguous chunks over the live workers, sizes within one of
            // each other — a pure function of (pending, live set).
            let per = pending.len().div_ceil(live.len());
            let mut round: Vec<Dispatch> = Vec::new();
            for (chunk, &widx) in pending.chunks(per).zip(&live) {
                let injects =
                    Self::injects_for(req.plan, req.iteration, widx, chunk, self.deadline);
                self.next_req_id += 1;
                let payload = Arc::new(encode_request(&Request::Run(RunRequest {
                    iteration: req.iteration,
                    req_id: self.next_req_id,
                    budget_ms: Some(self.deadline.as_millis().max(1) as u64),
                    pairs: chunk.to_vec(),
                    injects,
                    params: req.params.clone(),
                })));
                let wire = Self::wire_injects_for(req.plan, req.iteration, widx);
                let Some(conn) = self.workers[widx].conn.take() else {
                    continue;
                };
                round.push(Dispatch {
                    widx,
                    chunk: chunk.to_vec(),
                    conn,
                    payload,
                    wire,
                });
            }
            pending.clear();
            let outcomes = scatter(round, self.deadline, &self.retry);
            for out in outcomes {
                self.note_recovery(&out);
                match out.result {
                    Ok(Response::Batch(b)) => {
                        obs::counter!("dist.rollouts", b.items.len() as u64);
                        self.workers[out.widx].conn = out.conn;
                        batch
                            .rollouts
                            .extend(b.items.into_iter().map(|item| ExecutedRollout {
                                slot: item.slot,
                                seed: item.seed,
                                selected:
                                    item.selection.iter().map(|&i| EndpointId::new(i)).collect(),
                                steps: item.steps,
                                reward: item.reward,
                                log_prob_grads: item.grads,
                            }));
                        batch.faults.extend(b.faults);
                    }
                    Ok(Response::Err { message }) => {
                        self.requeue_note(
                            out.widx,
                            &out.chunk,
                            &format!("rejected the batch: {message}"),
                        );
                        pending.extend(out.chunk);
                    }
                    Ok(_) => {
                        self.requeue_note(out.widx, &out.chunk, "answered with the wrong message");
                        pending.extend(out.chunk);
                    }
                    Err(why) => {
                        self.requeue_note(
                            out.widx,
                            &out.chunk,
                            &format!("failed mid-batch ({why})"),
                        );
                        pending.extend(out.chunk);
                    }
                }
            }
        }
        // Slot order, so fault records land in the checkpoint in the same
        // order a single-process run writes them.
        batch.rollouts.sort_by_key(|r| r.slot);
        batch.faults.sort_by_key(|f| (f.worker, f.seed));
        batch
    }
}

impl DistExecutor {
    fn requeue_note(&mut self, widx: usize, chunk: &[(usize, u64)], why: &str) {
        self.stats.quarantined += 1;
        self.stats.requeued += chunk.len() as u64;
        obs::counter!("dist.workers_dead", 1);
        obs::counter!("dist.requeued", chunk.len() as u64);
        eprintln!(
            "dist: worker {} {why}; re-queuing {} rollouts",
            self.workers[widx].addr,
            chunk.len()
        );
    }
}

impl Drop for DistExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Scatters one dispatch round and gathers its outcomes. On Linux the
/// round runs on the reactor: one thread multiplexes every worker's
/// readiness and timers, so a stalled worker costs nothing while the
/// others proceed. Where epoll is unavailable (or fails to come up) the
/// round falls back to one thread per dispatch running the blocking
/// [`exchange`] loop — the two paths are bit-identical in outcome because
/// the frame operations themselves stay blocking in both.
fn scatter(round: Vec<Dispatch>, deadline: Duration, retry: &RetryPolicy) -> Vec<Exchange> {
    if round.is_empty() {
        return Vec::new();
    }
    match Poller::new() {
        Ok(poller) => scatter_reactor(&poller, round, deadline, retry),
        Err(_) => scatter_threads(round, deadline, retry),
    }
}

/// Pre-reactor scatter: one thread per dispatch, each running the
/// blocking retry loop to completion.
fn scatter_threads(round: Vec<Dispatch>, deadline: Duration, retry: &RetryPolicy) -> Vec<Exchange> {
    std::thread::scope(|s| {
        let handles: Vec<_> = round
            .into_iter()
            .map(|mut d| {
                s.spawn(move || {
                    for fault in d.wire.drain(..) {
                        d.conn.inject_once(fault);
                    }
                    let mut out = exchange(d.widx, d.conn, &d.payload, deadline, retry);
                    out.chunk = d.chunk;
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dispatch thread"))
            .collect()
    })
}

/// Per-dispatch state machine for the reactor scatter. The flight is
/// always in exactly one of three states: *awaiting* a reply
/// (`registered`, deadline timer pending), *backing off* before a retry
/// (`why` set, backoff timer pending), or finished (`done`).
struct Flight {
    /// `None` once moved into the outcome or dropped for quarantine.
    conn: Option<FramedTcp>,
    payload: Arc<Vec<u8>>,
    attempt: u32,
    /// Pending wheel timer: the response deadline while `registered`,
    /// otherwise the retry backoff.
    timer: Option<TimerId>,
    /// Readability interest currently registered with the poller.
    registered: bool,
    /// The failure that scheduled the pending backoff.
    why: Option<String>,
    out: Exchange,
    done: bool,
}

/// Reactor scatter: sends every dispatch, then multiplexes readiness and
/// timers until every flight lands. Frame operations stay blocking —
/// identical chaos behavior to the threaded path — the reactor only
/// decides *when* to issue them, and serves retry backoffs from the
/// timer wheel instead of parking a sleeping thread per worker.
fn scatter_reactor(
    poller: &Poller,
    round: Vec<Dispatch>,
    deadline: Duration,
    retry: &RetryPolicy,
) -> Vec<Exchange> {
    let mut wheel = TimerWheel::with_ms_ticks();
    let mut flights: Vec<Flight> = round
        .into_iter()
        .map(|mut d| {
            for fault in d.wire.drain(..) {
                d.conn.inject_once(fault);
            }
            Flight {
                conn: Some(d.conn),
                payload: d.payload,
                attempt: 0,
                timer: None,
                registered: false,
                why: None,
                out: Exchange {
                    widx: d.widx,
                    chunk: d.chunk,
                    conn: None,
                    result: Err("unreachable".into()),
                    retries: 0,
                    reconnects: 0,
                },
                done: false,
            }
        })
        .collect();
    for (i, f) in flights.iter_mut().enumerate() {
        send_flight(poller, &mut wheel, f, i, deadline, retry);
    }
    let mut events = Vec::new();
    let mut fired = Vec::new();
    while flights.iter().any(|f| !f.done) {
        let timeout = wheel.next_timeout(Instant::now());
        if poller.poll(&mut events, timeout).is_err() {
            // The reactor broke mid-round; land every remaining flight on
            // the blocking path rather than losing the round. Terminates
            // because every read honors the socket deadline and attempts
            // are bounded.
            for (i, f) in flights.iter_mut().enumerate() {
                finish_blocking(poller, &mut wheel, f, i, deadline, retry);
            }
            break;
        }
        for ev in &events {
            let i = ev.token as usize;
            let Some(f) = flights.get_mut(i) else {
                continue;
            };
            if f.done || !f.registered || !(ev.readable || ev.hangup) {
                continue;
            }
            finish_read(poller, &mut wheel, f, i, retry, None);
        }
        fired.clear();
        wheel.poll_expired(Instant::now(), &mut fired);
        for &key in &fired {
            let i = key as usize;
            let Some(f) = flights.get_mut(i) else {
                continue;
            };
            if f.done {
                continue;
            }
            f.timer = None;
            if f.registered {
                // Deadline passed with no readiness. Force the read with a
                // sliver of a timeout so the failure carries the same
                // timed-out receive error the blocking path reports.
                finish_read(
                    poller,
                    &mut wheel,
                    f,
                    i,
                    retry,
                    Some(Duration::from_millis(1)),
                );
            } else if f.why.is_some() {
                reconnect_flight(poller, &mut wheel, f, i, deadline, retry);
            }
        }
    }
    flights.into_iter().map(|f| f.out).collect()
}

/// One attempt's blocking send; on success the flight parks awaiting
/// readability with its response deadline on the wheel.
fn send_flight(
    poller: &Poller,
    wheel: &mut TimerWheel,
    f: &mut Flight,
    i: usize,
    deadline: Duration,
    retry: &RetryPolicy,
) {
    f.attempt += 1;
    let mut why = None;
    {
        let conn = f.conn.as_mut().expect("flight holds a connection");
        let stream = conn.stream();
        if let Err(e) = stream.set_read_timeout(Some(deadline)) {
            why = Some(format!("set read deadline: {e}"));
        } else if let Err(e) = stream.set_write_timeout(Some(deadline)) {
            why = Some(format!("set write deadline: {e}"));
        } else {
            let payload = Arc::clone(&f.payload);
            if let Err(e) = conn.write_frame_limited(&payload, DIST_MAX_FRAME_LEN) {
                why = Some(format!("send: {e}"));
            }
        }
    }
    if let Some(why) = why {
        fail_flight(wheel, f, i, why, retry);
        return;
    }
    let conn = f.conn.as_ref().expect("flight holds a connection");
    match poller.register(conn.stream(), i as u64, Interest::READABLE) {
        Ok(()) => {
            f.registered = true;
            f.timer = Some(wheel.schedule_after(deadline, i as u64));
        }
        // Can't multiplex this socket; complete the read right here — it
        // honors the read deadline set above.
        Err(_) => finish_read(poller, wheel, f, i, retry, None),
    }
}

/// Completes an awaiting flight: cancel the deadline, drop the
/// registration, and run the blocking read + decode. `nudge` overrides
/// the read timeout for the deadline-expiry path.
fn finish_read(
    poller: &Poller,
    wheel: &mut TimerWheel,
    f: &mut Flight,
    i: usize,
    retry: &RetryPolicy,
    nudge: Option<Duration>,
) {
    if let Some(id) = f.timer.take() {
        wheel.cancel(id);
    }
    let conn = f.conn.as_mut().expect("flight holds a connection");
    if f.registered {
        let _ = poller.deregister(conn.stream());
        f.registered = false;
    }
    if let Some(t) = nudge {
        let _ = conn.stream().set_read_timeout(Some(t));
    }
    let res = conn
        .read_frame_limited(DIST_MAX_FRAME_LEN)
        .map_err(|e| format!("receive: {e}"))
        .and_then(|reply| decode_response(&reply).map_err(|e| format!("decode: {e}")));
    match res {
        Ok(resp) => {
            f.out.conn = f.conn.take();
            f.out.result = Ok(resp);
            f.done = true;
        }
        Err(why) => fail_flight(wheel, f, i, why, retry),
    }
}

/// Books one failed attempt: exhausted → the flight lands in error and
/// the connection is dropped (the caller quarantines); otherwise the
/// retry backoff goes on the wheel and the reconnect waits for it.
fn fail_flight(wheel: &mut TimerWheel, f: &mut Flight, i: usize, why: String, retry: &RetryPolicy) {
    if f.attempt >= retry.max_attempts {
        f.out.result = Err(why);
        f.conn = None;
        f.done = true;
        return;
    }
    f.why = Some(why);
    f.timer = Some(wheel.schedule_after(retry.backoff(f.out.widx as u64, f.attempt), i as u64));
}

/// The backoff fired: re-dial the endpoint (frame numbering and chaos
/// wiring resume, so plan coordinates stay stable) and re-issue the
/// identical payload — exactly the blocking [`exchange`] loop's recovery.
fn reconnect_flight(
    poller: &Poller,
    wheel: &mut TimerWheel,
    f: &mut Flight,
    i: usize,
    deadline: Duration,
    retry: &RetryPolicy,
) {
    let why = f.why.take().unwrap_or_default();
    let conn = f.conn.as_mut().expect("flight holds a connection");
    match conn.reconnect(None) {
        Ok(()) => {
            f.out.reconnects += 1;
            f.out.retries += 1;
            send_flight(poller, wheel, f, i, deadline, retry);
        }
        Err(e) => {
            f.out.result = Err(format!("{why}; reconnect: {e}"));
            f.conn = None;
            f.done = true;
        }
    }
}

/// Drives one flight to completion without the reactor, for the
/// poll-failure path: awaiting reads block under the socket deadline,
/// pending backoffs become thread sleeps.
fn finish_blocking(
    poller: &Poller,
    wheel: &mut TimerWheel,
    f: &mut Flight,
    i: usize,
    deadline: Duration,
    retry: &RetryPolicy,
) {
    while !f.done {
        if f.registered {
            finish_read(poller, wheel, f, i, retry, None);
        } else if f.why.is_some() {
            if let Some(id) = f.timer.take() {
                wheel.cancel(id);
            }
            std::thread::sleep(retry.backoff(f.out.widx as u64, f.attempt));
            reconnect_flight(poller, wheel, f, i, deadline, retry);
        } else {
            send_flight(poller, wheel, f, i, deadline, retry);
        }
    }
}

/// One request with retry-and-reconnect: roundtrip, and on a transport
/// failure back off, dial a fresh connection to the same worker (frame
/// numbering resumes, so chaos-plan coordinates stay stable), and re-issue
/// the identical payload. Gives up — connection dropped, caller
/// quarantines — when attempts run out or the reconnect itself fails.
fn exchange(
    widx: usize,
    mut conn: FramedTcp,
    payload: &[u8],
    deadline: Duration,
    retry: &RetryPolicy,
) -> Exchange {
    let mut out = Exchange {
        widx,
        chunk: Vec::new(),
        conn: None,
        result: Err("unreachable".into()),
        retries: 0,
        reconnects: 0,
    };
    let mut attempt: u32 = 0;
    loop {
        attempt += 1;
        match roundtrip(&mut conn, payload, deadline) {
            Ok(resp) => {
                out.conn = Some(conn);
                out.result = Ok(resp);
                return out;
            }
            Err(why) => {
                if attempt >= retry.max_attempts {
                    out.result = Err(why);
                    return out;
                }
                std::thread::sleep(retry.backoff(widx as u64, attempt));
                // The old connection is suspect; re-issue on a fresh one.
                match conn.reconnect(None) {
                    Ok(()) => {
                        out.reconnects += 1;
                        out.retries += 1;
                        // No obs counters here: exchange runs on dispatch
                        // threads with no recorder attached. The caller
                        // emits them from `out` on the recording thread.
                    }
                    Err(e) => {
                        out.result = Err(format!("{why}; reconnect: {e}"));
                        return out;
                    }
                }
            }
        }
    }
}

/// One request/response exchange under read *and* write deadlines. Any
/// failure — write error, timeout, torn frame, decode error — is returned
/// as a description; the caller retries or quarantines the worker.
fn roundtrip(conn: &mut FramedTcp, payload: &[u8], deadline: Duration) -> Result<Response, String> {
    let stream = conn.stream();
    stream
        .set_read_timeout(Some(deadline))
        .map_err(|e| format!("set read deadline: {e}"))?;
    stream
        .set_write_timeout(Some(deadline))
        .map_err(|e| format!("set write deadline: {e}"))?;
    conn.write_frame_limited(payload, DIST_MAX_FRAME_LEN)
        .map_err(|e| format!("send: {e}"))?;
    let reply = conn
        .read_frame_limited(DIST_MAX_FRAME_LEN)
        .map_err(|e| format!("receive: {e}"))?;
    decode_response(&reply).map_err(|e| format!("decode: {e}"))
}

impl fmt::Display for DistExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DistExecutor({} workers, {} live)",
            self.workers.len(),
            self.live_workers()
        )
    }
}
