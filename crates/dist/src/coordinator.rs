//! The coordinator side: [`DistExecutor`], a [`RolloutExecutor`] that
//! shards each iteration's `(slot, seed)` pairs across worker processes.
//!
//! # Determinism
//!
//! Each rollout's value is a pure function of `(params, env, seed)`, and
//! workers run the identical rollout code a single-process trainer runs.
//! The coordinator therefore only has to guarantee *coverage*, not
//! placement: every pair must be served by *some* live worker, and pairs
//! whose worker fails — dies mid-batch, stalls past the deadline, or
//! writes a torn frame — are re-queued onto the survivors. The trainer
//! reduces gradients in slot order, so which worker served a pair, when it
//! replied, and how often it was retried cannot change the training
//! trajectory: distributed runs are bit-identical to single-process runs
//! for any worker count.
//!
//! # Failure model
//!
//! A worker that fails a roundtrip is quarantined for the rest of the run
//! (its connection is abandoned; a late reply lands on a dead socket).
//! Transport failures that were recovered by re-queuing are *not* training
//! faults — they leave no [`RolloutFault`] record, only observability
//! counters — because a single-process run of the same seeds has no such
//! record either, and fault records are part of the checkpointed state.
//! Only a pair that no live worker can serve becomes a
//! [`FaultKind::WorkerLost`] record; if that drops the batch below the
//! quorum, the trainer fails with `TrainError::QuorumLost` exactly as it
//! does when local rollouts are quarantined.

use crate::protocol::{
    decode_response, encode_request, read_message, write_message, InitRequest, Inject, Request,
    Response, RunRequest,
};
use rl_ccd::{
    ExecutedRollout, ExecutorBatch, FaultKind, FaultPlan, InjectedFault, RolloutExecutor,
    RolloutFault, RolloutRequest,
};
use rl_ccd_netlist::{write_netlist, EndpointId};
use rl_ccd_obs as obs;
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// One in-flight dispatch: the worker index, its assigned pairs (kept for
/// re-queuing on failure), the taken connection, and the encoded request.
type Dispatch = (usize, Vec<(usize, u64)>, TcpStream, Vec<u8>);

/// One worker process as the coordinator sees it.
#[derive(Debug)]
struct Worker {
    addr: String,
    /// `None` once the worker is quarantined (dead or abandoned).
    conn: Option<TcpStream>,
}

/// A [`RolloutExecutor`] that dispatches rollouts to worker processes over
/// the `rl-ccd-dist v1` protocol.
#[derive(Debug)]
pub struct DistExecutor {
    workers: Vec<Worker>,
    deadline: Duration,
    init_deadline: Duration,
    initialized: bool,
}

impl DistExecutor {
    /// Connects to every worker address (e.g. `"127.0.0.1:7401"`).
    /// Workers are initialized lazily on the first batch, when the design
    /// is known.
    ///
    /// # Errors
    /// `InvalidInput` when `addrs` is empty; otherwise the first
    /// connection failure.
    pub fn connect<S: AsRef<str>>(addrs: &[S]) -> io::Result<Self> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "DistExecutor needs at least one worker address",
            ));
        }
        let mut workers = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let conn = TcpStream::connect(addr.as_ref())?;
            conn.set_nodelay(true).ok();
            workers.push(Worker {
                addr: addr.as_ref().to_string(),
                conn: Some(conn),
            });
        }
        Ok(Self {
            workers,
            deadline: Duration::from_secs(120),
            init_deadline: Duration::from_secs(600),
            initialized: false,
        })
    }

    /// Per-request deadline: a worker that has not replied within it is
    /// quarantined and its pairs re-queued (default 120 s).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline.max(Duration::from_millis(1));
        self
    }

    /// Deadline for the one-time worker initialization, which rebuilds the
    /// environment from the netlist (default 600 s).
    pub fn with_init_deadline(mut self, deadline: Duration) -> Self {
        self.init_deadline = deadline.max(Duration::from_millis(1));
        self
    }

    /// Workers still eligible for dispatch.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.conn.is_some()).count()
    }

    /// Sends `Shutdown` to every live worker and drops the connections.
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        let payload = encode_request(&Request::Shutdown);
        for worker in &mut self.workers {
            if let Some(mut conn) = worker.conn.take() {
                let _ = write_message(&mut conn, &payload);
            }
        }
    }

    /// Sends `Init` to every live worker in parallel; quarantines any that
    /// fail or disagree on the endpoint pool.
    fn init_workers(&mut self, req: &RolloutRequest<'_>) {
        let _span = obs::span!("dist.init", workers = self.live_workers() as u64);
        let design = req.env.design();
        let mut netlist_bytes = Vec::new();
        write_netlist(&design.netlist, &mut netlist_bytes).expect("in-memory write");
        let payload = encode_request(&Request::Init(InitRequest {
            period_ps: design.period_ps,
            recipe: req.env.recipe().clone(),
            config: req.config.clone(),
            netlist_text: String::from_utf8(netlist_bytes).expect("netlist text is UTF-8"),
        }));
        let expected_pool = req.env.pool().len();
        let deadline = self.init_deadline;
        let round: Vec<(usize, TcpStream)> = self
            .workers
            .iter_mut()
            .enumerate()
            .filter_map(|(i, w)| w.conn.take().map(|c| (i, c)))
            .collect();
        let outcomes = std::thread::scope(|s| {
            let handles: Vec<_> = round
                .into_iter()
                .map(|(widx, mut conn)| {
                    let payload = &payload;
                    s.spawn(move || {
                        let result = roundtrip(&mut conn, payload, deadline);
                        (widx, conn, result)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("init dispatch thread"))
                .collect::<Vec<_>>()
        });
        for (widx, conn, result) in outcomes {
            match result {
                Ok(Response::InitAck { pool, .. }) if pool == expected_pool => {
                    self.workers[widx].conn = Some(conn);
                }
                Ok(Response::InitAck { pool, .. }) => {
                    obs::counter!("dist.workers_dead", 1);
                    eprintln!(
                        "dist: worker {} rebuilt a different design (pool {} vs {}), quarantined",
                        self.workers[widx].addr, pool, expected_pool
                    );
                }
                Ok(Response::Err { message }) => {
                    obs::counter!("dist.workers_dead", 1);
                    eprintln!(
                        "dist: worker {} failed init: {message}, quarantined",
                        self.workers[widx].addr
                    );
                }
                Ok(_) => {
                    obs::counter!("dist.workers_dead", 1);
                    eprintln!(
                        "dist: worker {} answered init with the wrong message, quarantined",
                        self.workers[widx].addr
                    );
                }
                Err(why) => {
                    obs::counter!("dist.workers_dead", 1);
                    eprintln!(
                        "dist: worker {} unreachable during init: {why}, quarantined",
                        self.workers[widx].addr
                    );
                }
            }
        }
        self.initialized = true;
    }

    /// The injections a run request to worker-process `widx` must carry:
    /// process-level faults addressed to that process, plus slot-level
    /// faults for the slots in its chunk.
    fn injects_for(
        plan: &FaultPlan,
        iteration: usize,
        widx: usize,
        chunk: &[(usize, u64)],
        deadline: Duration,
    ) -> Vec<Inject> {
        let mut injects = Vec::new();
        if plan.injects(iteration, widx, InjectedFault::WorkerDrop) {
            injects.push(Inject::Drop);
        }
        if plan.injects(iteration, widx, InjectedFault::TornFrame) {
            injects.push(Inject::Torn);
        }
        if plan.injects(iteration, widx, InjectedFault::SlowWorker) {
            // Stall well past the deadline so the coordinator definitely
            // abandons the connection first.
            let ms = deadline.as_millis() as u64 * 3 + 50;
            injects.push(Inject::SleepMs(ms));
        }
        for &(slot, _) in chunk {
            if plan.injects(iteration, slot, InjectedFault::WorkerPanic) {
                injects.push(Inject::Panic(slot));
            }
            if plan.injects(iteration, slot, InjectedFault::NanReward) {
                injects.push(Inject::NanReward(slot));
            }
            if plan.injects(iteration, slot, InjectedFault::PoisonedGradient) {
                injects.push(Inject::Poison(slot));
            }
        }
        injects
    }
}

impl RolloutExecutor for DistExecutor {
    fn run_batch(&mut self, req: &RolloutRequest<'_>) -> ExecutorBatch {
        if !self.initialized {
            self.init_workers(req);
        }
        let _span = obs::span!(
            "dist.run_batch",
            iteration = req.iteration as u64,
            pairs = req.pairs.len() as u64
        );
        let mut batch = ExecutorBatch::default();
        let mut pending: Vec<(usize, u64)> = req.pairs.to_vec();
        while !pending.is_empty() {
            pending.sort_by_key(|&(slot, _)| slot);
            let live: Vec<usize> = self
                .workers
                .iter()
                .enumerate()
                .filter_map(|(i, w)| w.conn.is_some().then_some(i))
                .collect();
            obs::gauge!("dist.live_workers", live.len() as f64);
            if live.is_empty() {
                obs::counter!("dist.worker_lost", pending.len() as u64);
                for (slot, seed) in pending.drain(..) {
                    batch.faults.push(RolloutFault {
                        iteration: req.iteration,
                        worker: slot,
                        seed,
                        kind: FaultKind::WorkerLost,
                        detail: "no live worker left to serve the rollout".into(),
                    });
                }
                break;
            }
            // Contiguous chunks over the live workers, sizes within one of
            // each other — a pure function of (pending, live set).
            let per = pending.len().div_ceil(live.len());
            let round: Vec<Dispatch> = pending
                .chunks(per)
                .zip(&live)
                .map(|(chunk, &widx)| {
                    let injects =
                        Self::injects_for(req.plan, req.iteration, widx, chunk, self.deadline);
                    let payload = encode_request(&Request::Run(RunRequest {
                        iteration: req.iteration,
                        pairs: chunk.to_vec(),
                        injects,
                        params: req.params.clone(),
                    }));
                    let conn = self.workers[widx].conn.take().expect("live worker");
                    (widx, chunk.to_vec(), conn, payload)
                })
                .collect();
            pending.clear();
            let deadline = self.deadline;
            let outcomes = std::thread::scope(|s| {
                let handles: Vec<_> = round
                    .into_iter()
                    .map(|(widx, chunk, mut conn, payload)| {
                        s.spawn(move || {
                            let result = roundtrip(&mut conn, &payload, deadline);
                            (widx, chunk, conn, result)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("dispatch thread"))
                    .collect::<Vec<_>>()
            });
            for (widx, chunk, conn, result) in outcomes {
                match result {
                    Ok(Response::Batch(b)) => {
                        obs::counter!("dist.rollouts", b.items.len() as u64);
                        self.workers[widx].conn = Some(conn);
                        batch
                            .rollouts
                            .extend(b.items.into_iter().map(|item| ExecutedRollout {
                                slot: item.slot,
                                seed: item.seed,
                                selected:
                                    item.selection.iter().map(|&i| EndpointId::new(i)).collect(),
                                steps: item.steps,
                                reward: item.reward,
                                log_prob_grads: item.grads,
                            }));
                        batch.faults.extend(b.faults);
                    }
                    Ok(Response::Err { message }) => {
                        obs::counter!("dist.workers_dead", 1);
                        obs::counter!("dist.requeued", chunk.len() as u64);
                        eprintln!(
                            "dist: worker {} rejected the batch: {message}; re-queuing {} rollouts",
                            self.workers[widx].addr,
                            chunk.len()
                        );
                        pending.extend(chunk);
                    }
                    Ok(_) => {
                        obs::counter!("dist.workers_dead", 1);
                        obs::counter!("dist.requeued", chunk.len() as u64);
                        eprintln!(
                            "dist: worker {} answered with the wrong message; re-queuing {} rollouts",
                            self.workers[widx].addr,
                            chunk.len()
                        );
                        pending.extend(chunk);
                    }
                    Err(why) => {
                        obs::counter!("dist.workers_dead", 1);
                        obs::counter!("dist.requeued", chunk.len() as u64);
                        eprintln!(
                            "dist: worker {} failed mid-batch ({why}); re-queuing {} rollouts",
                            self.workers[widx].addr,
                            chunk.len()
                        );
                        pending.extend(chunk);
                    }
                }
            }
        }
        // Slot order, so fault records land in the checkpoint in the same
        // order a single-process run writes them.
        batch.rollouts.sort_by_key(|r| r.slot);
        batch.faults.sort_by_key(|f| (f.worker, f.seed));
        batch
    }
}

impl Drop for DistExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One request/response exchange under a read deadline. Any failure —
/// write error, timeout, torn frame, decode error — is returned as a
/// description; the caller quarantines the worker.
fn roundtrip(conn: &mut TcpStream, payload: &[u8], deadline: Duration) -> Result<Response, String> {
    conn.set_read_timeout(Some(deadline))
        .map_err(|e| format!("set deadline: {e}"))?;
    write_message(conn, payload).map_err(|e| format!("send: {e}"))?;
    let reply = read_message(conn).map_err(|e| format!("receive: {e}"))?;
    decode_response(&reply).map_err(|e| format!("decode: {e}"))
}

impl fmt::Display for DistExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DistExecutor({} workers, {} live)",
            self.workers.len(),
            self.live_workers()
        )
    }
}
