//! Property tests: every `rl-ccd-dist v1` message round-trips the codec
//! exactly — recipes and configs with floats far from 1.0, arbitrary
//! pair/inject lists, gradient payloads with preserved rollout counts, and
//! fault records with free-form detail text — and the framing layer
//! rejects truncated and oversized frames instead of misparsing them.
//!
//! Cases are generated from a seeded RNG rather than nested strategies:
//! one `u64` pins the whole case, which keeps failures reproducible under
//! the vendored proptest (no shrinking).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl_ccd::{EncoderKind, FaultKind, RlConfig, RolloutFault};
use rl_ccd_dist::{
    decode_request, decode_response, encode_request, encode_response, read_message, write_message,
    BatchResponse, InitRequest, Inject, Request, Response, RolloutItem, RunRequest,
    DIST_MAX_FRAME_LEN,
};
use rl_ccd_flow::{DatapathOpts, FlowRecipe, MarginMode, UsefulSkewOpts};
use rl_ccd_nn::{GradSet, ParamSet, Tensor};

fn wild_f32(rng: &mut StdRng) -> f32 {
    let mantissa = rng.gen_range(-1.0f32..1.0);
    let exp = rng.gen_range(0u32..12) as i32 - 6;
    mantissa * 10f32.powi(exp)
}

fn wild_f64(rng: &mut StdRng) -> f64 {
    let mantissa = rng.gen_range(-1.0f64..1.0);
    let exp = rng.gen_range(0u32..16) as i32 - 8;
    mantissa * 10f64.powi(exp)
}

fn random_skew(rng: &mut StdRng) -> UsefulSkewOpts {
    UsefulSkewOpts {
        sweeps: rng.gen_range(0usize..40),
        rate: wild_f32(rng),
        hold_floor: wild_f32(rng),
        launch_floor: wild_f32(rng),
        tolerance: wild_f32(rng),
        move_budget_frac: wild_f32(rng),
        serves_per_sweep_frac: wild_f32(rng),
    }
}

fn random_datapath(rng: &mut StdRng) -> DatapathOpts {
    DatapathOpts {
        passes: rng.gen_range(0usize..10),
        ops_per_pass: rng.gen_range(0usize..1000),
        ops_per_kcell: wild_f32(rng),
        ops_per_endpoint: rng.gen_range(0usize..20),
        buffer_min_len: wild_f32(rng),
        min_gain: wild_f32(rng),
    }
}

fn random_recipe(rng: &mut StdRng) -> FlowRecipe {
    FlowRecipe {
        skew: random_skew(rng),
        skew_touchup: random_skew(rng),
        pre_datapath: random_datapath(rng),
        main_datapath: random_datapath(rng),
        recovery_slack: wild_f32(rng),
        margin_mode: if rng.gen_bool(0.5) {
            MarginMode::OverFixToWns
        } else {
            MarginMode::UnderFix
        },
        clock_insertion_frac: wild_f32(rng),
        clock_variation_frac: wild_f32(rng),
        skew_bound_frac: wild_f32(rng),
        legalize_disp: wild_f32(rng),
        seed: rng.gen_range(0u64..u64::MAX),
    }
}

fn random_config(rng: &mut StdRng) -> RlConfig {
    RlConfig {
        gnn_hidden: rng.gen_range(1usize..64),
        embed_dim: rng.gen_range(1usize..32),
        lstm_hidden: rng.gen_range(1usize..64),
        attn_dim: rng.gen_range(1usize..64),
        rho: wild_f32(rng),
        learning_rate: wild_f32(rng),
        grad_clip: wild_f32(rng),
        workers: rng.gen_range(1usize..16),
        max_iterations: rng.gen_range(1usize..100),
        patience: rng.gen_range(1usize..10),
        fanout_cap: rng.gen_range(1usize..64),
        seed: rng.gen_range(0u64..u64::MAX),
        encoder: match rng.gen_range(0u32..3) {
            0 => EncoderKind::Lstm,
            1 => EncoderKind::Gru,
            _ => EncoderKind::None,
        },
        tape_memory_budget: rng.gen_range(1usize..1 << 40),
        quorum: if rng.gen_bool(0.5) {
            None
        } else {
            Some(rng.gen_range(0usize..16))
        },
        divergence_lr_decay: wild_f32(rng),
    }
}

fn random_params(rng: &mut StdRng) -> ParamSet {
    let mut params = ParamSet::new();
    for i in 0..rng.gen_range(0usize..4) {
        let rows = rng.gen_range(1usize..4);
        let cols = rng.gen_range(1usize..5);
        let data = (0..rows * cols).map(|_| wild_f32(rng)).collect();
        params.insert(format!("layer{i}.w"), Tensor::from_vec(rows, cols, data));
    }
    params
}

fn random_grads(rng: &mut StdRng) -> GradSet {
    let mut grads = GradSet::new();
    for i in 0..rng.gen_range(1usize..4) {
        let rows = rng.gen_range(1usize..3);
        let cols = rng.gen_range(1usize..4);
        let data = (0..rows * cols).map(|_| wild_f32(rng)).collect();
        grads.set(format!("g{i}"), Tensor::from_vec(rows, cols, data));
    }
    grads
}

fn random_fault(rng: &mut StdRng) -> RolloutFault {
    let kinds = [
        FaultKind::WorkerPanic,
        FaultKind::NonFiniteReward,
        FaultKind::NonFiniteGradient,
        FaultKind::NonFiniteUpdate,
        FaultKind::EmptyBatch,
        FaultKind::WorkerLost,
    ];
    let details = [
        "plain detail",
        "detail with = signs and key=value lookalikes",
        "unicode détail — ∇Σ",
        "",
    ];
    RolloutFault {
        iteration: rng.gen_range(0usize..100),
        worker: rng.gen_range(0usize..16),
        seed: rng.gen_range(0u64..u64::MAX),
        kind: kinds[rng.gen_range(0..kinds.len())],
        detail: details[rng.gen_range(0..details.len())].to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn init_requests_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lines = rng.gen_range(0usize..6);
        let netlist_text = (0..lines)
            .map(|i| format!("line {i} with tokens {}\n", rng.gen_range(0u32..u32::MAX)))
            .collect::<String>();
        let req = Request::Init(InitRequest {
            period_ps: wild_f32(&mut rng),
            recipe: random_recipe(&mut rng),
            config: random_config(&mut rng),
            netlist_text,
        });
        let back = decode_request(&encode_request(&req)).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn run_requests_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..rng.gen_range(0usize..10))
            .map(|_| (rng.gen_range(0usize..32), rng.gen_range(0u64..u64::MAX)))
            .collect();
        let injects = (0..rng.gen_range(0usize..5))
            .map(|_| match rng.gen_range(0u32..6) {
                0 => Inject::Drop,
                1 => Inject::Torn,
                2 => Inject::SleepMs(rng.gen_range(0u64..100_000)),
                3 => Inject::Panic(rng.gen_range(0usize..32)),
                4 => Inject::NanReward(rng.gen_range(0usize..32)),
                _ => Inject::Poison(rng.gen_range(0usize..32)),
            })
            .collect();
        let req = Request::Run(RunRequest {
            iteration: rng.gen_range(0usize..1000),
            req_id: rng.gen_range(0u64..u64::MAX),
            budget_ms: if rng.gen_bool(0.5) {
                Some(rng.gen_range(0u64..1_000_000))
            } else {
                None
            },
            pairs,
            injects,
            params: random_params(&mut rng),
        });
        let back = decode_request(&encode_request(&req)).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn batch_responses_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let items = (0..rng.gen_range(0usize..4))
            .map(|slot| RolloutItem {
                slot,
                seed: rng.gen_range(0u64..u64::MAX),
                steps: rng.gen_range(0usize..40),
                reward: wild_f64(&mut rng),
                selection: (0..rng.gen_range(0usize..8))
                    .map(|_| rng.gen_range(0usize..500))
                    .collect(),
                grads: random_grads(&mut rng),
            })
            .collect();
        let faults = (0..rng.gen_range(0usize..4))
            .map(|_| random_fault(&mut rng))
            .collect();
        let resp = Response::Batch(BatchResponse { items, faults });
        let encoded = encode_response(&resp);
        let back = decode_response(&encoded).unwrap();
        // GradSet has no PartialEq; bit-exactness holds iff the canonical
        // re-encoding is byte-identical.
        prop_assert_eq!(encode_response(&back), encoded);
        let (Response::Batch(orig), Response::Batch(round)) = (&resp, &back) else {
            panic!("decode changed the message kind");
        };
        prop_assert_eq!(orig.items.len(), round.items.len());
        prop_assert_eq!(orig.faults.len(), round.faults.len());
        for (a, b) in orig.faults.iter().zip(&round.faults) {
            prop_assert_eq!(a, b);
        }
        for (a, b) in orig.items.iter().zip(&round.items) {
            prop_assert_eq!(a.slot, b.slot);
            prop_assert_eq!(a.seed, b.seed);
            prop_assert_eq!(a.steps, b.steps);
            prop_assert_eq!(a.reward, b.reward);
            prop_assert_eq!(&a.selection, &b.selection);
            prop_assert_eq!(a.grads.count(), b.grads.count());
        }
    }

    #[test]
    fn ack_and_err_responses_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ack = Response::InitAck {
            endpoints: rng.gen_range(0usize..10_000),
            pool: rng.gen_range(0usize..10_000),
        };
        match decode_response(&encode_response(&ack)).unwrap() {
            Response::InitAck { endpoints, pool } => {
                if let Response::InitAck { endpoints: e0, pool: p0 } = ack {
                    prop_assert_eq!(endpoints, e0);
                    prop_assert_eq!(pool, p0);
                }
            }
            other => panic!("expected init-ack, got {other:?}"),
        }
        let message = format!("failure_{}", rng.gen_range(0u32..u32::MAX));
        let err = Response::Err { message: message.clone() };
        match decode_response(&encode_response(&err)).unwrap() {
            Response::Err { message: back } => prop_assert_eq!(back, message),
            other => panic!("expected err, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_rejected(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payload = encode_request(&Request::Run(RunRequest {
            iteration: 1,
            req_id: 0,
            budget_ms: None,
            pairs: vec![(0, rng.gen_range(0u64..u64::MAX))],
            injects: vec![],
            params: random_params(&mut rng),
        }));
        let mut framed = Vec::new();
        write_message(&mut framed, &payload).unwrap();
        // Cut anywhere strictly inside the frame: header or payload.
        let cut = rng.gen_range(0..framed.len());
        framed.truncate(cut);
        let err = read_message(&mut &framed[..]).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frames_are_rejected(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(DIST_MAX_FRAME_LEN as u64 + 1..u32::MAX as u64 + 1) as u32;
        let forged = len.to_be_bytes();
        let err = read_message(&mut &forged[..]).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
