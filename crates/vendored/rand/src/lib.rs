//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! real `rand` can never be fetched. This crate implements the *exact* API
//! subset the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}`, and `seq::SliceRandom::shuffle` — on top of
//! a deterministic xoshiro256\*\* generator. Streams differ from upstream
//! `rand`'s ChaCha12 `StdRng`, but every consumer in this workspace only
//! needs seed-reproducible uniform draws, never a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The uniform-sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Types uniformly samplable over an interval (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)` (or `[low, high]` when
    /// `inclusive`).
    fn sample_interval<R: Rng + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
///
/// A single generic impl per range shape keeps type inference working the
/// same way upstream rand's does (`gen_range(-4.0..4.0)` infers `f32` from
/// the call site).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        T::sample_interval(rng, a, b, true)
    }
}

fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_uniform_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_interval<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                // The closed-interval endpoint has measure zero for floats;
                // upstream rand treats it the same way up to rounding.
                low + (unit_f64(rng) as $t) * (high - low)
            }
        }
    };
}
impl_uniform_float!(f32);
impl_uniform_float!(f64);

macro_rules! impl_uniform_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_interval<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    };
}
impl_uniform_int!(usize);
impl_uniform_int!(u64);
impl_uniform_int!(u32);
impl_uniform_int!(i32);
impl_uniform_int!(i64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (stands in for `rand`'s
    /// `StdRng`; the stream differs but determinism per seed holds).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as upstream does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() as usize) % self.len()])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen_range(-2.5f32..3.5);
            assert!((-2.5..3.5).contains(&f));
            let g = r.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let u = r.gen_range(0usize..17);
            assert!(u < 17);
            let i = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let heads = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }
}
