//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crate registry, so this crate
//! re-implements the subset of proptest 1.x the workspace's property tests
//! use: the [`proptest!`] macro (with an optional inner
//! `#![proptest_config(..)]`), range / tuple / `Just` / `any::<bool>()` /
//! `prop_oneof!` / `collection::vec` strategies, the `prop_map` /
//! `prop_filter` combinators, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: failing inputs are **not shrunk** (the failing
//! case is reported verbatim), and sampling streams differ. Each test's RNG
//! is seeded deterministically from the test name, so failures reproduce
//! across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (does not fail the test).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
///
/// Unlike upstream there is no value tree / shrinking: a strategy is just a
/// deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, resampling (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Boxes the strategy behind a trait object (for `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// `prop_map` adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_filter` adapter (rejection sampling).
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynSample<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.inner.sample_dyn(rng)
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
pub trait DynSample<T> {
    /// Draws one value.
    fn sample_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynSample<S::Value> for S {
    fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    };
}
impl_range_strategy!(f32);
impl_range_strategy!(f64);
impl_range_strategy!(usize);
impl_range_strategy!(u64);
impl_range_strategy!(u32);
impl_range_strategy!(i32);
impl_range_strategy!(i64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);

/// Types with a canonical "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Uniform `bool`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($t:ty) => {
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    };
}
impl_arbitrary_int!(u32);
impl_arbitrary_int!(u64);
impl_arbitrary_int!(i32);
impl_arbitrary_int!(i64);

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use std::fmt::Debug;

    /// A `Vec` of exactly `len` samples from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy produced by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG seed (FNV-1a over the test path).
pub fn rng_for_test(name: &str) -> StdRng {
    use rand::SeedableRng;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a property test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, collection as prop_collection, prop_assert, prop_assert_eq, prop_assert_ne,
        prop_assume, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
    /// `prop::collection::...` paths used by upstream-style imports.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts two expressions are unequal (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a standard `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut rejected = 0u32;
                let mut case = 0u32;
                let mut attempts = 0u32;
                while case < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(20).max(1000) {
                        panic!(
                            "proptest {}: too many rejected cases ({} rejects)",
                            stringify!($name), rejected
                        );
                    }
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let __inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                        $(&$arg),*
                    );
                    let __outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { case += 1; }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}:\n{}\nwith inputs:\n{}",
                                stringify!($name), case, msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Kind {
        A(u64),
        B(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u64..100, (a, b) in (0.0f32..1.0, 1.0f32..2.0)) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!(b >= 1.0 && b < 2.0);
        }

        #[test]
        fn combinators_compose(
            v in prop_collection::vec(any::<bool>(), 8),
            k in prop_oneof![
                (0u64..5).prop_map(Kind::A),
                any::<bool>().prop_map(Kind::B),
            ],
        ) {
            prop_assert_eq!(v.len(), 8);
            match k {
                Kind::A(n) => prop_assert!(n < 5),
                Kind::B(_) => {}
            }
        }

        #[test]
        fn filter_and_assume(v in prop_collection::vec(any::<bool>(), 4)
            .prop_filter("not all false", |v| v.iter().any(|&b| b))) {
            prop_assume!(!v[0] || v.len() == 4);
            prop_assert!(v.iter().any(|&b| b));
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::Rng;
        let mut a = crate::rng_for_test("x::y");
        let mut b = crate::rng_for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::rng_for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    fn failing_property(x: u64) -> crate::TestCaseResult {
        prop_assert!(x > 100, "x was {}", x);
        Ok(())
    }

    #[test]
    fn prop_assert_returns_fail_without_panicking() {
        match failing_property(3) {
            Err(crate::TestCaseError::Fail(msg)) => assert!(msg.contains("x was 3")),
            other => panic!("expected Fail, got {other:?}"),
        }
    }
}
