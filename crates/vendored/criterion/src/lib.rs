//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a crate registry, so this crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: `Criterion` (builder + `bench_function` + `benchmark_group`),
//! benchmark groups with `bench_function` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: after a warm-up window, each
//! benchmark runs timed batches until the measurement window elapses and
//! reports the mean, best, and worst per-iteration wall time. There are no
//! statistical refinements, plots, or baselines — just honest numbers on
//! stderr, enough to compare two implementations by orders of magnitude.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark harness (subset of `criterion::Criterion`).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Finalizes reporting (no-op; provided for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// A named benchmark group (subset of `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn config(&self) -> Criterion {
        let mut c = self.parent.clone();
        if let Some(n) = self.sample_size {
            c.sample_size = n;
        }
        c
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, &self.config(), &mut f);
        self
    }

    /// Runs one benchmark that borrows a shared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, &self.config(), &mut |b| f(b, input));
        self
    }

    /// Closes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (subset of `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, config: &Criterion, f: &mut F) {
    // Warm-up: also calibrates how many iterations fit one sample.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(0);
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < config.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        per_iter = warm_start.elapsed() / warm_iters as u32;
    }
    let budget = config.measurement_time.as_nanos() / config.sample_size.max(1) as u128;
    let iters_per_sample = (budget / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

    let mut best = Duration::MAX;
    let mut worst = Duration::ZERO;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let measure_start = Instant::now();
    let mut samples = 0usize;
    while samples < config.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters_per_sample.max(1) as u32;
        best = best.min(per);
        worst = worst.max(per);
        total += b.elapsed;
        total_iters += iters_per_sample;
        samples += 1;
        // Never exceed 4x the measurement window even for slow benches.
        if measure_start.elapsed() > config.measurement_time * 4 && samples >= 3 {
            break;
        }
    }
    let mean = if total_iters > 0 {
        total / total_iters as u32
    } else {
        Duration::ZERO
    };
    eprintln!(
        "{name:<44} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_duration(best),
        fmt_duration(mean),
        fmt_duration(worst),
        samples,
        iters_per_sample,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions (subset of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point (subset of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let input = 21u64;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &i| {
            b.iter(|| black_box(i * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
