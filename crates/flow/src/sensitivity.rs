//! Endpoint sensitivity analysis: *how* is each violating endpoint best
//! fixed?
//!
//! The paper's central observation (§I) is that violating endpoints react
//! differently to clock-path and data-path optimization, and that the
//! native flow ignores this. This module computes first-order fixability
//! estimates for both strategies — useful as a diagnostic, as a
//! hand-crafted competitor to the learned policy, and as ground truth when
//! judging what the agent discovered.

use rl_ccd_netlist::Netlist;
use rl_ccd_sta::{worst_path, TimingGraph, TimingReport};

/// First-order fixability of one violating endpoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EndpointSensitivity {
    /// Endpoint index.
    pub endpoint: usize,
    /// Violation magnitude (−slack), ps.
    pub need_ps: f32,
    /// How much of the violation a clock shift could recover, bounded by
    /// the capture register's launch-side and hold headroom (0 for primary
    /// outputs — no capture clock to move), ps.
    pub clock_recoverable_ps: f32,
    /// Estimated recovery available from data-path ops along the worst
    /// path (upsizing headroom of the path's cells), ps.
    pub data_recoverable_ps: f32,
}

impl EndpointSensitivity {
    /// Clock fixability as a fraction of the need (clamped to [0, 1]).
    pub fn clock_fixability(&self) -> f32 {
        (self.clock_recoverable_ps / self.need_ps.max(1e-6)).clamp(0.0, 1.0)
    }

    /// Data fixability as a fraction of the need (clamped to [0, 1]).
    pub fn data_fixability(&self) -> f32 {
        (self.data_recoverable_ps / self.need_ps.max(1e-6)).clamp(0.0, 1.0)
    }

    /// Whether the clock path is the distinctly better fix — the endpoints
    /// the paper argues should be prioritized for useful skew.
    pub fn prefers_clock(&self) -> bool {
        self.clock_fixability() > self.data_fixability() + 0.1
    }
}

/// Computes sensitivities for every violating endpoint in `report`,
/// worst first.
pub fn endpoint_sensitivities(
    netlist: &Netlist,
    graph: &TimingGraph,
    report: &TimingReport,
    hold_floor: f32,
) -> Vec<EndpointSensitivity> {
    let lib = netlist.library();
    report
        .violating_endpoints()
        .into_iter()
        .map(|ei| {
            let need = -report.endpoint_slack(ei);
            let ep = netlist.endpoints()[ei];
            // Clock side: delay the capture register's clock within its
            // launch-slack and hold headroom.
            let clock = match ep {
                rl_ccd_netlist::Endpoint::FlopD(cell) => {
                    let q = report.cell_slack(cell);
                    let hold = report.endpoint_hold_slack(ei);
                    let q_room = if q.is_finite() { q.max(0.0) } else { need };
                    let h_room = if hold.is_finite() {
                        (hold - hold_floor).max(0.0)
                    } else {
                        need
                    };
                    q_room.min(h_room).min(need)
                }
                rl_ccd_netlist::Endpoint::PrimaryOut(_) => 0.0,
            };
            // Data side: sum the first-order sizing gain over worst-path
            // cells ((r_now − r_max_drive) · load each).
            let _ = graph; // worst_path only needs the report
            let mut data = 0.0f32;
            for hop in worst_path(netlist, report, ei) {
                if !netlist.kind(hop.cell).is_combinational() {
                    continue;
                }
                let lc_id = netlist.cell(hop.cell).lib;
                let lc = lib.cell(lc_id);
                let strongest = lib.variant(lc.kind, rl_ccd_netlist::Drive::X8);
                let load = netlist
                    .cell(hop.cell)
                    .output
                    .map(|n| netlist.net_load(n))
                    .unwrap_or(0.0);
                let gain = (lc.resistance - lib.cell(strongest).resistance) * load;
                data += gain.max(0.0);
            }
            EndpointSensitivity {
                endpoint: ei,
                need_ps: need,
                clock_recoverable_ps: clock,
                data_recoverable_ps: data.min(need),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, ClusterClass, DesignSpec, TechNode};
    use rl_ccd_sta::{analyze, ClockSchedule, Constraints, EndpointMargins};

    fn setup() -> (rl_ccd_netlist::GeneratedDesign, TimingGraph, TimingReport) {
        let d = generate(&DesignSpec::new("sens", 1500, TechNode::N7, 52));
        let graph = TimingGraph::new(&d.netlist);
        let clocks = ClockSchedule::balanced(&d.netlist, 0.1 * d.period_ps, 2.0, d.period_ps, 5);
        let rep = analyze(
            &d.netlist,
            &graph,
            &Constraints::with_period(d.period_ps),
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        (d, graph, rep)
    }

    #[test]
    fn sensitivities_cover_all_violations_with_sane_ranges() {
        let (d, graph, rep) = setup();
        let sens = endpoint_sensitivities(&d.netlist, &graph, &rep, 2.0);
        assert_eq!(sens.len(), rep.nve());
        for s in &sens {
            assert!(s.need_ps > 0.0);
            assert!(s.clock_recoverable_ps >= 0.0 && s.clock_recoverable_ps <= s.need_ps + 1e-3);
            assert!(s.data_recoverable_ps >= 0.0 && s.data_recoverable_ps <= s.need_ps + 1e-3);
            assert!((0.0..=1.0).contains(&s.clock_fixability()));
            assert!((0.0..=1.0).contains(&s.data_fixability()));
        }
    }

    #[test]
    fn deep_endpoints_prefer_clock_chains_prefer_data() {
        // The generator's ground-truth classes must agree with the
        // first-order analysis — this is the heterogeneity the whole
        // reproduction is built on.
        let (d, graph, rep) = setup();
        let sens = endpoint_sensitivities(&d.netlist, &graph, &rep, 2.0);
        let mut deep_clock = 0usize;
        let mut deep_total = 0usize;
        let mut chain_data = 0usize;
        let mut chain_total = 0usize;
        for s in &sens {
            match d.endpoint_class[s.endpoint] {
                ClusterClass::Deep => {
                    deep_total += 1;
                    if s.clock_fixability() > s.data_fixability() {
                        deep_clock += 1;
                    }
                }
                ClusterClass::Chain => {
                    chain_total += 1;
                    if s.data_fixability() >= s.clock_fixability() {
                        chain_data += 1;
                    }
                }
                ClusterClass::Normal => {}
            }
        }
        assert!(deep_total > 0 && chain_total > 0);
        assert!(
            deep_clock * 3 >= deep_total * 2,
            "deep endpoints should mostly prefer clock: {deep_clock}/{deep_total}"
        );
        assert!(
            chain_data * 3 >= chain_total * 2,
            "chain endpoints should mostly prefer data: {chain_data}/{chain_total}"
        );
    }

    #[test]
    fn primary_outputs_have_zero_clock_recovery() {
        let (d, graph, rep) = setup();
        for s in endpoint_sensitivities(&d.netlist, &graph, &rep, 2.0) {
            if !d.netlist.endpoints()[s.endpoint].is_register() {
                assert_eq!(s.clock_recoverable_ps, 0.0);
            }
        }
    }
}
