//! The useful-skew engine: criticality-ordered, effort-limited, hold-aware
//! scheduling of per-register clock arrivals.
//!
//! This models the clock-path half of commercial CCD faithfully in the three
//! behaviours the paper's prioritization mechanism relies on:
//!
//! 1. **Criticality order** — each sweep serves registers whose (margined)
//!    endpoint slack is worst first. Margining an endpoint to WNS therefore
//!    pushes its capture register to the front of the queue.
//! 2. **Fix-to-zero target** — the engine shifts a register's clock just far
//!    enough to bring its (margined) violation to zero, never beyond: real
//!    engines do not waste skew headroom. This is exactly why worsening an
//!    endpoint to WNS makes the engine *over-fix* its true slack by the
//!    margin amount.
//! 3. **Bounded effort** — a total move budget limits how many registers can
//!    be served. Under scarcity, *which* endpoints are served first changes
//!    the final QoR — the gap RL-CCD exploits.
//!
//! Shifts are limited by the launch-side headroom of the register (its Q
//! slack), the skew bound, and a hold-slack floor.

use rl_ccd_netlist::Netlist;
use rl_ccd_sta::{
    ClockSchedule, Constraints, EndpointMargins, IncrementalTimer, TimingGraph, TimingReport,
};

/// Tuning knobs of the useful-skew engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UsefulSkewOpts {
    /// Number of sweeps; each sweep runs one STA and serves the queue.
    pub sweeps: usize,
    /// Fraction of the computed shift applied per serve (damping).
    pub rate: f32,
    /// Hold slack floor: a positive clock shift never pushes the register's
    /// own hold slack below this many ps.
    pub hold_floor: f32,
    /// Launch-side floor: a positive shift never pushes the register's
    /// launch (Q) slack below this many ps.
    pub launch_floor: f32,
    /// Shifts smaller than this many ps are not counted as moves.
    pub tolerance: f32,
    /// Total move budget as a fraction of the *initially violating*
    /// registers; once spent, the engine stops. Basing the budget on
    /// violations (not total registers) keeps the scarcity — which is what
    /// makes prioritization matter — independent of design scale.
    pub move_budget_frac: f32,
    /// Registers served per sweep, as a fraction of the initially
    /// violating registers.
    pub serves_per_sweep_frac: f32,
}

impl Default for UsefulSkewOpts {
    fn default() -> Self {
        Self {
            sweeps: 12,
            rate: 0.9,
            hold_floor: 2.0,
            launch_floor: 12.0,
            tolerance: 0.05,
            move_budget_frac: 0.7,
            serves_per_sweep_frac: 0.15,
        }
    }
}

/// Outcome of a useful-skew run.
#[derive(Clone, Debug)]
pub struct SkewOutcome {
    /// Sweeps actually executed (may stop early on convergence).
    pub sweeps: usize,
    /// Clock moves applied (shifts larger than the tolerance).
    pub moves: usize,
    /// Timing report after the final sweep (margins still applied).
    pub report: TimingReport,
}

/// Runs the useful-skew engine, mutating `clocks` in place.
///
/// # Examples
/// ```
/// use rl_ccd_flow::{run_useful_skew, FlowRecipe, UsefulSkewOpts};
/// use rl_ccd_netlist::{generate, DesignSpec, TechNode};
/// use rl_ccd_sta::{analyze, Constraints, EndpointMargins, TimingGraph};
///
/// let d = generate(&DesignSpec::new("skew", 300, TechNode::N7, 1));
/// let graph = TimingGraph::new(&d.netlist);
/// let cons = Constraints::with_period(d.period_ps);
/// let recipe = FlowRecipe::default();
/// let mut clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
/// let margins = EndpointMargins::zero(&d.netlist);
/// let before = analyze(&d.netlist, &graph, &cons, &clocks, &margins);
/// let out = run_useful_skew(
///     &d.netlist, &graph, &cons, &mut clocks, &margins, &UsefulSkewOpts::default(),
/// );
/// assert!(out.report.tns() >= before.tns());
/// ```
///
/// Each sweep analyzes timing with `margins` applied, ranks registers by the
/// worse of their capture-side (D endpoint) and launch-side (Q pin) margined
/// slack, and serves the most critical ones: delaying the clock to erase a
/// capture violation (bounded by launch headroom, the hold floor, and the
/// skew bound) or advancing it to erase a launch violation (bounded by
/// capture headroom).
///
/// Margins reorder the queue (a margined endpoint sits at WNS, i.e. at the
/// very front) but do **not** add effort: margined serves consume the same
/// move budget as everything else, preserving the paper's apples-to-apples
/// property — prioritization redirects the engine, it never enlarges it.
/// The engine stops when the move budget is exhausted or a sweep applies
/// no move.
pub fn run_useful_skew(
    netlist: &Netlist,
    graph: &TimingGraph,
    constraints: &Constraints,
    clocks: &mut ClockSchedule,
    margins: &EndpointMargins,
    opts: &UsefulSkewOpts,
) -> SkewOutcome {
    let mut timer = IncrementalTimer::new(netlist, constraints, clocks, margins);
    run_useful_skew_with_timer(netlist, graph, clocks, &mut timer, opts)
}

/// Like [`run_useful_skew`], but re-times through an existing
/// [`IncrementalTimer`] instead of running full STA passes: each sweep's
/// clock moves are applied to `clocks` and then synced to the timer in one
/// incremental propagation, so only the moved registers' cones are
/// re-timed. The timer must already reflect `clocks` and the margins the
/// caller wants applied; on return it reflects the final schedule (the
/// returned report is a clone of the timer's).
pub fn run_useful_skew_with_timer(
    netlist: &Netlist,
    graph: &TimingGraph,
    clocks: &mut ClockSchedule,
    timer: &mut IncrementalTimer,
    opts: &UsefulSkewOpts,
) -> SkewOutcome {
    let n_regs = netlist.flops().len();
    let mut sweeps = 0;
    let mut moves = 0usize;
    // Effort scales with the violation load the engine starts with.
    let initially_violating = (0..n_regs)
        .filter(|&r| {
            let d = timer.report().endpoint_slack(graph.endpoint_of_flop(r));
            let q = timer.report().cell_slack(netlist.flops()[r]);
            d.min(q) < -opts.tolerance
        })
        .count();
    let mut budget = ((initially_violating as f32 * opts.move_budget_frac).ceil() as usize).max(1);
    let serves_per_sweep =
        ((initially_violating as f32 * opts.serves_per_sweep_frac).ceil() as usize).max(1);
    for _ in 0..opts.sweeps {
        if budget == 0 {
            break;
        }
        sweeps += 1;
        // Rank: most critical (lowest margined slack on either side) first.
        let mut order: Vec<(usize, f32)> = (0..n_regs)
            .map(|r| {
                let d = timer.report().endpoint_slack(graph.endpoint_of_flop(r));
                let q = timer.report().cell_slack(netlist.flops()[r]);
                (r, d.min(q))
            })
            .filter(|&(_, key)| key < -opts.tolerance)
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1));

        let mut sweep_moves = 0usize;
        let sweep_tns = timer.report().tns();
        let mut applied_moves: Vec<(usize, f32)> = Vec::new();
        for &(r, _) in order.iter() {
            // A serve slot is only consumed by an actual move; registers
            // clamped to no motion (no launch/hold headroom left, or already
            // balanced) are skipped so they cannot clog the queue.
            if budget == 0 || sweep_moves >= serves_per_sweep {
                break;
            }
            let ei = graph.endpoint_of_flop(r);
            let d_slack = timer.report().endpoint_slack(ei);
            let q_slack = timer.report().cell_slack(netlist.flops()[r]);
            let hold_headroom = {
                let hold = timer.report().endpoint_hold_slack(ei);
                if hold.is_finite() {
                    (hold - opts.hold_floor).max(0.0)
                } else {
                    f32::INFINITY
                }
            };
            let delta = if d_slack < 0.0 && q_slack >= 0.0 {
                // Serve the capture side: delay the clock to lift the
                // (margined) violation to zero — never beyond — within
                // launch headroom and the hold floor.
                let want = (-d_slack)
                    .min((q_slack - opts.launch_floor).max(0.0))
                    .min(hold_headroom);
                opts.rate * want
            } else {
                // Advancing the clock erodes hold slack at the registers
                // this one launches into, 1:1 — bound by that headroom.
                let dn_hold = {
                    let h = timer.report().downstream_hold_slack(netlist.flops()[r]);
                    if h.is_finite() {
                        (h - opts.hold_floor).max(0.0)
                    } else {
                        f32::INFINITY
                    }
                };
                if q_slack < 0.0 && d_slack >= 0.0 {
                    // Serve the launch side: advance the clock, within
                    // capture headroom and the downstream hold headroom.
                    let want = (-q_slack).min(d_slack).min(dn_hold);
                    -opts.rate * want
                } else if d_slack < 0.0 && q_slack < 0.0 {
                    // Both sides violate: balance, shifting criticality
                    // toward the healthier side. The step is additionally
                    // capped at a fraction of the receiving side's violation
                    // — a sane engine never wrecks one critical side to
                    // serve the other, margins or not (this is what keeps a
                    // mis-prioritized chain endpoint wasteful rather than
                    // catastrophic).
                    let bal = 0.5 * (q_slack - d_slack);
                    if bal > 0.0 {
                        opts.rate * bal.min(hold_headroom).min(0.3 * -q_slack)
                    } else {
                        opts.rate * bal.max(-dn_hold).max(0.3 * d_slack)
                    }
                } else {
                    0.0
                }
            };
            let applied = clocks.adjust(r, delta);
            if applied.abs() > opts.tolerance {
                applied_moves.push((r, applied));
                sweep_moves += 1;
                budget -= 1;
            }
        }
        moves += sweep_moves;
        if sweep_moves == 0 {
            break;
        }
        // One incremental propagation re-times every moved register's cone
        // (replacing the full per-sweep `analyze` this engine used to run).
        timer.set_clocks_from(netlist, clocks);
        // Guard: a sweep must not regress the engine's own (margined)
        // objective. Per-serve deltas assume a 1:1 trade with a single
        // downstream cone; a register launching into several violating
        // cones loses k:1, and a sweep dominated by such serves ends worse
        // than it started. A sane engine never ships that — revert the
        // sweep and stop. (Margined arms judge margined TNS, so deliberate
        // over-fixing of true slack is unaffected.)
        if timer.report().tns() < sweep_tns - 1e-3 {
            for &(r, applied) in applied_moves.iter().rev() {
                clocks.adjust(r, -applied);
            }
            timer.set_clocks_from(netlist, clocks);
            moves -= sweep_moves;
            rl_ccd_obs::counter!("flow.useful_skew.reverted_sweeps", 1);
            break;
        }
    }
    rl_ccd_obs::counter!("flow.useful_skew.sweeps", sweeps);
    rl_ccd_obs::counter!("flow.useful_skew.moves", moves);
    SkewOutcome {
        sweeps,
        moves,
        report: timer.report().clone(),
    }
}

/// Builds a symmetric histogram of clock-arrival adjustments with
/// `2·half_buckets` buckets covering `[-bound, +bound]` (paper Fig. 5).
/// Returns `(bucket_edges, counts)` where `bucket_edges[i]..bucket_edges[i+1]`
/// bounds bucket `i`.
pub fn skew_histogram(clocks: &ClockSchedule, half_buckets: usize) -> (Vec<f32>, Vec<usize>) {
    let buckets = half_buckets * 2;
    let bound = clocks.bound().max(1e-6);
    let width = 2.0 * bound / buckets as f32;
    let edges: Vec<f32> = (0..=buckets).map(|i| -bound + i as f32 * width).collect();
    let mut counts = vec![0usize; buckets];
    for &s in clocks.skews() {
        let idx = (((s + bound) / width) as usize).min(buckets - 1);
        counts[idx] += 1;
    }
    (edges, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};
    use rl_ccd_sta::analyze;

    fn setup(
        seed: u64,
    ) -> (
        rl_ccd_netlist::Netlist,
        TimingGraph,
        Constraints,
        ClockSchedule,
    ) {
        let d = generate(&DesignSpec::new("us", 800, TechNode::N7, seed));
        let graph = TimingGraph::new(&d.netlist);
        let cons = Constraints::with_period(d.period_ps);
        let clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 0.15 * d.period_ps, 5);
        (d.netlist, graph, cons, clocks)
    }

    #[test]
    fn nan_margin_does_not_panic_the_skew_engine() {
        // Regression: the per-sweep criticality sort used
        // `partial_cmp().expect(...)`; a poisoned (NaN) margin must flow
        // through the timer and the ranking without a panic, and the NaN
        // register simply never gets served.
        let (nl, graph, cons, mut clocks) = setup(23);
        let mut margins = EndpointMargins::zero(&nl);
        margins.set(0, f32::NAN);
        let out = run_useful_skew(
            &nl,
            &graph,
            &cons,
            &mut clocks,
            &margins,
            &UsefulSkewOpts::default(),
        );
        assert!(out.report.wns().is_finite());
        assert!(out.report.tns().is_finite());
        assert!(out.report.endpoint_slack(0).is_nan());
    }

    #[test]
    fn useful_skew_improves_tns() {
        let (nl, graph, cons, mut clocks) = setup(30);
        let margins = EndpointMargins::zero(&nl);
        let before = analyze(&nl, &graph, &cons, &clocks, &margins);
        let out = run_useful_skew(
            &nl,
            &graph,
            &cons,
            &mut clocks,
            &margins,
            &UsefulSkewOpts::default(),
        );
        assert!(
            out.report.tns() > before.tns(),
            "TNS should improve: {} -> {}",
            before.tns(),
            out.report.tns()
        );
        assert!(out.sweeps >= 1);
        assert!(out.moves >= 1);
        assert!(clocks.total_adjustment() > 0.0);
    }

    #[test]
    fn skews_respect_bound() {
        let (nl, graph, cons, mut clocks) = setup(22);
        let margins = EndpointMargins::zero(&nl);
        run_useful_skew(
            &nl,
            &graph,
            &cons,
            &mut clocks,
            &margins,
            &UsefulSkewOpts::default(),
        );
        let bound = clocks.bound();
        for &s in clocks.skews() {
            assert!(s.abs() <= bound + 1e-4);
        }
    }

    #[test]
    fn move_budget_is_respected() {
        let (nl, graph, cons, mut clocks) = setup(26);
        let margins = EndpointMargins::zero(&nl);
        let opts = UsefulSkewOpts {
            move_budget_frac: 0.1,
            ..UsefulSkewOpts::default()
        };
        let out = run_useful_skew(&nl, &graph, &cons, &mut clocks, &margins, &opts);
        // The budget basis is the violating-register count, which can never
        // exceed the register count.
        let cap = ((nl.flops().len() as f32 * 0.1).ceil() as usize).max(1);
        assert!(out.moves <= cap, "{} moves > cap {}", out.moves, cap);
    }

    #[test]
    fn no_hold_violations_created() {
        let (nl, graph, cons, mut clocks) = setup(23);
        let margins = EndpointMargins::zero(&nl);
        let before = analyze(&nl, &graph, &cons, &clocks, &margins);
        let out = run_useful_skew(
            &nl,
            &graph,
            &cons,
            &mut clocks,
            &margins,
            &UsefulSkewOpts::default(),
        );
        for i in 0..nl.endpoints().len() {
            let h = out.report.endpoint_hold_slack(i);
            if h.is_finite() && before.endpoint_hold_slack(i) > 0.0 {
                assert!(h > -1e-3, "endpoint {i} hold slack went negative: {h}");
            }
        }
    }

    #[test]
    fn engine_does_not_overfix_without_margins() {
        // Fix-to-zero: served endpoints end near or below zero slack, not
        // far above it (no wasted headroom).
        let (nl, graph, cons, mut clocks) = setup(27);
        let margins = EndpointMargins::zero(&nl);
        let before = analyze(&nl, &graph, &cons, &clocks, &margins);
        let out = run_useful_skew(
            &nl,
            &graph,
            &cons,
            &mut clocks,
            &margins,
            &UsefulSkewOpts::default(),
        );
        for (r, _) in nl.flops().iter().enumerate() {
            let ei = graph.endpoint_of_flop(r);
            if before.endpoint_slack(ei) < 0.0 && clocks.skew(r) > 0.0 {
                // Once positive, the engine had no reason to push further
                // than a single (damped) overshoot.
                assert!(
                    out.report.endpoint_slack(ei) < 0.25 * cons.period,
                    "endpoint {ei} absurdly over-fixed without margins"
                );
            }
        }
    }

    #[test]
    fn margins_redirect_skew_allocation() {
        // With a tight budget, margining an endpoint must pull service
        // toward its capture register.
        let (nl, graph, cons, clocks0) = setup(24);
        let zero = EndpointMargins::zero(&nl);
        let base_rep = analyze(&nl, &graph, &cons, &clocks0, &zero);
        let viol = base_rep.violating_endpoints();
        assert!(!viol.is_empty());
        // Pick the *least* critical violating register endpoint: under a
        // tight budget the plain engine likely never reaches it.
        let ei = *viol
            .iter()
            .rev()
            .find(|&&i| nl.endpoints()[i].is_register())
            .expect("violating register endpoint exists");
        let reg = nl
            .flop_index(nl.endpoints()[ei].cell())
            .expect("register index");
        let opts = UsefulSkewOpts {
            move_budget_frac: 0.15,
            serves_per_sweep_frac: 0.05,
            ..UsefulSkewOpts::default()
        };

        let mut clocks_plain = clocks0.clone();
        run_useful_skew(&nl, &graph, &cons, &mut clocks_plain, &zero, &opts);

        let mut margined = EndpointMargins::zero(&nl);
        margined.set(ei, base_rep.endpoint_slack(ei) - base_rep.wns());
        let mut clocks_m = clocks0.clone();
        run_useful_skew(&nl, &graph, &cons, &mut clocks_m, &margined, &opts);
        assert!(
            clocks_m.skew(reg) > clocks_plain.skew(reg) - 1e-3,
            "margin should pull the capture clock later: {} vs {}",
            clocks_m.skew(reg),
            clocks_plain.skew(reg)
        );
        assert!(
            clocks_m.skew(reg) > 0.0,
            "margined register should be served"
        );
    }

    #[test]
    fn histogram_covers_all_registers() {
        let (nl, graph, cons, mut clocks) = setup(25);
        run_useful_skew(
            &nl,
            &graph,
            &cons,
            &mut clocks,
            &EndpointMargins::zero(&nl),
            &UsefulSkewOpts::default(),
        );
        let (edges, counts) = skew_histogram(&clocks, 8);
        assert_eq!(edges.len(), 17);
        assert_eq!(counts.len(), 16);
        assert_eq!(counts.iter().sum::<usize>(), nl.flops().len());
    }
}
