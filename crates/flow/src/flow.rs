//! The placement-optimization flow (paper Fig. 1).
//!
//! Both columns of Fig. 1 — the default tool flow and the RL-enhanced flow —
//! run the *same* sequence of optimization steps; the only difference is the
//! endpoint-prioritization hook before useful skew. [`FlowRecipe::run`]
//! implements that shared sequence:
//!
//! 1. snapshot begin QoR (post global placement),
//! 2. a light pre-CCD data-path pass,
//! 3. **prioritization hook**: margin the selected endpoints to WNS
//!    (empty selection = the native flow),
//! 4. useful-skew optimization (margins applied),
//! 5. remove margins,
//! 6. main data-path optimization (buffering / sizing / pin swaps),
//! 7. useful-skew touch-up,
//! 8. power recovery,
//! 9. legalization jitter + final signoff STA.

use crate::datapath::{optimize_datapath_with_timer, recover_power_with_timer, DatapathOpts};
use crate::margin::{prioritization_margins, MarginMode};
use crate::metrics::{FlowResult, Qor};
use crate::useful_skew::{run_useful_skew_with_timer, UsefulSkewOpts};
use rl_ccd_netlist::{analyze_power, placement, EndpointId, GeneratedDesign, Netlist};
use rl_ccd_sta::{
    ClockSchedule, Constraints, EndpointMargins, IncrementalTimer, TimingGraph, TimingReport,
};
use std::time::Instant;

/// Every knob of the placement-optimization recipe. The *same* recipe must
/// be used for the default and the RL-enhanced flow (the paper stresses the
/// apples-to-apples comparison).
#[derive(Clone, Debug, PartialEq)]
pub struct FlowRecipe {
    /// Main useful-skew engine options.
    pub skew: UsefulSkewOpts,
    /// Touch-up useful-skew options (after data-path optimization).
    pub skew_touchup: UsefulSkewOpts,
    /// Light pre-CCD data-path pass.
    pub pre_datapath: DatapathOpts,
    /// Main data-path optimization.
    pub main_datapath: DatapathOpts,
    /// Slack floor (ps) for power recovery.
    pub recovery_slack: f32,
    /// How prioritized endpoints are margined.
    pub margin_mode: MarginMode,
    /// Clock insertion latency as a fraction of the period.
    pub clock_insertion_frac: f32,
    /// Clock-tree latency variation as a fraction of the period.
    pub clock_variation_frac: f32,
    /// Useful-skew bound as a fraction of the period.
    pub skew_bound_frac: f32,
    /// Legalization displacement, µm.
    pub legalize_disp: f32,
    /// Seed shared by the whole flow run (the paper pins the seed to remove
    /// run-to-run noise).
    pub seed: u64,
}

impl Default for FlowRecipe {
    fn default() -> Self {
        Self {
            skew: UsefulSkewOpts::default(),
            skew_touchup: UsefulSkewOpts {
                sweeps: 2,
                move_budget_frac: 0.02,
                ..UsefulSkewOpts::default()
            },
            pre_datapath: DatapathOpts {
                passes: 1,
                ops_per_pass: 0,
                ops_per_kcell: 80.0,
                ops_per_endpoint: 3,
                ..DatapathOpts::default()
            },
            main_datapath: DatapathOpts {
                passes: 5,
                ops_per_pass: 0,
                ops_per_kcell: 160.0,
                ..DatapathOpts::default()
            },
            recovery_slack: 40.0,
            margin_mode: MarginMode::OverFixToWns,
            clock_insertion_frac: 0.10,
            clock_variation_frac: 0.015,
            skew_bound_frac: 0.45,
            legalize_disp: 1.0,
            seed: 0xF10,
        }
    }
}

impl FlowRecipe {
    /// Builds the flow's clock schedule for `netlist` at `period` ps.
    pub fn clock_schedule(&self, netlist: &Netlist, period: f32) -> ClockSchedule {
        ClockSchedule::balanced(
            netlist,
            self.clock_insertion_frac * period,
            self.clock_variation_frac * period,
            self.skew_bound_frac * period,
            self.seed,
        )
    }

    /// Runs the complete placement-optimization flow on a fresh clone of
    /// `design`'s netlist, prioritizing `prioritized` endpoints for useful
    /// skew (pass an empty slice for the native tool flow).
    ///
    /// Returns the begin/final QoR, operation statistics, the final skew
    /// distribution, and the runtime.
    pub fn run(&self, design: &GeneratedDesign, prioritized: &[EndpointId]) -> FlowResult {
        self.run_traced(design, prioritized).0
    }

    /// Like [`FlowRecipe::run`], additionally returning the per-stage QoR
    /// trace — where in the flow each selection pays off (or doesn't).
    pub fn run_traced(
        &self,
        design: &GeneratedDesign,
        prioritized: &[EndpointId],
    ) -> (FlowResult, FlowTrace) {
        run_flow_impl(design, self, prioritized)
    }
}

fn qor(netlist: &Netlist, report: &TimingReport, period: f32, seed: u64) -> Qor {
    Qor {
        wns_ps: report.wns(),
        tns_ps: report.tns(),
        nve: report.nve(),
        power_mw: analyze_power(netlist, period, seed).total(),
    }
}

/// One stage checkpoint of a traced flow run.
#[derive(Clone, Debug, PartialEq)]
pub struct StageSnapshot {
    /// Stage name ("begin", "pre-datapath", "useful-skew", …).
    pub stage: &'static str,
    /// Worst negative slack after the stage, ps.
    pub wns_ps: f32,
    /// Total negative slack after the stage, ps.
    pub tns_ps: f64,
    /// Violating endpoints after the stage.
    pub nve: usize,
}

/// Per-stage QoR trace of one flow run, in execution order.
pub type FlowTrace = Vec<StageSnapshot>;

/// Records a stage boundary: pushes the trace snapshot and annotates the
/// stage's span with post-stage QoR and the TNS delta the stage produced.
fn end_stage(
    trace: &mut FlowTrace,
    span: &mut rl_ccd_obs::SpanGuard,
    stage: &'static str,
    wns_ps: f32,
    tns_ps: f64,
    nve: usize,
) {
    let prev_tns = trace.last().map_or(tns_ps, |s| s.tns_ps);
    span.record("wns_ps", wns_ps);
    span.record("tns_ps", tns_ps);
    span.record("tns_delta_ps", tns_ps - prev_tns);
    span.record("nve", nve);
    trace.push(StageSnapshot {
        stage,
        wns_ps,
        tns_ps,
        nve,
    });
}

fn run_flow_impl(
    design: &GeneratedDesign,
    recipe: &FlowRecipe,
    prioritized: &[EndpointId],
) -> (FlowResult, FlowTrace) {
    let start = Instant::now();
    let mut flow_span = rl_ccd_obs::span!(
        "flow.run",
        cells = design.netlist.cell_count(),
        period_ps = design.period_ps,
        prioritized = prioritized.len(),
    );
    let mut trace: FlowTrace = Vec::with_capacity(8);
    let mut netlist = design.netlist.clone();
    let period = design.period_ps;
    let constraints = Constraints::with_period(period);
    let mut clocks = recipe.clock_schedule(&netlist, period);
    let mut graph = TimingGraph::new(&netlist);
    let mut margins = EndpointMargins::zero(&netlist);

    // One incremental timer serves the whole flow: its construction is the
    // single full STA pass, every stage after that applies deltas through
    // it (with full recomputes only at the structural escape hatches:
    // buffer insertion inside datapath passes and legalization at signoff).
    // (1) Begin snapshot.
    let mut timer = {
        let mut span = rl_ccd_obs::span!("flow.begin_sta");
        let timer = IncrementalTimer::new(&netlist, &constraints, &clocks, &margins);
        end_stage(
            &mut trace,
            &mut span,
            "begin",
            timer.report().wns(),
            timer.report().tns(),
            timer.report().nve(),
        );
        timer
    };
    let begin = qor(&netlist, timer.report(), period, recipe.seed);

    // (2) Light pre-CCD data-path pass.
    let pre_report = {
        let mut span = rl_ccd_obs::span!("flow.pre_datapath");
        let (_, pre_report) = optimize_datapath_with_timer(
            &mut netlist,
            &mut graph,
            &mut timer,
            &recipe.pre_datapath,
        );
        end_stage(
            &mut trace,
            &mut span,
            "pre-datapath",
            pre_report.wns(),
            pre_report.tns(),
            pre_report.nve(),
        );
        pre_report
    };

    // (3) Prioritization hook: margin selected endpoints (Alg. 1 line 14).
    if !prioritized.is_empty() {
        let _span = rl_ccd_obs::span!("flow.margin", endpoints = prioritized.len());
        margins = prioritization_margins(&pre_report, prioritized, recipe.margin_mode, margins);
        timer.set_margins_from(&netlist, &margins);
    }

    // (4) Useful skew with margins applied, then (5) remove margins
    // (Alg. 1 line 16).
    let skew_out = {
        let mut span = rl_ccd_obs::span!("flow.useful_skew");
        let skew_out =
            run_useful_skew_with_timer(&netlist, &graph, &mut clocks, &mut timer, &recipe.skew);
        margins.clear();
        timer.set_margins_from(&netlist, &margins);
        span.record("sweeps", skew_out.sweeps);
        span.record("moves", skew_out.moves);
        end_stage(
            &mut trace,
            &mut span,
            "useful-skew",
            timer.report().wns(),
            timer.report().tns(),
            timer.report().nve(),
        );
        skew_out
    };

    // (6) Main data-path optimization.
    let op_stats = {
        let mut span = rl_ccd_obs::span!("flow.main_datapath");
        let (op_stats, main_report) = optimize_datapath_with_timer(
            &mut netlist,
            &mut graph,
            &mut timer,
            &recipe.main_datapath,
        );
        span.record("ops", op_stats.total());
        end_stage(
            &mut trace,
            &mut span,
            "main-datapath",
            main_report.wns(),
            main_report.tns(),
            main_report.nve(),
        );
        op_stats
    };

    // (7) Useful-skew touch-up.
    let touchup_out = {
        let mut span = rl_ccd_obs::span!("flow.skew_touchup");
        let out = run_useful_skew_with_timer(
            &netlist,
            &graph,
            &mut clocks,
            &mut timer,
            &recipe.skew_touchup,
        );
        span.record("sweeps", out.sweeps);
        span.record("moves", out.moves);
        out
    };

    // (8) Power recovery.
    let downsizes = {
        let mut span = rl_ccd_obs::span!("flow.power_recovery");
        let (downsizes, _) =
            recover_power_with_timer(&mut netlist, &mut timer, recipe.recovery_slack);
        span.record("downsizes", downsizes);
        downsizes
    };

    // (9) Legalization + signoff. Legalization moves every cell (all wire
    // loads change), so this is the full-recompute escape hatch.
    let final_qor = {
        let mut span = rl_ccd_obs::span!("flow.signoff");
        placement::legalize_jitter(&mut netlist, recipe.legalize_disp, recipe.seed);
        timer.full_recompute(&netlist);
        let final_report = timer.report();
        end_stage(
            &mut trace,
            &mut span,
            "signoff",
            final_report.wns(),
            final_report.tns(),
            final_report.nve(),
        );
        qor(&netlist, timer.report(), period, recipe.seed)
    };

    flow_span.record("wns_ps", final_qor.wns_ps);
    flow_span.record("tns_ps", final_qor.tns_ps);
    flow_span.record("tns_gain_pct", final_qor.tns_gain_pct(&begin));
    (
        FlowResult {
            begin,
            final_qor,
            op_stats,
            downsizes,
            skew_sweeps: skew_out.sweeps + touchup_out.sweeps,
            skews: clocks.skews().to_vec(),
            runtime_s: start.elapsed().as_secs_f64(),
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};
    use rl_ccd_sta::analyze;

    fn design(seed: u64) -> GeneratedDesign {
        generate(&DesignSpec::new("flow", 900, TechNode::N7, seed))
    }

    #[test]
    fn default_flow_improves_begin_qor() {
        let d = design(41);
        let res = FlowRecipe::default().run(&d, &[]);
        assert!(
            res.final_qor.tns_ps > res.begin.tns_ps,
            "flow should improve TNS: {} -> {}",
            res.begin.tns_ps,
            res.final_qor.tns_ps
        );
        assert!(res.final_qor.wns_ps >= res.begin.wns_ps);
        assert!(res.op_stats.total() > 0);
        assert!(res.runtime_s > 0.0);
        assert_eq!(res.skews.len(), d.netlist.flops().len());
    }

    #[test]
    fn trace_covers_all_stages_in_order() {
        let d = design(44);
        let (res, trace) = FlowRecipe::default().run_traced(&d, &[]);
        let stages: Vec<&str> = trace.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![
                "begin",
                "pre-datapath",
                "useful-skew",
                "main-datapath",
                "signoff"
            ]
        );
        // Trace endpoints agree with the result's begin/final QoR.
        assert_eq!(trace[0].tns_ps, res.begin.tns_ps);
        assert_eq!(
            trace.last().expect("non-empty").tns_ps,
            res.final_qor.tns_ps
        );
        // Signoff is at least as good as the begin state.
        assert!(trace.last().expect("non-empty").tns_ps >= trace[0].tns_ps);
    }

    #[test]
    fn flow_is_deterministic_given_seed() {
        let d = design(42);
        let a = FlowRecipe::default().run(&d, &[]);
        let b = FlowRecipe::default().run(&d, &[]);
        assert_eq!(a.final_qor.tns_ps, b.final_qor.tns_ps);
        assert_eq!(a.final_qor.nve, b.final_qor.nve);
        assert_eq!(a.skews, b.skews);
    }

    #[test]
    fn prioritization_changes_the_outcome() {
        let d = design(43);
        let base = FlowRecipe::default().run(&d, &[]);
        // Prioritize the worst handful of begin violations.
        let graph = TimingGraph::new(&d.netlist);
        let recipe = FlowRecipe::default();
        let clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
        let rep = analyze(
            &d.netlist,
            &graph,
            &Constraints::with_period(d.period_ps),
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        // Pick the mildest violations: their margin-to-WNS is largest, so
        // the skew queue must reorder.
        let chosen: Vec<EndpointId> = rep
            .violating_endpoints()
            .into_iter()
            .rev()
            .take(8)
            .map(EndpointId::new)
            .collect();
        let prio = recipe.run(&d, &chosen);
        assert_ne!(
            base.final_qor.tns_ps, prio.final_qor.tns_ps,
            "prioritization must alter the result"
        );
        // Begin state is identical either way.
        assert_eq!(base.begin.tns_ps, prio.begin.tns_ps);
    }
}
