//! Endpoint margin policies (Algorithm 1, lines 14 & 16).
//!
//! RL-CCD prioritizes endpoints by *worsening their apparent timing to the
//! design WNS* before useful skew, so the skew engine over-allocates clock
//! adjustment to them ("over-fix"). The margins are removed before the
//! remaining placement optimization. The paper reports that the over-fix
//! route works significantly better than under-fixing; both are implemented
//! so the ablation bench can reproduce that comparison.

use rl_ccd_netlist::EndpointId;
use rl_ccd_sta::{EndpointMargins, TimingReport};

/// How prioritized endpoints are margined before useful skew.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MarginMode {
    /// Worsen each selected endpoint to the design WNS (the paper's method):
    /// the skew engine sees them as the most critical and over-fixes them.
    #[default]
    OverFixToWns,
    /// Make each selected endpoint *look healthier* by half its violation,
    /// so the skew engine under-serves it and leaves the fix to the
    /// data-path engine (the alternative the paper found inferior).
    UnderFix,
}

/// Computes the margins that implement `mode` for the `selected` endpoints,
/// given the current timing `report`.
///
/// Margins are *subtracted from required time*: positive values worsen an
/// endpoint. For [`MarginMode::OverFixToWns`] the margin is
/// `slack(e) − WNS ≥ 0`, which drops the endpoint's apparent slack exactly
/// to WNS; endpoints already at WNS get zero margin. Margins are set-based
/// (an earlier experiment with per-rank margin offsets froze the skew
/// engine's adaptive re-prioritization between sweeps and hurt badly).
pub fn prioritization_margins(
    report: &TimingReport,
    selected: &[EndpointId],
    mode: MarginMode,
    mut margins: EndpointMargins,
) -> EndpointMargins {
    margins.clear();
    let wns = report.wns();
    for &e in selected {
        let i = e.index();
        let slack = report.endpoint_slack(i);
        let m = match mode {
            MarginMode::OverFixToWns => (slack - wns).max(0.0),
            MarginMode::UnderFix => {
                if slack < 0.0 {
                    0.5 * slack // negative margin: apparent slack improves
                } else {
                    0.0
                }
            }
        };
        margins.set(i, m);
    }
    rl_ccd_obs::counter!("flow.margin.endpoints", selected.len());
    margins
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};
    use rl_ccd_sta::{analyze, ClockSchedule, Constraints, TimingGraph};

    fn setup() -> (
        rl_ccd_netlist::Netlist,
        TimingGraph,
        ClockSchedule,
        Constraints,
        TimingReport,
    ) {
        let d = generate(&DesignSpec::new("m", 600, TechNode::N7, 6));
        let graph = TimingGraph::new(&d.netlist);
        let clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 0.12 * d.period_ps, 3);
        let cons = Constraints::with_period(d.period_ps);
        let rep = analyze(
            &d.netlist,
            &graph,
            &cons,
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        (d.netlist, graph, clocks, cons, rep)
    }

    #[test]
    fn overfix_drops_selected_to_wns() {
        let (nl, graph, clocks, cons, rep) = setup();
        let viol = rep.violating_endpoints();
        assert!(viol.len() >= 2);
        // Select the *least* violating endpoint: a large margin is needed.
        let chosen = EndpointId::new(viol[viol.len() - 1]);
        let margins = prioritization_margins(
            &rep,
            &[chosen],
            MarginMode::OverFixToWns,
            EndpointMargins::zero(&nl),
        );
        let rep2 = analyze(&nl, &graph, &cons, &clocks, &margins);
        assert!(
            (rep2.endpoint_slack(chosen.index()) - rep.wns()).abs() < 1e-2,
            "selected endpoint should sit at WNS: {} vs {}",
            rep2.endpoint_slack(chosen.index()),
            rep.wns()
        );
    }

    #[test]
    fn worst_endpoint_gets_zero_margin() {
        let (nl, _, _, _, rep) = setup();
        let viol = rep.violating_endpoints();
        let worst = EndpointId::new(viol[0]);
        let margins = prioritization_margins(
            &rep,
            &[worst],
            MarginMode::OverFixToWns,
            EndpointMargins::zero(&nl),
        );
        assert!(margins.get(worst.index()).abs() < 1e-4);
    }

    #[test]
    fn underfix_improves_apparent_slack() {
        let (nl, graph, clocks, cons, rep) = setup();
        let viol = rep.violating_endpoints();
        let chosen = EndpointId::new(viol[0]);
        let margins = prioritization_margins(
            &rep,
            &[chosen],
            MarginMode::UnderFix,
            EndpointMargins::zero(&nl),
        );
        assert!(margins.get(chosen.index()) < 0.0);
        let rep2 = analyze(&nl, &graph, &cons, &clocks, &margins);
        assert!(rep2.endpoint_slack(chosen.index()) > rep.endpoint_slack(chosen.index()));
    }

    #[test]
    fn unselected_endpoints_untouched() {
        let (nl, _, _, _, rep) = setup();
        let viol = rep.violating_endpoints();
        let chosen = EndpointId::new(viol[0]);
        let margins = prioritization_margins(
            &rep,
            &[chosen],
            MarginMode::OverFixToWns,
            EndpointMargins::zero(&nl),
        );
        for i in 0..nl.endpoints().len() {
            if i != chosen.index() {
                assert_eq!(margins.get(i), 0.0);
            }
        }
    }
}
