//! Placement-optimization / CCD flow simulator — the "commercial tool"
//! substrate of the RL-CCD reproduction.
//!
//! The paper integrates with Synopsys ICC2; this crate provides the open
//! replacement: a useful-skew engine (iterative, hold-aware slack balancing
//! of per-register clock arrivals), a budgeted data-path optimizer (sizing,
//! buffering, pin-swap restructuring, power recovery), endpoint-margin
//! prioritization, and the full placement-optimization flow of the paper's
//! Fig. 1 with its single point of difference: which endpoints are
//! prioritized for useful skew.
//!
//! # Quick start
//! ```
//! use rl_ccd_netlist::{generate, DesignSpec, TechNode};
//! use rl_ccd_flow::FlowRecipe;
//!
//! let design = generate(&DesignSpec::new("demo", 400, TechNode::N7, 1));
//! let result = FlowRecipe::default().run(&design, &[]);
//! assert!(result.final_qor.tns_ps >= result.begin.tns_ps);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod datapath;
pub mod flow;
pub mod holdfix;
pub mod margin;
pub mod metrics;
pub mod sensitivity;
pub mod useful_skew;

pub use datapath::{optimize_datapath, recover_power, DatapathOpts, OpStats};
pub use flow::{FlowRecipe, FlowTrace, StageSnapshot};
pub use holdfix::{fix_hold, HoldFixOpts};
pub use margin::{prioritization_margins, MarginMode};
pub use metrics::{FlowResult, Qor};
pub use sensitivity::{endpoint_sensitivities, EndpointSensitivity};
pub use useful_skew::{run_useful_skew, skew_histogram, SkewOutcome, UsefulSkewOpts};
