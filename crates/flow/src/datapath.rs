//! The data-path optimization engine: gate sizing, buffer insertion, and
//! pin-swap restructuring under a shared effort budget, plus the power
//! recovery pass that downsizes comfortable cells.
//!
//! The budget is the flow-wise coupling the paper exploits: endpoints that
//! useful skew already over-fixed drop out of the violation list, so their
//! share of the budget flows to the endpoints that genuinely need logic
//! fixes.

use rl_ccd_netlist::{CellId, Netlist};
use rl_ccd_sta::{
    worst_path, ClockSchedule, Constraints, EndpointMargins, IncrementalTimer, TimingGraph,
    TimingReport,
};

/// Tuning knobs of the data-path optimizer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatapathOpts {
    /// Optimization passes; each re-runs STA and walks the violation list.
    pub passes: usize,
    /// Total operation budget per pass (shared across endpoints).
    pub ops_per_pass: usize,
    /// Additional per-pass budget per 1000 cells (commercial tools scale
    /// effort with design size). Zero = purely absolute budget.
    pub ops_per_kcell: f32,
    /// Maximum operations spent on a single endpoint per pass.
    pub ops_per_endpoint: usize,
    /// Minimum driver→sink segment length (µm) that justifies a buffer.
    pub buffer_min_len: f32,
    /// Minimum estimated gain (ps) for an upsize to be applied.
    pub min_gain: f32,
}

impl Default for DatapathOpts {
    fn default() -> Self {
        Self {
            passes: 3,
            ops_per_pass: 400,
            ops_per_kcell: 0.0,
            ops_per_endpoint: 6,
            buffer_min_len: 30.0,
            min_gain: 0.5,
        }
    }
}

impl DatapathOpts {
    /// The effective per-pass budget for a design with `cells` cells.
    pub fn pass_budget(&self, cells: usize) -> usize {
        self.ops_per_pass + (self.ops_per_kcell * cells as f32 / 1000.0) as usize
    }
}

/// Counts of applied data-path operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Gates replaced by a stronger drive.
    pub upsizes: usize,
    /// Gates replaced by a weaker drive (power recovery).
    pub downsizes: usize,
    /// Input pins swapped (late signal moved to the fast pin).
    pub pin_swaps: usize,
    /// Buffers inserted on long segments.
    pub buffers: usize,
    /// Inverters absorbed into their NAND/NOR drivers (restructuring).
    pub restructures: usize,
}

impl OpStats {
    /// Total operations applied.
    pub fn total(&self) -> usize {
        self.upsizes + self.downsizes + self.pin_swaps + self.buffers + self.restructures
    }
}

/// Attempts one improvement on `cell` (a combinational cell on a violating
/// path). Returns `true` if an operation was applied. `dirty` is set when
/// the netlist gained cells (graph rebuild needed); cells changed in place
/// are appended to `touched` so the caller can re-time them incrementally.
fn try_improve_cell(
    netlist: &mut Netlist,
    report: &TimingReport,
    cell: CellId,
    opts: &DatapathOpts,
    stats: &mut OpStats,
    dirty: &mut bool,
    touched: &mut Vec<CellId>,
) -> bool {
    let n_inputs = netlist.cell(cell).inputs.len();

    // --- Pin swap: move the latest-arriving input to pin 0 (fast pin). ---
    if n_inputs > 1 {
        let arrivals: Vec<f32> = netlist
            .cell(cell)
            .inputs
            .iter()
            .map(|&net| report.out_arrival(netlist.net(net).driver))
            .collect();
        let worst_pin = (0..n_inputs)
            .max_by(|&a, &b| arrivals[a].total_cmp(&arrivals[b]))
            .expect("has inputs");
        if worst_pin != 0 && arrivals[worst_pin] > arrivals[0] + 1e-3 {
            netlist.swap_pins(cell, 0, worst_pin as u8);
            stats.pin_swaps += 1;
            touched.push(cell);
            return true;
        }
    }

    // --- Restructure: absorb a critical single-load inverter into its
    // NAND2/NOR2 driver (NAND+INV ≡ AND, NOR+INV ≡ OR), removing one logic
    // level. The bypassed inverter stays as an unswept dead cell — its
    // input capacitance remains on the driver net, like a real pre-cleanup
    // netlist state.
    if netlist.kind(cell) == rl_ccd_netlist::GateKind::Inv {
        let in_net = netlist.cell(cell).inputs[0];
        let drv = netlist.net(in_net).driver;
        let single_load = netlist.net(in_net).sinks.len() == 1;
        let absorbed = match netlist.kind(drv) {
            rl_ccd_netlist::GateKind::Nand2 => Some(rl_ccd_netlist::GateKind::And2),
            rl_ccd_netlist::GateKind::Nor2 => Some(rl_ccd_netlist::GateKind::Or2),
            _ => None,
        };
        if single_load {
            if let Some(new_kind) = absorbed {
                let drive = netlist.library().cell(netlist.cell(drv).lib).drive;
                let new_lib = netlist.library().variant(new_kind, drive);
                netlist.remap(drv, new_lib);
                let inv_out = netlist.cell(cell).output.expect("inverter drives");
                netlist.transfer_sinks(inv_out, in_net);
                stats.restructures += 1;
                touched.push(drv);
                touched.push(cell);
                return true;
            }
        }
    }

    // --- Upsize: worth it when resistance·load dominates the cap penalty. --
    let upsize_to = {
        let lib = netlist.library();
        let lc_id = netlist.cell(cell).lib;
        lib.upsize(lc_id).and_then(|bigger| {
            let out_net = netlist.cell(cell).output.expect("comb cell drives");
            let load = netlist.net_load(out_net);
            let old = lib.cell(lc_id);
            let new = lib.cell(bigger);
            // Gain at this cell minus the extra input capacitance pushed
            // onto *every* input driver. Any driver may carry the critical
            // path, and when several pins share one net (a register launch
            // net feeding many side pins is common) the per-pin penalties
            // on that driver genuinely add up — counting only the
            // worst-arrival driver lets a sweep of individually-"improving"
            // upsizes overload a shared launch net and regress TNS.
            let upstream_penalty: f32 = netlist
                .cell(cell)
                .inputs
                .iter()
                .map(|&net| {
                    let d = netlist.net(net).driver;
                    lib.cell(netlist.cell(d).lib).resistance * (new.input_cap - old.input_cap)
                })
                .sum();
            let gain = (old.resistance - new.resistance) * load - upstream_penalty
                + (old.intrinsic - new.intrinsic);
            (gain > opts.min_gain).then_some(bigger)
        })
    };
    if let Some(bigger) = upsize_to {
        netlist.resize(cell, bigger);
        stats.upsizes += 1;
        touched.push(cell);
        return true;
    }

    // --- Buffer the longest input segment, if splitting it actually wins. -
    // Wire delay is quadratic in length, so halving a long segment helps —
    // but the buffer adds its own intrinsic + drive delay and swaps the
    // sink's pin cap for its own on the driver net. Inserting without this
    // check turns marginal (≈`buffer_min_len`) segments into net losses.
    let mut best: Option<(usize, f32)> = None;
    for (pin, &net) in netlist.cell(cell).inputs.iter().enumerate() {
        let len = netlist.segment_length(net, cell);
        if len >= opts.buffer_min_len && best.map(|(_, l)| len > l).unwrap_or(true) {
            best = Some((pin, len));
        }
    }
    if let Some((pin, len)) = best {
        let net = netlist.cell(cell).inputs[pin];
        let drv = netlist.net(net).driver;
        let lib = netlist.library();
        let buf_lib = lib.variant(rl_ccd_netlist::GateKind::Buf, rl_ccd_netlist::Drive::X4);
        let buf = lib.cell(buf_lib);
        let sink_cap = lib.cell(netlist.cell(cell).lib).input_cap;
        let wire = lib.wire();
        let half = 0.5 * len;
        let old_delay = wire.delay(len, sink_cap);
        let new_delay = wire.delay(half, buf.input_cap)
            + buf.intrinsic
            + buf.resistance * (wire.cap(half) + sink_cap)
            + wire.delay(half, sink_cap);
        let driver_delta = lib.cell(netlist.cell(drv).lib).resistance * (buf.input_cap - sink_cap);
        if old_delay - new_delay - driver_delta > opts.min_gain {
            let mid = netlist.cell(drv).loc.midpoint(netlist.cell(cell).loc);
            netlist.insert_buffer(net, &[(cell, pin as u8)], buf_lib, mid);
            stats.buffers += 1;
            *dirty = true;
            return true;
        }
    }
    false
}

/// Runs the budgeted data-path optimizer.
///
/// Each pass analyzes timing, walks violating endpoints worst-first, and
/// applies up to `ops_per_endpoint` improving operations along each
/// endpoint's worst path until the pass budget runs out. Returns the
/// operation counts and the final timing report.
pub fn optimize_datapath(
    netlist: &mut Netlist,
    graph: &mut TimingGraph,
    constraints: &Constraints,
    clocks: &ClockSchedule,
    margins: &EndpointMargins,
    opts: &DatapathOpts,
) -> (OpStats, TimingReport) {
    let mut timer = IncrementalTimer::new(netlist, constraints, clocks, margins);
    optimize_datapath_with_timer(netlist, graph, &mut timer, opts)
}

/// Like [`optimize_datapath`], but re-times through an existing
/// [`IncrementalTimer`]: in-place operations (sizing, pin swaps,
/// restructures) are re-timed per pass via `touch_cells`, and only buffer
/// insertion — which adds cells — falls back to the timer's
/// `full_recompute` escape hatch. The timer must already reflect the
/// netlist and the clocks/margins the caller wants applied; on return it
/// reflects the optimized netlist.
pub fn optimize_datapath_with_timer(
    netlist: &mut Netlist,
    graph: &mut TimingGraph,
    timer: &mut IncrementalTimer,
    opts: &DatapathOpts,
) -> (OpStats, TimingReport) {
    let mut stats = OpStats::default();
    for _ in 0..opts.passes {
        // The whole pass works from a snapshot of timing at pass start
        // (matching the previous per-pass `analyze` semantics); edits are
        // synced to the timer in one batch at pass end.
        let report = timer.report().clone();
        if report.nve() == 0 {
            break;
        }
        let pass_budget = opts.pass_budget(netlist.cell_count());
        let mut budget = pass_budget;
        let mut dirty = false;
        let mut touched: Vec<CellId> = Vec::new();
        for ei in report.violating_endpoints() {
            if budget == 0 {
                break;
            }
            let path = worst_path(netlist, &report, ei);
            let mut spent = 0usize;
            // Walk from the endpoint backwards: fixes near the endpoint act
            // on the largest load accumulation first.
            for hop in path.iter().rev() {
                if spent >= opts.ops_per_endpoint || budget == 0 {
                    break;
                }
                if !netlist.kind(hop.cell).is_combinational() {
                    continue;
                }
                if try_improve_cell(
                    netlist,
                    &report,
                    hop.cell,
                    opts,
                    &mut stats,
                    &mut dirty,
                    &mut touched,
                ) {
                    spent += 1;
                    budget -= 1;
                }
            }
        }
        if dirty {
            *graph = TimingGraph::new(netlist);
            timer.full_recompute(netlist);
        } else if !touched.is_empty() {
            timer.touch_cells(netlist, &touched);
        }
        if budget == pass_budget {
            break; // nothing applied; further passes are no-ops
        }
    }
    rl_ccd_obs::with_recorder(|r| {
        let m = r.metrics();
        m.counter("flow.datapath.upsizes").add(stats.upsizes as u64);
        m.counter("flow.datapath.pin_swaps")
            .add(stats.pin_swaps as u64);
        m.counter("flow.datapath.buffers").add(stats.buffers as u64);
        m.counter("flow.datapath.restructures")
            .add(stats.restructures as u64);
    });
    (stats, timer.report().clone())
}

/// Power recovery: downsizes combinational cells whose worst-path slack
/// exceeds `slack_floor` ps, as long as the estimated delay increase fits in
/// half the available slack. Returns the number of downsizes applied and the
/// final report.
pub fn recover_power(
    netlist: &mut Netlist,
    graph: &TimingGraph,
    constraints: &Constraints,
    clocks: &ClockSchedule,
    margins: &EndpointMargins,
    slack_floor: f32,
) -> (usize, TimingReport) {
    let mut timer = IncrementalTimer::new(netlist, constraints, clocks, margins);
    let out = recover_power_with_timer(netlist, &mut timer, slack_floor);
    let _ = graph; // retained for API stability; the timer owns its topology
    out
}

/// Like [`recover_power`], but re-times through an existing
/// [`IncrementalTimer`]: the downsizing decisions use the timer's current
/// report and the applied downsizes are re-timed in one incremental batch.
pub fn recover_power_with_timer(
    netlist: &mut Netlist,
    timer: &mut IncrementalTimer,
    slack_floor: f32,
) -> (usize, TimingReport) {
    let report = timer.report().clone();
    let mut applied = 0usize;
    let lib = netlist.library().clone();
    let candidates: Vec<CellId> = netlist
        .cell_ids()
        .filter(|&c| netlist.kind(c).is_combinational())
        .filter(|&c| {
            let s = report.cell_slack(c);
            s.is_finite() && s > slack_floor
        })
        .collect();
    let mut touched: Vec<CellId> = Vec::new();
    for cell in candidates {
        let lc_id = netlist.cell(cell).lib;
        if let Some(smaller) = lib.downsize(lc_id) {
            let out_net = netlist.cell(cell).output.expect("comb drives");
            let load = netlist.net_load(out_net);
            let old = lib.cell(lc_id);
            let new = lib.cell(smaller);
            let delay_increase =
                (new.resistance - old.resistance) * load + (new.intrinsic - old.intrinsic);
            if delay_increase < 0.5 * (report.cell_slack(cell) - slack_floor) {
                netlist.resize(cell, smaller);
                touched.push(cell);
                applied += 1;
            }
        }
    }
    if !touched.is_empty() {
        timer.touch_cells(netlist, &touched);
    }
    rl_ccd_obs::counter!("flow.power.downsizes", applied);
    (applied, timer.report().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{analyze_power, generate, DesignSpec, TechNode};
    use rl_ccd_sta::analyze;

    fn setup(
        seed: u64,
    ) -> (
        rl_ccd_netlist::Netlist,
        TimingGraph,
        Constraints,
        ClockSchedule,
    ) {
        let d = generate(&DesignSpec::new("dp", 800, TechNode::N7, seed));
        let graph = TimingGraph::new(&d.netlist);
        let cons = Constraints::with_period(d.period_ps);
        let clocks = ClockSchedule::balanced(&d.netlist, 80.0, 4.0, 0.15 * d.period_ps, 5);
        (d.netlist, graph, cons, clocks)
    }

    #[test]
    fn datapath_improves_tns() {
        let (mut nl, mut graph, cons, clocks) = setup(31);
        let margins = EndpointMargins::zero(&nl);
        let before = analyze(&nl, &graph, &cons, &clocks, &margins);
        let (stats, after) = optimize_datapath(
            &mut nl,
            &mut graph,
            &cons,
            &clocks,
            &margins,
            &DatapathOpts::default(),
        );
        assert!(stats.total() > 0, "optimizer should act: {stats:?}");
        assert!(
            after.tns() > before.tns(),
            "TNS should improve: {} -> {}",
            before.tns(),
            after.tns()
        );
        assert!(nl.check().is_empty(), "{:?}", nl.check());
    }

    #[test]
    fn budget_limits_work() {
        let (mut nl, mut graph, cons, clocks) = setup(32);
        let margins = EndpointMargins::zero(&nl);
        let tight = DatapathOpts {
            passes: 1,
            ops_per_pass: 5,
            ..DatapathOpts::default()
        };
        let (stats, _) = optimize_datapath(&mut nl, &mut graph, &cons, &clocks, &margins, &tight);
        assert!(stats.total() <= 5, "budget exceeded: {stats:?}");
    }

    #[test]
    fn power_recovery_reduces_power_without_breaking_timing() {
        let (mut nl, mut graph, cons, clocks) = setup(33);
        let margins = EndpointMargins::zero(&nl);
        // First fix timing a bit so there is slack to recover.
        optimize_datapath(
            &mut nl,
            &mut graph,
            &cons,
            &clocks,
            &margins,
            &DatapathOpts::default(),
        );
        let before_power = analyze_power(&nl, cons.period, 1).total();
        let before = analyze(&nl, &graph, &cons, &clocks, &margins);
        let (applied, after) = recover_power(&mut nl, &graph, &cons, &clocks, &margins, 40.0);
        assert!(applied > 0, "some cells should downsize");
        let after_power = analyze_power(&nl, cons.period, 1).total();
        assert!(after_power < before_power, "power should drop");
        // TNS does not get dramatically worse.
        assert!(
            after.tns() >= before.tns() * 1.2 - 1.0,
            "{} vs {}",
            after.tns(),
            before.tns()
        );
        assert!(nl.check().is_empty());
    }

    #[test]
    fn restructure_absorbs_inverter_and_shortens_path() {
        use rl_ccd_netlist::{Drive, GateKind, Library, NetlistBuilder, Point};
        // pi -> NAND2 -> INV -> flop, second NAND input from the flop.
        let mut b = NetlistBuilder::new("restruct", Library::new(rl_ccd_netlist::TechNode::N7));
        let pi = b.input(Point::new(0.0, 0.0));
        let nand = b.gate(GateKind::Nand2, Drive::X1, Point::new(10.0, 0.0));
        let inv = b.gate(GateKind::Inv, Drive::X1, Point::new(20.0, 0.0));
        let f = b.flop(Drive::X1, Point::new(30.0, 0.0));
        b.drive(pi, nand);
        b.drive(f, nand);
        b.drive(nand, inv);
        b.drive(inv, f);
        let mut nl = b.finish().expect("valid");
        let mut graph = TimingGraph::new(&nl);
        // A period tight enough that the single endpoint violates.
        let cons = Constraints::with_period(30.0);
        let clocks = rl_ccd_sta::ClockSchedule::balanced(&nl, 0.0, 0.0, 0.0, 1);
        let margins = EndpointMargins::zero(&nl);
        let before = analyze(&nl, &graph, &cons, &clocks, &margins);
        let (stats, after) = optimize_datapath(
            &mut nl,
            &mut graph,
            &cons,
            &clocks,
            &margins,
            &DatapathOpts {
                passes: 1,
                ops_per_pass: 4,
                buffer_min_len: 1e9, // disable buffering for a clean check
                ..DatapathOpts::default()
            },
        );
        assert!(
            stats.restructures >= 1,
            "inverter should be absorbed: {stats:?}"
        );
        // The NAND became an AND and the flop now hangs off its net.
        let and_cell = nl
            .cell_ids()
            .find(|&c| nl.kind(c) == GateKind::And2)
            .expect("remapped to AND2");
        let and_net = nl.cell(and_cell).output.expect("drives");
        assert!(nl
            .net(and_net)
            .sinks
            .iter()
            .any(|&(c, _)| nl.kind(c) == GateKind::Dff));
        // One level shorter → endpoint slack improves.
        assert!(after.endpoint_slack(0) > before.endpoint_slack(0));
        assert!(nl.check().is_empty());
    }

    #[test]
    fn op_stats_total_sums_fields() {
        let s = OpStats {
            upsizes: 1,
            downsizes: 2,
            pin_swaps: 3,
            buffers: 4,
            restructures: 5,
        };
        assert_eq!(s.total(), 15);
    }
}
