//! Hold fixing: padding short paths with delay buffers.
//!
//! Useful skew trades setup slack against hold slack; commercial CCD flows
//! therefore run a hold-fixing pass that inserts small delay buffers on the
//! shortest paths into any hold-violating register. The skew engine's
//! guards keep designs hold-clean in normal operation, so this pass is a
//! safety net — and a prerequisite for experimenting with more aggressive
//! skew settings (smaller hold floors, larger bounds).

use rl_ccd_netlist::{Drive, GateKind, Netlist};
use rl_ccd_sta::{analyze, ClockSchedule, Constraints, EndpointMargins, TimingGraph, TimingReport};

/// Tuning knobs of the hold-fixing pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HoldFixOpts {
    /// Fix endpoints whose hold slack is below this many ps.
    pub target_slack: f32,
    /// Maximum delay buffers inserted per endpoint.
    pub max_buffers_per_endpoint: usize,
    /// Maximum total buffers inserted by the pass.
    pub max_total_buffers: usize,
}

impl Default for HoldFixOpts {
    fn default() -> Self {
        Self {
            target_slack: 0.0,
            max_buffers_per_endpoint: 4,
            max_total_buffers: 200,
        }
    }
}

/// Inserts min-delay padding until no register endpoint violates hold (or
/// budgets run out). Returns the number of buffers inserted and the final
/// report.
///
/// Each round pads the data input of every hold-violating endpoint with one
/// X1 buffer placed at the endpoint cell (shortest wire, smallest cell —
/// the classic hold-fix move), then re-analyzes. Setup slack on those paths
/// shrinks by the pad delay, which is why the pass runs *after* setup
/// optimization and only where hold is actually violated.
pub fn fix_hold(
    netlist: &mut Netlist,
    graph: &mut TimingGraph,
    constraints: &Constraints,
    clocks: &ClockSchedule,
    opts: &HoldFixOpts,
) -> (usize, TimingReport) {
    let margins = EndpointMargins::zero(netlist);
    let mut inserted = 0usize;
    for _round in 0..opts.max_buffers_per_endpoint {
        let report = analyze(netlist, graph, constraints, clocks, &margins);
        let victims: Vec<usize> = (0..netlist.endpoints().len())
            .filter(|&i| {
                let h = report.endpoint_hold_slack(i);
                h.is_finite() && h < opts.target_slack
            })
            .collect();
        if victims.is_empty() || inserted >= opts.max_total_buffers {
            break;
        }
        let buf_lib = netlist.library().variant(GateKind::Buf, Drive::X1);
        let mut any = false;
        for ei in victims {
            if inserted >= opts.max_total_buffers {
                break;
            }
            let cell = netlist.endpoints()[ei].cell();
            let net = netlist.cell(cell).inputs[0];
            // Find this endpoint's sink entry on the net.
            let pin = netlist
                .net(net)
                .sinks
                .iter()
                .find(|&&(c, _)| c == cell)
                .map(|&(_, p)| p)
                .expect("endpoint is a sink of its data net");
            let loc = netlist.cell(cell).loc;
            netlist.insert_buffer(net, &[(cell, pin)], buf_lib, loc);
            inserted += 1;
            any = true;
        }
        if !any {
            break;
        }
        *graph = TimingGraph::new(netlist);
    }
    let report = analyze(netlist, graph, constraints, clocks, &margins);
    rl_ccd_obs::counter!("flow.holdfix.buffers", inserted);
    (inserted, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    /// Builds a design and deliberately advances launcher clocks to
    /// manufacture hold violations.
    fn broken_hold() -> (
        rl_ccd_netlist::Netlist,
        TimingGraph,
        Constraints,
        ClockSchedule,
    ) {
        let d = generate(&DesignSpec::new("hold", 600, TechNode::N7, 37));
        let graph = TimingGraph::new(&d.netlist);
        let cons = Constraints::with_period(d.period_ps);
        let mut clocks =
            ClockSchedule::balanced(&d.netlist, 0.1 * d.period_ps, 2.0, d.period_ps, 5);
        // Advance every register's clock hard: min paths now violate hold.
        for r in 0..d.netlist.flops().len() {
            if r % 2 == 0 {
                clocks.adjust(r, -60.0);
            } else {
                clocks.adjust(r, 40.0);
            }
        }
        (d.netlist, graph, cons, clocks)
    }

    #[test]
    fn hold_fix_removes_violations() {
        let (mut nl, mut graph, cons, clocks) = broken_hold();
        let margins = EndpointMargins::zero(&nl);
        let before = analyze(&nl, &graph, &cons, &clocks, &margins);
        let broken_before = (0..nl.endpoints().len())
            .filter(|&i| {
                let h = before.endpoint_hold_slack(i);
                h.is_finite() && h < 0.0
            })
            .count();
        assert!(broken_before > 0, "setup: no hold violations to fix");
        let (inserted, after) =
            fix_hold(&mut nl, &mut graph, &cons, &clocks, &HoldFixOpts::default());
        assert!(inserted > 0);
        let broken_after = (0..nl.endpoints().len())
            .filter(|&i| {
                let h = after.endpoint_hold_slack(i);
                h.is_finite() && h < 0.0
            })
            .count();
        assert!(
            broken_after < broken_before,
            "hold violations should shrink: {broken_before} -> {broken_after}"
        );
        assert!(nl.check().is_empty(), "{:?}", nl.check());
    }

    #[test]
    fn budgets_bound_the_pass() {
        let (mut nl, mut graph, cons, clocks) = broken_hold();
        let opts = HoldFixOpts {
            max_total_buffers: 3,
            ..HoldFixOpts::default()
        };
        let (inserted, _) = fix_hold(&mut nl, &mut graph, &cons, &clocks, &opts);
        assert!(inserted <= 3);
    }

    #[test]
    fn pass_converges_to_hold_clean_or_exhausts_budget() {
        // Generator designs can carry a few port-path hold quirks (input
        // delay < insertion latency); the pass must clean them up and stop.
        let d = generate(&DesignSpec::new("clean", 500, TechNode::N7, 38));
        let mut nl = d.netlist.clone();
        let mut graph = TimingGraph::new(&nl);
        let cons = Constraints::with_period(d.period_ps);
        let clocks = ClockSchedule::balanced(&nl, 0.1 * d.period_ps, 2.0, d.period_ps, 5);
        let opts = HoldFixOpts {
            max_buffers_per_endpoint: 8,
            max_total_buffers: 2000,
            ..HoldFixOpts::default()
        };
        let (inserted, after) = fix_hold(&mut nl, &mut graph, &cons, &clocks, &opts);
        let broken_after = (0..nl.endpoints().len())
            .filter(|&i| {
                let h = after.endpoint_hold_slack(i);
                h.is_finite() && h < 0.0
            })
            .count();
        assert_eq!(broken_after, 0, "pass should reach hold-clean");
        // Idempotent: a second run does nothing.
        let (again, _) = fix_hold(&mut nl, &mut graph, &cons, &clocks, &opts);
        assert_eq!(again, 0, "second pass must be a no-op (first: {inserted})");
    }
}
