//! Quality-of-results containers shared by the flow and the benches.

use crate::datapath::OpStats;

/// A QoR snapshot: the four quantities Table II reports per flow stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Qor {
    /// Worst negative slack, ps (≤ 0).
    pub wns_ps: f32,
    /// Total negative slack, ps (≤ 0).
    pub tns_ps: f64,
    /// Number of violating endpoints.
    pub nve: usize,
    /// Total power, mW.
    pub power_mw: f64,
}

impl Qor {
    /// WNS in ns (Table II units).
    pub fn wns_ns(&self) -> f32 {
        self.wns_ps / 1000.0
    }

    /// TNS in ns (Table II units).
    pub fn tns_ns(&self) -> f64 {
        self.tns_ps / 1000.0
    }

    /// Relative TNS improvement of `self` over `other` in percent
    /// (positive = `self` is better, i.e. less negative TNS).
    pub fn tns_gain_pct(&self, other: &Qor) -> f64 {
        if other.tns_ps == 0.0 {
            return 0.0;
        }
        (1.0 - self.tns_ps / other.tns_ps) * 100.0
    }
}

/// Complete result of one placement-optimization flow run.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// QoR at the beginning (post global placement).
    pub begin: Qor,
    /// QoR after the complete flow.
    pub final_qor: Qor,
    /// Data-path operations applied by the main optimization.
    pub op_stats: OpStats,
    /// Cells downsized by power recovery.
    pub downsizes: usize,
    /// Useful-skew sweeps executed (main run + touch-up).
    pub skew_sweeps: usize,
    /// Final per-register clock-skew adjustments, ps (paper Fig. 5).
    pub skews: Vec<f32>,
    /// Wall-clock seconds for the flow run.
    pub runtime_s: f64,
}

impl FlowResult {
    /// TNS improvement of the final QoR over `baseline`'s final QoR, in
    /// percent (the parenthesized "goal" deltas of Table II).
    pub fn tns_gain_over(&self, baseline: &FlowResult) -> f64 {
        self.final_qor.tns_gain_pct(&baseline.final_qor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let q = Qor {
            wns_ps: -240.0,
            tns_ps: -2009980.0,
            nve: 33785,
            power_mw: 482.9,
        };
        assert!((q.wns_ns() + 0.24).abs() < 1e-6);
        assert!((q.tns_ns() + 2009.98).abs() < 1e-6);
    }

    #[test]
    fn tns_gain_direction() {
        let better = Qor {
            wns_ps: -10.0,
            tns_ps: -50.0,
            nve: 3,
            power_mw: 1.0,
        };
        let worse = Qor {
            wns_ps: -20.0,
            tns_ps: -100.0,
            nve: 6,
            power_mw: 1.0,
        };
        assert!(better.tns_gain_pct(&worse) > 0.0);
        assert!(worse.tns_gain_pct(&better) < 0.0);
        let clean = Qor {
            wns_ps: 0.0,
            tns_ps: 0.0,
            nve: 0,
            power_mw: 1.0,
        };
        assert_eq!(better.tns_gain_pct(&clean), 0.0);
    }
}
