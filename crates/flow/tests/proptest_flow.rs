//! Property-based tests of the flow substrate: the engines must respect
//! their budgets and guards on arbitrary designs and option settings.

use proptest::prelude::*;
use rl_ccd_flow::{
    optimize_datapath, prioritization_margins, run_useful_skew, DatapathOpts, FlowRecipe,
    MarginMode, UsefulSkewOpts,
};
use rl_ccd_netlist::{generate, DesignSpec, EndpointId, TechNode};
use rl_ccd_sta::{analyze, Constraints, EndpointMargins, TimingGraph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn useful_skew_never_worsens_tns_or_hold(
        seed in 0u64..300,
        budget in 0.05f32..1.0,
        serves in 0.02f32..0.3,
        rate in 0.3f32..1.0,
    ) {
        let d = generate(&DesignSpec::new("pflow", 500, TechNode::N7, seed));
        let graph = TimingGraph::new(&d.netlist);
        let cons = Constraints::with_period(d.period_ps);
        let recipe = FlowRecipe::default();
        let mut clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
        let zero = EndpointMargins::zero(&d.netlist);
        let before = analyze(&d.netlist, &graph, &cons, &clocks, &zero);
        let opts = UsefulSkewOpts {
            move_budget_frac: budget,
            serves_per_sweep_frac: serves,
            rate,
            ..UsefulSkewOpts::default()
        };
        let out = run_useful_skew(&d.netlist, &graph, &cons, &mut clocks, &zero, &opts);
        // Without margins the engine must not lose TNS beyond a small
        // tolerance (both-side balancing can shift slack onto a register
        // with several violating downstream endpoints).
        prop_assert!(
            out.report.tns() >= before.tns() * 1.05 - 10.0,
            "TNS regressed {} -> {}",
            before.tns(),
            out.report.tns()
        );
        // …never break hold where it was positive…
        for i in 0..d.netlist.endpoints().len() {
            let h = out.report.endpoint_hold_slack(i);
            if h.is_finite() && before.endpoint_hold_slack(i) > 0.0 {
                prop_assert!(h > -1e-2, "hold violated at endpoint {i}: {h}");
            }
        }
        // …and must respect the move budget (violating regs ≤ all regs).
        let cap = ((d.netlist.flops().len() as f32 * budget).ceil() as usize).max(1);
        prop_assert!(out.moves <= cap);
    }

    #[test]
    fn datapath_budget_and_structure_hold(
        seed in 0u64..300,
        ops in 5usize..200,
        per_ep in 1usize..8,
    ) {
        let d = generate(&DesignSpec::new("pdp", 500, TechNode::N7, seed));
        let mut netlist = d.netlist.clone();
        let mut graph = TimingGraph::new(&netlist);
        let cons = Constraints::with_period(d.period_ps);
        let recipe = FlowRecipe::default();
        let clocks = recipe.clock_schedule(&netlist, d.period_ps);
        let zero = EndpointMargins::zero(&netlist);
        let opts = DatapathOpts {
            passes: 2,
            ops_per_pass: ops,
            ops_per_endpoint: per_ep,
            ..DatapathOpts::default()
        };
        let before = analyze(&netlist, &graph, &cons, &clocks, &zero);
        let (stats, after) = optimize_datapath(&mut netlist, &mut graph, &cons, &clocks, &zero, &opts);
        prop_assert!(stats.total() <= 2 * ops, "budget exceeded: {stats:?}");
        prop_assert!(netlist.check().is_empty(), "{:?}", netlist.check());
        prop_assert!(after.tns() >= before.tns() * 1.05 - 10.0, "datapath regressed TNS");
    }

    #[test]
    fn flow_is_deterministic_for_any_selection(seed in 0u64..300, take in 0usize..10) {
        let d = generate(&DesignSpec::new("pdet", 450, TechNode::N12, seed));
        let recipe = FlowRecipe::default();
        let graph = TimingGraph::new(&d.netlist);
        let clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
        let rep = analyze(
            &d.netlist,
            &graph,
            &Constraints::with_period(d.period_ps),
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        let sel: Vec<EndpointId> = rep
            .violating_endpoints()
            .into_iter()
            .take(take)
            .map(EndpointId::new)
            .collect();
        let a = recipe.run(&d, &sel);
        let b = recipe.run(&d, &sel);
        prop_assert_eq!(a.final_qor.tns_ps, b.final_qor.tns_ps);
        prop_assert_eq!(a.final_qor.nve, b.final_qor.nve);
        prop_assert_eq!(a.skews, b.skews);
        prop_assert!(a.final_qor.tns_ps >= a.begin.tns_ps);
    }

    #[test]
    fn overfix_margins_are_nonnegative_and_bounded(seed in 0u64..300) {
        let d = generate(&DesignSpec::new("pm", 450, TechNode::N7, seed));
        let recipe = FlowRecipe::default();
        let graph = TimingGraph::new(&d.netlist);
        let clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
        let rep = analyze(
            &d.netlist,
            &graph,
            &Constraints::with_period(d.period_ps),
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        let sel: Vec<EndpointId> = rep
            .violating_endpoints()
            .into_iter()
            .map(EndpointId::new)
            .collect();
        prop_assume!(!sel.is_empty());
        let margins = prioritization_margins(
            &rep,
            &sel,
            MarginMode::OverFixToWns,
            EndpointMargins::zero(&d.netlist),
        );
        let span = rep.endpoint_slacks().iter().cloned().fold(0.0f32, f32::max) - rep.wns();
        for e in &sel {
            let m = margins.get(e.index());
            prop_assert!(m >= 0.0, "negative over-fix margin");
            prop_assert!(m <= span + 1e-3, "margin {m} exceeds slack span {span}");
        }
    }
}
