//! The inference-service protocol: versioned text payloads over the
//! shared [`rl_ccd_wire`] frame format.
//!
//! Framing and the versioned-envelope rules live in [`rl_ccd_wire`]
//! (shared with the distributed-training protocol); [`write_frame`],
//! [`read_frame`] and [`MAX_FRAME_LEN`] are re-exported here so existing
//! callers keep working. Line 1 of every payload is the version token
//! [`PROTOCOL_VERSION`]; line 2 is the message head (`query …` /
//! `shutdown` / `ok …` / `err …`) with `key=value` fields; `ok` responses
//! carry the selection on line 3. Unknown keys are ignored by readers, so
//! fields can be added without a version bump.

use std::fmt;
use std::str::FromStr;

pub use rl_ccd_wire::{read_frame, write_frame, MAX_FRAME_LEN};

/// Version token on the first line of every payload.
pub const PROTOCOL_VERSION: &str = "rl-ccd-serve v1";

/// Identity of a design the server can synthesize an environment for:
/// the generator is deterministic, so `name:cells:tech:seed` fully pins
/// the netlist, its timing report, features, and cone-overlap masks —
/// which is exactly what the design cache keys on.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DesignKey {
    /// Design name (no `:` allowed).
    pub name: String,
    /// Target cell count.
    pub cells: usize,
    /// Technology node display name (e.g. "7nm").
    pub tech: String,
    /// Generator seed.
    pub seed: u64,
}

impl fmt::Display for DesignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}:{}",
            self.name, self.cells, self.tech, self.seed
        )
    }
}

impl FromStr for DesignKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 4 {
            return Err(format!("design {s:?} is not name:cells:tech:seed"));
        }
        let cells = parts[1]
            .parse()
            .map_err(|_| format!("bad cell count {:?}", parts[1]))?;
        let seed = parts[3]
            .parse()
            .map_err(|_| format!("bad seed {:?}", parts[3]))?;
        if parts[0].is_empty() {
            return Err("empty design name".into());
        }
        Ok(Self {
            name: parts[0].to_string(),
            cells,
            tech: parts[2].to_string(),
            seed,
        })
    }
}

/// How the policy turns embeddings into a selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Deterministic argmax trajectory.
    Greedy,
    /// Stochastic trajectory from this RNG seed.
    Sample(u64),
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Greedy => write!(f, "greedy"),
            Mode::Sample(seed) => write!(f, "sample:{seed}"),
        }
    }
}

impl FromStr for Mode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "greedy" {
            return Ok(Mode::Greedy);
        }
        if let Some(seed) = s.strip_prefix("sample:") {
            return seed
                .parse()
                .map(Mode::Sample)
                .map_err(|_| format!("bad sample seed {seed:?}"));
        }
        Err(format!("mode {s:?} is neither greedy nor sample:<seed>"))
    }
}

/// Tenant credentials carried on a query when the endpoint enforces
/// tenancy (the daemon front-end). Both fields are opaque tokens without
/// whitespace; the serve core ignores them entirely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Credentials {
    /// Tenant identity the request is billed to.
    pub tenant: String,
    /// The tenant's secret auth token.
    pub token: String,
}

/// One endpoint-selection query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// Registry name of the model to answer with.
    pub model: String,
    /// The design to select endpoints on.
    pub design: DesignKey,
    /// Greedy or seeded-sample decoding.
    pub mode: Mode,
    /// Give up (typed `deadline` error) if not dispatched within this many
    /// milliseconds of submission.
    pub deadline_ms: Option<u64>,
    /// Tenant credentials; `None` against a bare serve endpoint.
    pub auth: Option<Credentials>,
}

/// A decoded client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Endpoint-selection query.
    Query(QueryRequest),
    /// Health/readiness probe: answered inline by the connection handler
    /// (never queued), so it reflects liveness even when the scheduler is
    /// saturated.
    Health,
    /// Admin: drain and stop the server.
    Shutdown,
}

impl Request {
    /// Serializes to a protocol payload.
    pub fn encode(&self) -> Vec<u8> {
        let body = match self {
            Request::Query(q) => {
                let mut line = format!(
                    "query model={} design={} mode={}",
                    q.model, q.design, q.mode
                );
                if let Some(ms) = q.deadline_ms {
                    line.push_str(&format!(" deadline_ms={ms}"));
                }
                if let Some(auth) = &q.auth {
                    line.push_str(&format!(" tenant={} token={}", auth.tenant, auth.token));
                }
                line
            }
            Request::Health => "health".to_string(),
            Request::Shutdown => "shutdown".to_string(),
        };
        format!("{PROTOCOL_VERSION}\n{body}\n").into_bytes()
    }

    /// Parses a protocol payload.
    ///
    /// # Errors
    /// A human-readable description of the first violation (bad version,
    /// unknown head, missing or malformed field).
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let (head, _rest) = split_versioned(payload)?;
        if head == "shutdown" {
            return Ok(Request::Shutdown);
        }
        if head == "health" {
            return Ok(Request::Health);
        }
        let fields = head
            .strip_prefix("query ")
            .ok_or_else(|| format!("unknown request {head:?}"))?;
        let mut model = None;
        let mut design = None;
        let mut mode = None;
        let mut deadline_ms = None;
        let mut tenant = None;
        let mut token = None;
        for field in fields.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))?;
            match key {
                "model" => model = Some(value.to_string()),
                "design" => design = Some(value.parse()?),
                "mode" => mode = Some(value.parse()?),
                "deadline_ms" => {
                    deadline_ms = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad deadline_ms {value:?}"))?,
                    );
                }
                "tenant" => tenant = Some(value.to_string()),
                "token" => token = Some(value.to_string()),
                _ => {} // forward compatibility: ignore unknown keys
            }
        }
        // Credentials travel as a pair; half a pair is a malformed request
        // (a lone tenant= would silently bill nobody).
        let auth = match (tenant, token) {
            (Some(tenant), Some(token)) => Some(Credentials { tenant, token }),
            (None, None) => None,
            _ => return Err("tenant= and token= must be sent together".into()),
        };
        Ok(Request::Query(QueryRequest {
            model: model.ok_or("query missing model=")?,
            design: design.ok_or("query missing design=")?,
            mode: mode.ok_or("query missing mode=")?,
            deadline_ms,
            auth,
        }))
    }
}

/// Typed rejection categories — every error a client can receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectKind {
    /// The bounded request queue is full (backpressure); retry later.
    Busy,
    /// The request's deadline passed before a worker dispatched it.
    Deadline,
    /// The server is draining; no new requests are accepted.
    ShuttingDown,
    /// The request was malformed.
    BadRequest,
    /// No model with that name in the registry.
    UnknownModel,
    /// Tenancy rejection: unknown tenant, bad token, or an operation the
    /// endpoint does not allow (e.g. shutdown on the tenant port).
    Denied,
    /// Unexpected server-side failure.
    Internal,
}

impl RejectKind {
    fn as_str(self) -> &'static str {
        match self {
            RejectKind::Busy => "busy",
            RejectKind::Deadline => "deadline",
            RejectKind::ShuttingDown => "shutting_down",
            RejectKind::BadRequest => "bad_request",
            RejectKind::UnknownModel => "unknown_model",
            RejectKind::Denied => "denied",
            RejectKind::Internal => "internal",
        }
    }
}

impl fmt::Display for RejectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for RejectKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "busy" => Ok(RejectKind::Busy),
            "deadline" => Ok(RejectKind::Deadline),
            "shutting_down" => Ok(RejectKind::ShuttingDown),
            "bad_request" => Ok(RejectKind::BadRequest),
            "unknown_model" => Ok(RejectKind::UnknownModel),
            "denied" => Ok(RejectKind::Denied),
            "internal" => Ok(RejectKind::Internal),
            _ => Err(format!("unknown reject kind {s:?}")),
        }
    }
}

/// A successful selection answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryReply {
    /// Model that answered.
    pub model: String,
    /// Model version (the checkpoint's next training iteration).
    pub version: usize,
    /// Trajectory length (`selection.len()`).
    pub steps: usize,
    /// Number of requests in the batch this one was dispatched with.
    pub batch: usize,
    /// Whether the selection came from the memoized-selection cache.
    pub cached: bool,
    /// Selected endpoint indices, in selection order.
    pub selection: Vec<usize>,
}

/// One registry entry's identity, as reported by a health probe: enough
/// to know *what* is serving, not just that something is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelVersion {
    /// Registry name clients address the model by.
    pub name: String,
    /// Checkpoint version (the training iteration it would resume at).
    pub version: usize,
    /// FNV-1a 64 checksum of the verified checkpoint bytes.
    pub fingerprint: u64,
}

impl fmt::Display for ModelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}@{:016x}",
            self.name, self.version, self.fingerprint
        )
    }
}

impl FromStr for ModelVersion {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('@').collect();
        if parts.len() != 3 || parts[0].is_empty() {
            return Err(format!("active entry {s:?} is not name@version@fp"));
        }
        Ok(Self {
            name: parts[0].to_string(),
            version: parts[1]
                .parse()
                .map_err(|_| format!("bad version {:?}", parts[1]))?,
            fingerprint: u64::from_str_radix(parts[2], 16)
                .map_err(|_| format!("bad fingerprint {:?}", parts[2]))?,
        })
    }
}

/// A health-probe answer: a point-in-time view of the server's capacity
/// to accept work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthReply {
    /// Whether the server is accepting queries (false while draining).
    pub ready: bool,
    /// Requests currently queued for dispatch.
    pub queue_depth: usize,
    /// The bounded queue's capacity.
    pub queue_capacity: usize,
    /// Number of models in the registry.
    pub models: usize,
    /// The registry's live entries — name, version, fingerprint — sorted
    /// by name. Empty when probing a pre-v9 server that does not report
    /// the field.
    pub active: Vec<ModelVersion>,
}

/// A decoded server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The selection.
    Ok(QueryReply),
    /// Load shed: the scheduler queue is full. Distinct from
    /// [`Response::Err`] so clients can machine-read the backoff hint
    /// instead of pattern-matching a `busy` message.
    Overloaded {
        /// Server's estimate of when capacity will free up; clients
        /// should back off at least this long before retrying.
        retry_after_ms: u64,
    },
    /// Tenancy throttle: the tenant's token bucket is empty or its
    /// monthly quota is spent. Machine-readable like
    /// [`Response::Overloaded`] so the same client backoff path composes
    /// — the hint is the bucket's refill horizon (small) or the quota
    /// window's remainder (large).
    QuotaExceeded {
        /// How long until the tenant may retry.
        retry_after_ms: u64,
    },
    /// Answer to a [`Request::Health`] probe.
    Health(HealthReply),
    /// A typed rejection.
    Err {
        /// Rejection category.
        kind: RejectKind,
        /// Human-readable detail.
        msg: String,
    },
}

impl Response {
    /// Convenience constructor for error responses.
    pub fn reject(kind: RejectKind, msg: impl Into<String>) -> Self {
        Response::Err {
            kind,
            msg: msg.into(),
        }
    }

    /// Serializes to a protocol payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok(r) => {
                let selection: Vec<String> = r.selection.iter().map(|e| e.to_string()).collect();
                format!(
                    "{PROTOCOL_VERSION}\nok model={} version={} steps={} batch={} cached={}\nselection={}\n",
                    r.model,
                    r.version,
                    r.steps,
                    r.batch,
                    u8::from(r.cached),
                    selection.join(",")
                )
                .into_bytes()
            }
            Response::Overloaded { retry_after_ms } => {
                format!("{PROTOCOL_VERSION}\noverloaded retry_after_ms={retry_after_ms}\n")
                    .into_bytes()
            }
            Response::QuotaExceeded { retry_after_ms } => {
                format!("{PROTOCOL_VERSION}\nquota_exceeded retry_after_ms={retry_after_ms}\n")
                    .into_bytes()
            }
            Response::Health(h) => {
                let mut head = format!(
                    "health ready={} queue={} capacity={} models={}",
                    u8::from(h.ready),
                    h.queue_depth,
                    h.queue_capacity,
                    h.models
                );
                if !h.active.is_empty() {
                    let entries: Vec<String> =
                        h.active.iter().map(ModelVersion::to_string).collect();
                    head.push_str(&format!(" active={}", entries.join(",")));
                }
                format!("{PROTOCOL_VERSION}\n{head}\n").into_bytes()
            }
            Response::Err { kind, msg } => {
                // msg is the whole remainder of the line; newlines stripped
                // so it cannot forge extra lines.
                let msg = msg.replace('\n', " ");
                format!("{PROTOCOL_VERSION}\nerr kind={kind} msg={msg}\n").into_bytes()
            }
        }
    }

    /// Parses a protocol payload.
    ///
    /// # Errors
    /// A human-readable description of the first violation.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let (head, rest) = split_versioned(payload)?;
        if let Some(fields) = head.strip_prefix("overloaded ") {
            let retry_after_ms = fields
                .split_whitespace()
                .find_map(|f| f.strip_prefix("retry_after_ms="))
                .ok_or("overloaded missing retry_after_ms=")?
                .parse()
                .map_err(|_| "bad retry_after_ms".to_string())?;
            return Ok(Response::Overloaded { retry_after_ms });
        }
        if let Some(fields) = head.strip_prefix("quota_exceeded ") {
            let retry_after_ms = fields
                .split_whitespace()
                .find_map(|f| f.strip_prefix("retry_after_ms="))
                .ok_or("quota_exceeded missing retry_after_ms=")?
                .parse()
                .map_err(|_| "bad retry_after_ms".to_string())?;
            return Ok(Response::QuotaExceeded { retry_after_ms });
        }
        if let Some(fields) = head.strip_prefix("health ") {
            let mut ready = None;
            let mut queue_depth = None;
            let mut queue_capacity = None;
            let mut models = None;
            let mut active = Vec::new();
            for field in fields.split_whitespace() {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("field {field:?} is not key=value"))?;
                let parsed = || {
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("bad {key}={value}"))
                };
                match key {
                    "ready" => ready = Some(value == "1"),
                    "queue" => queue_depth = Some(parsed()?),
                    "capacity" => queue_capacity = Some(parsed()?),
                    "models" => models = Some(parsed()?),
                    "active" => {
                        active = value
                            .split(',')
                            .map(str::parse)
                            .collect::<Result<_, String>>()?;
                    }
                    _ => {}
                }
            }
            return Ok(Response::Health(HealthReply {
                ready: ready.ok_or("health missing ready=")?,
                queue_depth: queue_depth.ok_or("health missing queue=")?,
                queue_capacity: queue_capacity.ok_or("health missing capacity=")?,
                models: models.ok_or("health missing models=")?,
                active,
            }));
        }
        if let Some(fields) = head.strip_prefix("err ") {
            let kind = fields
                .strip_prefix("kind=")
                .and_then(|s| s.split_whitespace().next())
                .ok_or("err missing kind=")?
                .parse()?;
            let msg = fields
                .split_once("msg=")
                .map(|(_, m)| m.to_string())
                .unwrap_or_default();
            return Ok(Response::Err { kind, msg });
        }
        let fields = head
            .strip_prefix("ok ")
            .ok_or_else(|| format!("unknown response {head:?}"))?;
        let mut model = None;
        let mut version = None;
        let mut steps = None;
        let mut batch = None;
        let mut cached = None;
        for field in fields.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))?;
            let parsed = || {
                value
                    .parse::<usize>()
                    .map_err(|_| format!("bad {key}={value}"))
            };
            match key {
                "model" => model = Some(value.to_string()),
                "version" => version = Some(parsed()?),
                "steps" => steps = Some(parsed()?),
                "batch" => batch = Some(parsed()?),
                "cached" => cached = Some(value == "1"),
                _ => {}
            }
        }
        let sel_line = rest
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("selection="))
            .ok_or("ok response missing selection= line")?;
        let selection = if sel_line.is_empty() {
            Vec::new()
        } else {
            sel_line
                .split(',')
                .map(|s| s.parse().map_err(|_| format!("bad selection entry {s:?}")))
                .collect::<Result<_, String>>()?
        };
        Ok(Response::Ok(QueryReply {
            model: model.ok_or("ok missing model=")?,
            version: version.ok_or("ok missing version=")?,
            steps: steps.ok_or("ok missing steps=")?,
            batch: batch.ok_or("ok missing batch=")?,
            cached: cached.ok_or("ok missing cached=")?,
            selection,
        }))
    }
}

/// Checks the version line and returns (second line, remaining lines).
fn split_versioned(payload: &[u8]) -> Result<(&str, &str), String> {
    rl_ccd_wire::split_versioned(payload, PROTOCOL_VERSION)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> DesignKey {
        DesignKey {
            name: "demo".into(),
            cells: 400,
            tech: "7nm".into(),
            seed: 7,
        }
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err(), "stream exhausted");
    }

    #[test]
    fn oversized_frames_are_rejected_both_ways() {
        let mut buf = Vec::new();
        let too_big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut buf, &too_big).is_err());
        let forged = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        assert!(read_frame(&mut &forged[..]).is_err());
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Query(QueryRequest {
                model: "default".into(),
                design: key(),
                mode: Mode::Greedy,
                deadline_ms: None,
                auth: None,
            }),
            Request::Query(QueryRequest {
                model: "m2".into(),
                design: key(),
                mode: Mode::Sample(99),
                deadline_ms: Some(250),
                auth: None,
            }),
            Request::Query(QueryRequest {
                model: "default".into(),
                design: key(),
                mode: Mode::Greedy,
                deadline_ms: Some(100),
                auth: Some(Credentials {
                    tenant: "acme".into(),
                    token: "s3cret".into(),
                }),
            }),
            Request::Health,
            Request::Shutdown,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn half_a_credential_pair_is_rejected() {
        let payload =
            format!("{PROTOCOL_VERSION}\nquery model=m design=d:10:7nm:1 mode=greedy tenant=a\n");
        let err = Request::decode(payload.as_bytes()).unwrap_err();
        assert!(err.contains("together"), "{err}");
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Ok(QueryReply {
                model: "default".into(),
                version: 12,
                steps: 3,
                batch: 4,
                cached: true,
                selection: vec![5, 0, 17],
            }),
            Response::Ok(QueryReply {
                model: "default".into(),
                version: 0,
                steps: 0,
                batch: 1,
                cached: false,
                selection: vec![],
            }),
            Response::reject(RejectKind::Busy, "queue full (64)"),
            Response::reject(RejectKind::Deadline, ""),
            Response::reject(RejectKind::Denied, "unknown tenant"),
            Response::Overloaded { retry_after_ms: 12 },
            Response::QuotaExceeded {
                retry_after_ms: 86_400_000,
            },
            Response::Health(HealthReply {
                ready: true,
                queue_depth: 3,
                queue_capacity: 64,
                models: 2,
                active: vec![
                    ModelVersion {
                        name: "challenger".into(),
                        version: 41,
                        fingerprint: 0xdead_beef,
                    },
                    ModelVersion {
                        name: "champion".into(),
                        version: 40,
                        fingerprint: 0x1234_5678_9abc_def0,
                    },
                ],
            }),
            Response::Health(HealthReply {
                ready: false,
                queue_depth: 0,
                queue_capacity: 64,
                models: 0,
                active: vec![],
            }),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn overloaded_and_health_reject_malformed_heads() {
        let payload = format!("{PROTOCOL_VERSION}\noverloaded after=5\n");
        assert!(Response::decode(payload.as_bytes())
            .unwrap_err()
            .contains("retry_after_ms"));
        let payload = format!("{PROTOCOL_VERSION}\nhealth ready=1 queue=2\n");
        assert!(Response::decode(payload.as_bytes())
            .unwrap_err()
            .contains("capacity"));
    }

    #[test]
    fn version_mismatch_is_rejected_before_parsing() {
        let err = Request::decode(b"rl-ccd-serve v2\nshutdown\n").unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn unknown_fields_are_ignored_for_forward_compatibility() {
        let payload =
            format!("{PROTOCOL_VERSION}\nquery model=m design=d:10:7nm:1 mode=greedy future=x\n");
        assert!(matches!(
            Request::decode(payload.as_bytes()).unwrap(),
            Request::Query(_)
        ));
    }

    #[test]
    fn design_key_rejects_malformed_strings() {
        assert!("a:b:c".parse::<DesignKey>().is_err());
        assert!("a:ten:7nm:1".parse::<DesignKey>().is_err());
        assert!(":10:7nm:1".parse::<DesignKey>().is_err());
        let k: DesignKey = "demo:400:7nm:7".parse().unwrap();
        assert_eq!(k, key());
    }
}
