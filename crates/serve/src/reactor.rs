//! The reactor TCP front-end: one thread multiplexing every client
//! connection with epoll, in place of [`Server::bind`]'s
//! thread-per-connection accept loop.
//!
//! The loop owns the listener and every accepted socket as a
//! [`FramedConn`] (non-blocking incremental frame decode, buffered
//! writes). Requests decode exactly as on the blocking path; queries are
//! submitted to the same scheduler with a [`ReplySink::Completion`] that
//! routes the worker's answer back through the [`CompletionQueue`], whose
//! waker interrupts the poll. Health probes and rejections are answered
//! inline. Per-connection deadlines live in a [`TimerWheel`]: a send
//! buffer that stays non-empty for [`write_timeout`] evicts the
//! connection as a slow client, mirroring the blocking path's write
//! timeout.
//!
//! Idle connections cost nothing per request: a socket with no traffic
//! produces no events, so the work per poll is proportional to *active*
//! connections (pinned by the soak test and the `serve_load
//! --connections` bench).
//!
//! [`Server::bind`]: crate::server::Server::bind
//! [`write_timeout`]: crate::server::ServeConfig::write_timeout

use crate::protocol::{QueryReply, RejectKind, Request, Response};
use crate::scheduler::{CompletionQueue, ReplySink};
use crate::server::Shared;
use rl_ccd_wire::frames::FramedConn;
use rl_ccd_wire::reactor::{Interest, Poller, Waker};
use rl_ccd_wire::timer::{TimerId, TimerWheel};
use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

const LISTENER: u64 = 0;
const WAKER: u64 = 1;
const FIRST_CONN: u64 = 2;

/// Idle heartbeat: an otherwise-quiet loop re-checks the drain flag at
/// this cadence, mirroring the blocking connection loop's 200 ms read
/// timeout.
const HEARTBEAT: std::time::Duration = std::time::Duration::from_millis(200);

/// Verifies the platform supports the reactor (epoll) before spawning
/// the loop thread, so `bind_reactor` fails on the caller.
pub(crate) fn check_supported() -> std::io::Result<()> {
    Poller::new().map(drop)
}

struct Conn {
    io: FramedConn,
    /// Queries handed to the scheduler whose responses have not yet come
    /// back through the completion queue.
    inflight: usize,
    /// Armed while the send buffer is non-empty; fires an eviction.
    stall: Option<TimerId>,
    /// Close once the send buffer drains (set by the shutdown ack).
    closing: bool,
    /// Whether the current epoll registration includes write interest.
    writable_armed: bool,
}

/// The reactor event loop. Runs until shutdown: `draining` set, every
/// owed response delivered (or its connection evicted), every socket
/// closed.
pub(crate) fn run(shared: &Arc<Shared>, listener: TcpListener, waker: Waker) {
    let _obs = shared.recorder.as_ref().map(rl_ccd_obs::attach);
    let Ok(poller) = Poller::new() else { return };
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    if poller
        .register(&listener, LISTENER, Interest::READABLE)
        .is_err()
        || poller.register(&waker, WAKER, Interest::READABLE).is_err()
    {
        return;
    }
    let completions = Arc::new(CompletionQueue::new(waker.clone()));
    let mut wheel = TimerWheel::with_ms_ticks();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN;
    let mut inflight_total = 0usize;
    let mut events = Vec::new();
    let mut expired = Vec::new();
    let mut accepting = true;

    loop {
        if shared.draining.load(Ordering::SeqCst) {
            if accepting {
                let _ = poller.deregister(&listener);
                accepting = false;
            }
            // Close idle connections — clients see EOF, exactly like the
            // blocking loop returning on drain. Connections still owed a
            // response (or still flushing one) stay until delivered.
            let idle: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| c.inflight == 0 && !c.io.wants_write())
                .map(|(t, _)| *t)
                .collect();
            for token in idle {
                drop_conn(&poller, &mut wheel, &mut conns, token);
            }
            if conns.is_empty() && inflight_total == 0 {
                return;
            }
        }
        let now = Instant::now();
        let timeout = wheel
            .next_timeout(now)
            .map_or(HEARTBEAT, |t| t.min(HEARTBEAT));
        if poller.poll(&mut events, Some(timeout)).is_err() {
            return;
        }
        shared.stats.reactor_polls.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .reactor_events
            .fetch_add(events.len() as u64, Ordering::Relaxed);

        for ev in &events {
            match ev.token {
                LISTENER => {
                    if accepting {
                        accept_burst(shared, &poller, &listener, &mut conns, &mut next_token);
                    }
                }
                WAKER => {
                    waker.drain();
                    for (token, response) in completions.take() {
                        inflight_total = inflight_total.saturating_sub(1);
                        // An evicted/hung-up connection's reply has nowhere
                        // to go; `finish` already counted it as completed.
                        if let Some(conn) = conns.get_mut(&token) {
                            conn.inflight = conn.inflight.saturating_sub(1);
                            let dead = conn.queue_response(&response);
                            conn.settle(shared, &poller, &mut wheel, token, dead);
                            if dead || conn.done() {
                                drop_conn(&poller, &mut wheel, &mut conns, token);
                            }
                        }
                    }
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut dead = false;
                    if ev.readable {
                        dead = conn.on_readable(shared, token, &completions, &mut inflight_total);
                    }
                    if !dead && ev.writable {
                        dead = conn.io.flush().is_err();
                    }
                    if !dead && ev.hangup && !conn.io.wants_write() && conn.inflight == 0 {
                        // Peer is gone and nothing is owed either way.
                        dead = true;
                    }
                    conn.settle(shared, &poller, &mut wheel, token, dead);
                    if dead || conn.done() {
                        drop_conn(&poller, &mut wheel, &mut conns, token);
                    }
                }
            }
        }

        expired.clear();
        wheel.poll_expired(Instant::now(), &mut expired);
        for &token in &expired {
            if let Some(conn) = conns.get_mut(&token) {
                conn.stall = None;
                if conn.io.wants_write() {
                    // The client has not drained its socket for a full
                    // write_timeout: evict it rather than buffer forever.
                    shared.note_evicted();
                    drop_conn(&poller, &mut wheel, &mut conns, token);
                }
            }
        }
    }
}

fn accept_burst(
    shared: &Arc<Shared>,
    poller: &Poller,
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Some(bytes) = shared.sock_send_buffer {
                    let _ = rl_ccd_wire::reactor::set_send_buffer(&stream, bytes);
                }
                let Ok(io) = FramedConn::new(stream, crate::protocol::MAX_FRAME_LEN) else {
                    continue;
                };
                let token = *next_token;
                *next_token += 1;
                if poller
                    .register(io.stream(), token, Interest::READABLE)
                    .is_err()
                {
                    continue;
                }
                conns.insert(
                    token,
                    Conn {
                        io,
                        inflight: 0,
                        stall: None,
                        closing: false,
                        writable_armed: false,
                    },
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Per-connection accept failures (e.g. the peer already
            // reset) must not kill the loop.
            Err(_) => break,
        }
    }
}

fn drop_conn(poller: &Poller, wheel: &mut TimerWheel, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        if let Some(id) = conn.stall {
            wheel.cancel(id);
        }
        let _ = poller.deregister(conn.io.stream());
    }
}

impl Conn {
    /// Pulls bytes, decodes every complete request, answers or enqueues
    /// each. Returns true when the connection is dead.
    fn on_readable(
        &mut self,
        shared: &Arc<Shared>,
        token: u64,
        completions: &Arc<CompletionQueue>,
        inflight_total: &mut usize,
    ) -> bool {
        if self.io.on_readable().is_err() {
            return true;
        }
        loop {
            match self.io.next_frame() {
                Ok(Some(payload)) => {
                    let response = match Request::decode(&payload) {
                        Err(msg) => Response::reject(RejectKind::BadRequest, msg),
                        Ok(Request::Shutdown) => {
                            // Ack, then close after the flush; the
                            // controlling process calls Server::shutdown.
                            shared.draining.store(true, Ordering::SeqCst);
                            self.closing = true;
                            Response::Ok(QueryReply {
                                model: String::new(),
                                version: 0,
                                steps: 0,
                                batch: 0,
                                cached: false,
                                selection: vec![],
                            })
                        }
                        Ok(Request::Health) => Response::Health(shared.health_reply()),
                        Ok(Request::Query(q)) => {
                            let sink = ReplySink::Completion {
                                token,
                                queue: completions.clone(),
                            };
                            match shared.submit(q, sink) {
                                Err(kind) => shared.reject_response(kind),
                                Ok(()) => {
                                    self.inflight += 1;
                                    *inflight_total += 1;
                                    continue;
                                }
                            }
                        }
                    };
                    if self.queue_response(&response) {
                        return true;
                    }
                    if self.closing {
                        break; // drop anything pipelined after a shutdown
                    }
                }
                Ok(None) => break,
                // Framing is lost (oversized prefix) or the peer tore a
                // frame: unrecoverable either way.
                Err(_) => return true,
            }
        }
        self.io.is_eof() && self.inflight == 0 && !self.io.wants_write()
    }

    /// Encodes and queues a response, flushing what fits. Returns true on
    /// a fatal transport error.
    fn queue_response(&mut self, response: &Response) -> bool {
        self.io.send_frame(&response.encode()).is_err()
    }

    /// Reconciles epoll interest and the stall timer with the send
    /// buffer's state after any activity on the connection.
    fn settle(
        &mut self,
        shared: &Arc<Shared>,
        poller: &Poller,
        wheel: &mut TimerWheel,
        token: u64,
        dead: bool,
    ) {
        if dead {
            return;
        }
        let wants = self.io.wants_write();
        if wants != self.writable_armed {
            let interest = if wants {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            if poller.reregister(self.io.stream(), token, interest).is_ok() {
                self.writable_armed = wants;
            }
        }
        if wants {
            if self.stall.is_none() {
                self.stall = Some(wheel.schedule_after(shared.write_timeout, token));
            }
        } else if let Some(id) = self.stall.take() {
            wheel.cancel(id);
        }
    }

    /// True when the connection has nothing left to do and should close:
    /// the shutdown ack flushed, or the peer closed and nothing is owed.
    fn done(&self) -> bool {
        if self.io.wants_write() {
            return false;
        }
        self.closing || (self.io.is_eof() && self.inflight == 0)
    }
}
