//! LRU caches for the expensive per-design work.
//!
//! Resolving a [`DesignKey`] is the costly half of a query: generate the
//! netlist, run full STA, build the violating-endpoint pool, extract the
//! Table-I features, and compute fan-in-cone overlap masks — all of it
//! deterministic given the key. [`EnvCache`] memoizes the resulting
//! [`CcdEnv`] (shared behind an `Arc`, so concurrent batches borrow it
//! without copying) under least-recently-used eviction; a repeat query on
//! a known design skips extraction entirely.
//!
//! [`SelectionCache`] goes one step further for greedy queries, which are
//! pure functions of (model weights, design): it memoizes the finished
//! selection keyed by the model *fingerprint* (checksum of the verified
//! checkpoint bytes) plus the design key, so reloading a re-trained
//! checkpoint can never serve a stale selection.

use crate::protocol::DesignKey;
use rl_ccd::CcdEnv;
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, EndpointId, Library};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// A minimal least-recently-used map: every `get`/`insert` stamps the
/// entry with a monotonically increasing tick; inserting past capacity
/// evicts the smallest stamp.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    entries: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(stamp, v)| {
            *stamp = tick;
            &*v
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.tick, value));
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Thread-safe memoization of fully-built design environments.
#[derive(Debug)]
pub struct EnvCache {
    inner: Mutex<LruCache<DesignKey, Arc<CcdEnv>>>,
    fanout_cap: usize,
}

impl EnvCache {
    /// A cache of at most `capacity` environments; `fanout_cap` is passed
    /// through to [`CcdEnv::new`] (message-passing fanout cap).
    pub fn new(capacity: usize, fanout_cap: usize) -> Self {
        Self {
            inner: Mutex::new(LruCache::new(capacity)),
            fanout_cap,
        }
    }

    /// Returns the environment for `key`, building it on a miss.
    ///
    /// # Errors
    /// A human-readable message when the key names an unknown technology
    /// node (the only non-deterministic-success part of generation).
    pub fn get_or_build(&self, key: &DesignKey) -> Result<Arc<CcdEnv>, String> {
        if let Some(env) = self.inner.lock().expect("env cache lock").get(key) {
            rl_ccd_obs::counter!("serve.cache.env.hit", 1);
            return Ok(env.clone());
        }
        rl_ccd_obs::counter!("serve.cache.env.miss", 1);
        let tech = Library::parse_tech(&key.tech)
            .ok_or_else(|| format!("unknown technology node {:?}", key.tech))?;
        let _span = rl_ccd_obs::span!("serve.env.build", cells = key.cells as u64);
        let design = generate(&DesignSpec::new(
            key.name.clone(),
            key.cells,
            tech,
            key.seed,
        ));
        let env = Arc::new(CcdEnv::new(design, FlowRecipe::default(), self.fanout_cap));
        // Rebuilt concurrently by two threads on a cold miss? Both get
        // identical envs (generation is deterministic); last insert wins.
        self.inner
            .lock()
            .expect("env cache lock")
            .insert(key.clone(), env.clone());
        Ok(env)
    }

    /// Number of cached environments.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("env cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cache key for a memoized selection: model fingerprint + design.
type SelectionKey = (u64, DesignKey);

/// Memoized greedy selections keyed by (model fingerprint, design).
#[derive(Debug)]
pub struct SelectionCache {
    inner: Mutex<LruCache<SelectionKey, Arc<Vec<EndpointId>>>>,
}

impl SelectionCache {
    /// A cache of at most `capacity` selections.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LruCache::new(capacity)),
        }
    }

    /// Looks up the memoized greedy selection for `fingerprint` × `key`.
    pub fn get(&self, fingerprint: u64, key: &DesignKey) -> Option<Arc<Vec<EndpointId>>> {
        let hit = self
            .inner
            .lock()
            .expect("selection cache lock")
            .get(&(fingerprint, key.clone()))
            .cloned();
        match &hit {
            Some(_) => rl_ccd_obs::counter!("serve.cache.selection.hit", 1),
            None => rl_ccd_obs::counter!("serve.cache.selection.miss", 1),
        }
        hit
    }

    /// Memoizes a freshly computed greedy selection.
    pub fn insert(&self, fingerprint: u64, key: &DesignKey, selection: Arc<Vec<EndpointId>>) {
        self.inner
            .lock()
            .expect("selection cache lock")
            .insert((fingerprint, key.clone()), selection);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(&1)); // refresh a; b is now oldest
        lru.insert("c", 3);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"b"), None, "b should have been evicted");
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
    }

    #[test]
    fn lru_reinsert_refreshes_without_eviction() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 10); // refresh, not a new entry
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"b"), Some(&2));
        assert_eq!(lru.get(&"a"), Some(&10));
    }

    #[test]
    fn env_cache_builds_once_and_evicts_at_capacity() {
        let cache = EnvCache::new(1, 24);
        let key_a = DesignKey {
            name: "cache-a".into(),
            cells: 360,
            tech: "7nm".into(),
            seed: 3,
        };
        let key_b = DesignKey {
            name: "cache-b".into(),
            cells: 360,
            tech: "7nm".into(),
            seed: 4,
        };
        let a1 = cache.get_or_build(&key_a).expect("build a");
        let a2 = cache.get_or_build(&key_a).expect("hit a");
        assert!(Arc::ptr_eq(&a1, &a2), "second lookup must be a cache hit");
        let _b = cache.get_or_build(&key_b).expect("build b evicting a");
        assert_eq!(cache.len(), 1);
        let a3 = cache.get_or_build(&key_a).expect("rebuild a");
        assert!(!Arc::ptr_eq(&a1, &a3), "a was evicted and rebuilt");
        assert_eq!(a1.pool(), a3.pool(), "rebuild is deterministic");
    }

    #[test]
    fn env_cache_rejects_unknown_tech() {
        let cache = EnvCache::new(1, 24);
        let key = DesignKey {
            name: "x".into(),
            cells: 100,
            tech: "3nm".into(),
            seed: 1,
        };
        assert!(cache.get_or_build(&key).is_err());
    }

    #[test]
    fn selection_cache_keys_on_fingerprint() {
        let cache = SelectionCache::new(4);
        let key = DesignKey {
            name: "s".into(),
            cells: 100,
            tech: "7nm".into(),
            seed: 1,
        };
        let sel = Arc::new(vec![EndpointId::new(0), EndpointId::new(2)]);
        cache.insert(0xabc, &key, sel.clone());
        assert_eq!(cache.get(0xabc, &key), Some(sel));
        assert_eq!(
            cache.get(0xdef, &key),
            None,
            "different weights must not share selections"
        );
    }
}
