//! Versioned model registry: validated checkpoint loading for serving.
//!
//! A registry entry is born from a training checkpoint directory. Loading
//! goes through the same integrity gate as training resume —
//! [`rl_ccd::verify_manifest`] checks the manifest header, byte length,
//! and FNV-1a 64 checksum before a single byte is parsed — and the
//! verified bytes' checksum becomes the model's *fingerprint* (the
//! selection cache keys on it, so two registry entries with identical
//! weights share cached selections and a re-trained checkpoint never
//! serves stale ones).
//!
//! Checkpoints store parameters but not the architecture, so the registry
//! reconstructs the [`RlConfig`] from the parameter shapes themselves
//! (layer widths, encoder kind) and then cross-validates: a freshly built
//! model must want exactly the tensors the checkpoint provides, shape for
//! shape. Any mismatch is a typed [`ServeError`] at load time — never a
//! panic at query time.

use crate::protocol::ModelVersion;
use crate::ServeError;
use rl_ccd::{load_training_state, verify_manifest, EncoderKind, RlCcd, RlConfig};
use rl_ccd_nn::ParamSet;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// One loaded, validated model.
#[derive(Debug)]
pub struct ServeModel {
    /// Registry name clients address the model by.
    pub name: String,
    /// Checkpoint version: the training iteration the state would resume
    /// at (monotonically increasing as a run progresses).
    pub version: usize,
    /// FNV-1a 64 checksum of the verified state bytes.
    pub fingerprint: u64,
    /// The assembled policy.
    pub model: RlCcd,
    /// Its trained parameters.
    pub params: ParamSet,
}

/// Name → model map the server answers queries from.
///
/// The map lives behind a [`RwLock`] so entries can be *hot-swapped*
/// while the server is running: [`ModelRegistry::install`] atomically
/// replaces a name's entry, and because every query batch resolves its
/// model to an `Arc<ServeModel>` once up front, in-flight work finishes
/// on the version it started with while new batches see the new one —
/// the zero-downtime reload the daemon's promotion path builds on.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, Arc<ServeModel>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Verifies and assembles the checkpoint in `dir` as `name` *without*
    /// installing it: the manifest/shape validation and model
    /// construction happen on the caller's thread, off the request path,
    /// so a follow-up [`ModelRegistry::install`] is a pointer swap.
    ///
    /// # Errors
    /// [`ServeError::Checkpoint`] when the manifest or state fails
    /// verification, [`ServeError::Registry`] when the parameter set does
    /// not describe a complete RL-CCD model.
    pub fn prepare(
        name: impl Into<String>,
        dir: impl AsRef<Path>,
        rho: f32,
    ) -> Result<Arc<ServeModel>, ServeError> {
        let name = name.into();
        let bytes = verify_manifest(&dir)?;
        let fingerprint = rl_ccd::fnv1a64(&bytes);
        let state = load_training_state(&dir)?;
        Ok(Arc::new(Self::assemble(
            name,
            state.next_iteration,
            fingerprint,
            state.params,
            rho,
        )?))
    }

    /// Atomically installs (or replaces) the entry under its own name,
    /// returning the previous occupant. Queries already grouped on the
    /// old `Arc` finish on it; the next batch resolves the new one.
    pub fn install(&self, entry: Arc<ServeModel>) -> Option<Arc<ServeModel>> {
        self.models
            .write()
            .expect("registry lock")
            .insert(entry.name.clone(), entry)
    }

    /// Atomically removes a name, returning the evicted entry.
    pub fn remove(&self, name: &str) -> Option<Arc<ServeModel>> {
        self.models.write().expect("registry lock").remove(name)
    }

    /// Loads the checkpoint in `dir` under `name`, replacing any previous
    /// entry with that name ([`ModelRegistry::prepare`] followed by
    /// [`ModelRegistry::install`]). `rho` is a serving-side knob the
    /// checkpoint does not store (the cone-overlap threshold).
    ///
    /// # Errors
    /// Same as [`ModelRegistry::prepare`].
    pub fn load(
        &self,
        name: impl Into<String>,
        dir: impl AsRef<Path>,
        rho: f32,
    ) -> Result<Arc<ServeModel>, ServeError> {
        let entry = Self::prepare(name, dir, rho)?;
        self.install(entry.clone());
        Ok(entry)
    }

    /// Registers an in-memory parameter set (tests, warm handoff from a
    /// trainer in the same process). Version 0; the fingerprint is the
    /// hash of the serialized parameters.
    ///
    /// # Errors
    /// [`ServeError::Registry`] when the set is not a complete model.
    pub fn insert_params(
        &self,
        name: impl Into<String>,
        params: ParamSet,
        rho: f32,
    ) -> Result<Arc<ServeModel>, ServeError> {
        let name = name.into();
        let mut buf = Vec::new();
        params
            .save(&mut buf)
            .map_err(|e| ServeError::Registry(format!("serialize params: {e}")))?;
        let fingerprint = rl_ccd::fnv1a64(&buf);
        let entry = Arc::new(Self::assemble(name, 0, fingerprint, params, rho)?);
        self.install(entry.clone());
        Ok(entry)
    }

    /// Looks a model up by name.
    pub fn get(&self, name: &str) -> Option<Arc<ServeModel>> {
        self.models
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Identity of every live entry — name, version, fingerprint — sorted
    /// by name (what health probes report as `active`).
    pub fn versions(&self) -> Vec<ModelVersion> {
        self.models
            .read()
            .expect("registry lock")
            .values()
            .map(|m| ModelVersion {
                name: m.name.clone(),
                version: m.version,
                fingerprint: m.fingerprint,
            })
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.read().expect("registry lock").is_empty()
    }

    /// Rebuilds the architecture from parameter shapes and cross-checks
    /// every tensor.
    fn assemble(
        name: String,
        version: usize,
        fingerprint: u64,
        params: ParamSet,
        rho: f32,
    ) -> Result<ServeModel, ServeError> {
        let config = infer_config(&params, rho)?;
        let (model, fresh) = RlCcd::init(config);
        // Cross-validation: the architecture implied by the shapes must
        // want exactly the tensors the checkpoint provides.
        for (required, tensor) in fresh.iter() {
            match params.get(required) {
                None => {
                    return Err(ServeError::Registry(format!(
                        "checkpoint is missing parameter {required:?}"
                    )))
                }
                Some(provided) if provided.shape() != tensor.shape() => {
                    return Err(ServeError::Registry(format!(
                        "parameter {required:?} is {:?}, model wants {:?}",
                        provided.shape(),
                        tensor.shape()
                    )))
                }
                Some(_) => {}
            }
        }
        for (provided, _) in params.iter() {
            if fresh.get(provided).is_none() {
                return Err(ServeError::Registry(format!(
                    "checkpoint has unexpected parameter {provided:?}"
                )));
            }
        }
        Ok(ServeModel {
            name,
            version,
            fingerprint,
            model,
            params,
        })
    }
}

/// Reconstructs the [`RlConfig`] a parameter set was trained with from the
/// tensor shapes (checkpoints store weights, not hyper-parameters).
fn infer_config(params: &ParamSet, rho: f32) -> Result<RlConfig, ServeError> {
    let dim = |name: &str, col: bool| -> Result<usize, ServeError> {
        let t = params.get(name).ok_or_else(|| {
            ServeError::Registry(format!("checkpoint is missing parameter {name:?}"))
        })?;
        Ok(if col { t.cols() } else { t.rows() })
    };
    // dec.w2 maps the encoder query (lstm_hidden wide) into attention
    // space, so its row count pins the query width for every encoder kind.
    Ok(RlConfig {
        rho,
        gnn_hidden: dim("gnn.l0.proj.w", true)?,
        embed_dim: dim("gnn.fc.w", true)?,
        attn_dim: dim("dec.v", false)?,
        lstm_hidden: dim("dec.w2.w", false)?,
        encoder: if params.get("enc.lstm.wx_i").is_some() {
            EncoderKind::Lstm
        } else if params.get("enc.gru.wx_r").is_some() {
            EncoderKind::Gru
        } else {
            EncoderKind::None
        },
        ..RlConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd::{save_training_state, TrainingState};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rl_ccd_serve_registry_{tag}"));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn state_with(config: &RlConfig) -> TrainingState {
        let (_, params) = RlCcd::init(config.clone());
        TrainingState {
            next_iteration: 3,
            seed_base: config.seed,
            best_reward: -1.0,
            best_mean: -2.0,
            stale: 0,
            best_selection: vec![],
            params,
            adam: rl_ccd_nn::Adam::new(config.learning_rate),
            history: vec![],
            faults: vec![],
        }
    }

    #[test]
    fn loads_checkpoint_and_reconstructs_architecture() {
        let dir = tmp_dir("load");
        let mut config = RlConfig::fast();
        config.gnn_hidden = 12;
        config.embed_dim = 10;
        config.lstm_hidden = 14;
        config.attn_dim = 9;
        let state = state_with(&config);
        save_training_state(&state, &dir).expect("save");
        let reg = ModelRegistry::new();
        let entry = reg.load("default", &dir, 0.3).expect("load");
        assert_eq!(entry.version, 3);
        assert_eq!(entry.model.config.gnn_hidden, 12);
        assert_eq!(entry.model.config.embed_dim, 10);
        assert_eq!(entry.model.config.lstm_hidden, 14);
        assert_eq!(entry.model.config.attn_dim, 9);
        assert_eq!(entry.model.config.encoder, EncoderKind::Lstm);
        assert_eq!(entry.params, state.params);
        assert_eq!(reg.names(), ["default"]);
        let versions = reg.versions();
        assert_eq!(versions.len(), 1);
        assert_eq!(versions[0].name, "default");
        assert_eq!(versions[0].version, 3);
        assert_eq!(versions[0].fingerprint, entry.fingerprint);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encoder_kind_is_recovered_from_parameter_names() {
        for kind in [EncoderKind::Lstm, EncoderKind::Gru, EncoderKind::None] {
            let mut config = RlConfig::fast();
            config.encoder = kind;
            let (_, params) = RlCcd::init(config);
            let inferred = infer_config(&params, 0.3).expect("infer");
            assert_eq!(inferred.encoder, kind);
        }
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let dir = tmp_dir("corrupt");
        let state = state_with(&RlConfig::fast());
        save_training_state(&state, &dir).expect("save");
        // Flip one byte of the state: the manifest checksum must catch it.
        let path = dir.join("state.txt");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = ModelRegistry::new().load("bad", &dir, 0.3).unwrap_err();
        assert!(matches!(err, ServeError::Checkpoint(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incomplete_parameter_sets_are_rejected() {
        let (_, params) = RlCcd::init(RlConfig::fast());
        let mut incomplete = ParamSet::new();
        for (name, t) in params.iter() {
            if name != "dec.w1.w" {
                incomplete.insert(name.to_string(), t.clone());
            }
        }
        let err = ModelRegistry::new()
            .insert_params("m", incomplete, 0.3)
            .unwrap_err();
        assert!(matches!(err, ServeError::Registry(_)), "{err}");
    }

    #[test]
    fn identical_weights_share_a_fingerprint() {
        let (_, params) = RlCcd::init(RlConfig::fast());
        let reg = ModelRegistry::new();
        let a = reg.insert_params("a", params.clone(), 0.3).unwrap();
        let b = reg.insert_params("b", params, 0.3).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn install_swaps_atomically_and_returns_the_old_entry() {
        let dir = tmp_dir("swap");
        let state = state_with(&RlConfig::fast());
        save_training_state(&state, &dir).expect("save");
        let reg = ModelRegistry::new();
        let old = reg.load("champion", &dir, 0.3).expect("load");
        // A holder of the old Arc keeps serving it across the swap.
        let held = reg.get("champion").expect("entry");
        assert_eq!(held.fingerprint, old.fingerprint);
        let fresh = ModelRegistry::prepare("champion", &dir, 0.3).expect("prepare");
        let evicted = reg.install(fresh.clone()).expect("previous entry");
        assert!(Arc::ptr_eq(&evicted, &old));
        let now = reg.get("champion").expect("entry");
        assert!(Arc::ptr_eq(&now, &fresh));
        assert_eq!(held.fingerprint, now.fingerprint, "same checkpoint bytes");
        assert!(reg.remove("champion").is_some());
        assert!(reg.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
