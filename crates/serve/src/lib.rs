//! rl-ccd-serve: a concurrent endpoint-selection inference service.
//!
//! Trained RL-CCD checkpoints answer "which timing endpoints should the
//! clock path over-fix on this design?" to many concurrent callers:
//!
//! * [`ModelRegistry`] — versioned models loaded from checkpoints through
//!   the same FNV-1a manifest gate as training resume;
//! * [`protocol`] — a length-prefixed framed TCP protocol with a version
//!   token and typed rejections;
//! * [`Server`] — a std-only worker pool with **cross-request dynamic
//!   batching** (configurable batch size and batching window), bounded
//!   queues with `busy`/`deadline` backpressure, and graceful drain;
//! * [`EnvCache`] / [`SelectionCache`] — LRU memoization of per-design
//!   feature extraction, cone-overlap masks, and greedy selections;
//! * [`ServeHandle`] (in-process) and [`ServeClient`] (TCP) clients.
//!
//! Selections are computed on the inference-only no-grad fast path
//! ([`rl_ccd::select_endpoints`]), which is bit-identical to the training
//! forward pass — so a served answer equals what `evaluate_policy` reports
//! offline, regardless of batching, concurrency, or cache state
//! (`tests/serve_parity.rs` pins this).
//!
//! ```no_run
//! use rl_ccd_serve::{ModelRegistry, ServeConfig, Server};
//! use rl_ccd_serve::protocol::{DesignKey, Mode, QueryRequest};
//!
//! let registry = ModelRegistry::new();
//! registry.load("default", "ckpt/", 0.3)?;
//! let server = Server::start(registry, ServeConfig::default());
//! let reply = server.handle().query(QueryRequest {
//!     model: "default".into(),
//!     design: "demo:800:7nm:1".parse::<DesignKey>().unwrap(),
//!     mode: Mode::Greedy,
//!     deadline_ms: Some(5_000),
//!     auth: None,
//! });
//! println!("{reply:?}");
//! server.shutdown();
//! # Ok::<(), rl_ccd_serve::ServeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod experience;
pub mod protocol;
mod reactor;
pub mod registry;
mod scheduler;
pub mod server;

pub use cache::{EnvCache, LruCache, SelectionCache};
pub use client::{ClientBuilder, ServeClient};
pub use experience::{ExperienceEvent, ExperienceHook};
pub use protocol::{
    Credentials, DesignKey, HealthReply, Mode, ModelVersion, QueryReply, QueryRequest, RejectKind,
    Request, Response, PROTOCOL_VERSION,
};
pub use registry::{ModelRegistry, ServeModel};
pub use server::{DrainReport, ServeConfig, ServeHandle, ServeStats, Server};

use std::fmt;

/// Errors raised while building a server (loading models, binding).
/// Request-time failures are never this type — they travel to the client
/// as typed [`RejectKind`] responses instead.
#[derive(Debug)]
pub enum ServeError {
    /// Checkpoint verification or parsing failed.
    Checkpoint(rl_ccd::CheckpointError),
    /// The checkpoint verified but does not describe a complete model.
    Registry(String),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            ServeError::Registry(msg) => write!(f, "registry: {msg}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Checkpoint(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Registry(_) => None,
        }
    }
}

impl From<rl_ccd::CheckpointError> for ServeError {
    fn from(e: rl_ccd::CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
