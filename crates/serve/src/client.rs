//! Blocking TCP client for the framed serve protocol (`rlccd query`
//! speaks through this).
//!
//! The client is hardened against a hostile network:
//!
//! * **No read can hang forever.** Every socket operation runs under a
//!   timeout: the request's deadline budget when one is set, else
//!   [`ServeClient::DEFAULT_TIMEOUT`].
//! * **Deadline budgets propagate.** A request's `deadline_ms` is treated
//!   as a total budget for the roundtrip including retries; the value
//!   sent on the wire is the budget *remaining* at send time, so the
//!   server's queue-deadline check and the client's socket timeouts agree.
//! * **Retries are idempotent.** Selections are pure functions of
//!   (model, design, mode), so a failed roundtrip is safely re-issued on
//!   a fresh connection after a seeded exponential backoff. A typed
//!   [`Response::Overloaded`] is retried after the server's
//!   `retry_after_ms` hint (or the backoff, whichever is longer).

use crate::protocol::{HealthReply, QueryRequest, Request, Response};
use rl_ccd_wire::{ChaosTransport, DeadlineBudget, NetFaultPlan, RetryPolicy};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// One connection to a serve endpoint. Requests are pipelined one at a
/// time: send a frame, read a frame.
#[derive(Debug)]
pub struct ServeClient {
    transport: ChaosTransport<TcpStream>,
    addrs: Vec<SocketAddr>,
    retry: RetryPolicy,
    timeout: Option<Duration>,
    chaos: Option<(Arc<NetFaultPlan>, u64)>,
    retries: u64,
    reconnects: u64,
}

impl ServeClient {
    /// Fallback cap on any single socket operation when the request
    /// carries no deadline — a silent peer costs this much, not forever.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`). The connection
    /// starts with no retries ([`RetryPolicy::none`]) and the
    /// [`ServeClient::DEFAULT_TIMEOUT`] socket-operation cap.
    ///
    /// # Errors
    /// Propagates resolution and connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = connect_any(&addrs, None)?;
        Ok(Self {
            transport: ChaosTransport::new(stream),
            addrs,
            retry: RetryPolicy::none(),
            timeout: Some(Self::DEFAULT_TIMEOUT),
            chaos: None,
            retries: 0,
            reconnects: 0,
        })
    }

    /// Enables retry-with-backoff (and reconnect) for queries.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a chaos plan, addressing this client's connection as
    /// `conn`. Reconnects resume the old connection's frame numbering.
    #[must_use]
    pub fn with_chaos(mut self, plan: Arc<NetFaultPlan>, conn: u64) -> Self {
        self.transport =
            ChaosTransport::new(self.transport.into_inner()).with_plan(Arc::clone(&plan), conn);
        self.chaos = Some((plan, conn));
        self
    }

    /// Caps how long a single socket operation may block when the request
    /// carries no deadline budget. `None` removes the cap (the socket can
    /// block indefinitely again — test use only).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Transport retries performed so far (failed roundtrips re-issued
    /// plus overload backoffs honored).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnections performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sends one query and blocks for the response, retrying per the
    /// retry policy. The request's `deadline_ms` is the total budget for
    /// all attempts.
    ///
    /// # Errors
    /// I/O failures after retries are exhausted, `TimedOut` when the
    /// deadline budget runs out, or `InvalidData` when the server's
    /// payload does not parse.
    pub fn query(&mut self, request: QueryRequest) -> io::Result<Response> {
        let budget = match request.deadline_ms {
            Some(ms) => DeadlineBudget::from_ms(ms),
            None => DeadlineBudget::unbounded(),
        };
        let key = self.chaos.as_ref().map_or(0, |(_, conn)| *conn);
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let result = self.attempt_query(&request, &budget);
            match result {
                Ok(Response::Overloaded { retry_after_ms })
                    if attempt < self.retry.max_attempts =>
                {
                    // The server shed us; honor its backoff hint (or our
                    // own schedule, whichever is longer) within budget.
                    let backoff = self
                        .retry
                        .backoff(key, attempt)
                        .max(Duration::from_millis(retry_after_ms));
                    self.sleep_within(&budget, backoff)?;
                    self.retries += 1;
                    rl_ccd_obs::counter!("serve.client.retries", 1);
                }
                Ok(response) => return Ok(response),
                Err(e) if attempt < self.retry.max_attempts && retriable(&e) => {
                    self.sleep_within(&budget, self.retry.backoff(key, attempt))?;
                    self.reconnect(&budget)?;
                    self.retries += 1;
                    rl_ccd_obs::counter!("serve.client.retries", 1);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Probes the server's health (never queued server-side; retried like
    /// a query).
    ///
    /// # Errors
    /// Same as [`ServeClient::query`], plus `InvalidData` when the server
    /// answers a probe with anything but a health reply.
    pub fn health(&mut self) -> io::Result<HealthReply> {
        let budget = DeadlineBudget::unbounded();
        match self.roundtrip(&Request::Health, &budget)? {
            Response::Health(h) => Ok(h),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("health probe answered with {other:?}"),
            )),
        }
    }

    /// Sends the admin shutdown request; the server acknowledges and
    /// begins draining. Never retried.
    ///
    /// # Errors
    /// Same as [`ServeClient::query`].
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.roundtrip(&Request::Shutdown, &DeadlineBudget::unbounded())
    }

    /// One send/receive under the budget, with the remaining budget
    /// re-encoded onto the wire.
    fn attempt_query(
        &mut self,
        request: &QueryRequest,
        budget: &DeadlineBudget,
    ) -> io::Result<Response> {
        let mut send = request.clone();
        if request.deadline_ms.is_some() {
            send.deadline_ms = budget.remaining_ms()?;
        }
        self.roundtrip(&Request::Query(send), budget)
    }

    fn roundtrip(&mut self, request: &Request, budget: &DeadlineBudget) -> io::Result<Response> {
        budget.arm(self.transport.get_ref(), self.timeout)?;
        self.transport.write_frame(&request.encode())?;
        let payload = self.transport.read_frame()?;
        Response::decode(&payload).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    /// Sleeps `backoff`, but never past the deadline budget.
    fn sleep_within(&self, budget: &DeadlineBudget, backoff: Duration) -> io::Result<()> {
        let sleep = match budget.remaining()? {
            // Leave a sliver of budget for the retry itself.
            Some(left) if left <= backoff => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "deadline budget too low to cover the retry backoff",
                ));
            }
            _ => backoff,
        };
        std::thread::sleep(sleep);
        Ok(())
    }

    /// Replaces the transport with a fresh connection, carrying the chaos
    /// plan and frame numbering over.
    fn reconnect(&mut self, budget: &DeadlineBudget) -> io::Result<()> {
        let connect_timeout = budget.remaining()?.or(self.timeout);
        let stream = connect_any(&self.addrs, connect_timeout)?;
        let frame = self.transport.frame_index();
        let mut fresh = ChaosTransport::new(stream);
        if let Some((plan, conn)) = &self.chaos {
            fresh = fresh.with_plan(Arc::clone(plan), *conn).resume_at(frame);
        }
        self.transport = fresh;
        self.reconnects += 1;
        rl_ccd_obs::counter!("serve.client.reconnects", 1);
        Ok(())
    }
}

/// Whether a roundtrip failure is worth a reconnect + re-issue: transport
/// deaths and timeouts are; protocol violations (`InvalidData`) are not.
fn retriable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// Connects to the first reachable address, with nodelay set.
fn connect_any(addrs: &[SocketAddr], timeout: Option<Duration>) -> io::Result<TcpStream> {
    let mut last_err = None;
    for addr in addrs {
        let attempt = match timeout {
            Some(t) => TcpStream::connect_timeout(addr, t),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to")))
}
