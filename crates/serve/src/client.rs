//! Blocking TCP client for the framed serve protocol (`rlccd query`
//! speaks through this).
//!
//! Connections are configured through [`ClientBuilder`] (address, retry
//! policy, deadline cap, chaos plan) and ride on the unified
//! [`rl_ccd_wire::Transport`] stack — the same [`FramedTcp`] the dist
//! coordinator and workers use — so chaos wrapping, reconnect frame
//! numbering, and deadline arming behave identically everywhere.
//!
//! The client is hardened against a hostile network:
//!
//! * **No read can hang forever.** Every socket operation runs under a
//!   timeout: the request's deadline budget when one is set, else
//!   [`ServeClient::DEFAULT_TIMEOUT`].
//! * **Deadline budgets propagate.** A request's `deadline_ms` is treated
//!   as a total budget for the roundtrip including retries; the value
//!   sent on the wire is the budget *remaining* at send time, so the
//!   server's queue-deadline check and the client's socket timeouts agree.
//! * **Retries are idempotent.** Selections are pure functions of
//!   (model, design, mode), so a failed roundtrip is safely re-issued on
//!   a fresh connection after a seeded exponential backoff. A typed
//!   [`Response::Overloaded`] is retried after the server's
//!   `retry_after_ms` hint (or the backoff, whichever is longer).

use crate::protocol::{HealthReply, QueryRequest, Request, Response, MAX_FRAME_LEN};
use rl_ccd_wire::{roundtrip, DeadlineBudget, Endpoint, FramedTcp, NetFaultPlan, RetryPolicy};
use std::io;
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Duration;

/// Configures and dials a [`ServeClient`], collapsing the old
/// constructor sprawl (`connect` + `with_retry` + `with_chaos` +
/// `set_timeout`) into one place, mirroring the core `Session` builder.
///
/// ```no_run
/// use rl_ccd_serve::ServeClient;
/// use rl_ccd_wire::RetryPolicy;
///
/// let client = ServeClient::builder()
///     .addr("127.0.0.1:7878")
///     .retry(RetryPolicy::seeded(1).with_attempts(3))
///     .connect()?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct ClientBuilder {
    endpoint: Option<io::Result<Endpoint>>,
    retry: RetryPolicy,
    timeout: Option<Duration>,
    chaos: Option<(Arc<NetFaultPlan>, u64)>,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder {
            endpoint: None,
            retry: RetryPolicy::none(),
            timeout: Some(ServeClient::DEFAULT_TIMEOUT),
            chaos: None,
        }
    }
}

impl ClientBuilder {
    /// The server address to dial (e.g. `"127.0.0.1:7878"`). Required.
    /// Resolution happens here; a resolution failure surfaces from
    /// [`ClientBuilder::connect`].
    #[must_use]
    pub fn addr(mut self, addr: impl ToSocketAddrs) -> Self {
        self.endpoint = Some(Endpoint::resolve(addr));
        self
    }

    /// Retry-with-backoff (and reconnect) policy for queries. Defaults to
    /// [`RetryPolicy::none`]: fail on the first error.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Caps how long a single socket operation may block when the request
    /// carries no deadline budget. Defaults to
    /// [`ServeClient::DEFAULT_TIMEOUT`]; `None` removes the cap (the
    /// socket can block indefinitely — test use only).
    #[must_use]
    pub fn timeout(mut self, timeout: impl Into<Option<Duration>>) -> Self {
        self.timeout = timeout.into();
        self
    }

    /// Attaches a chaos plan, addressing this client's connection as
    /// `conn`. Reconnects resume the old connection's frame numbering, so
    /// plan coordinates stay stable across retries.
    #[must_use]
    pub fn chaos(mut self, plan: Arc<NetFaultPlan>, conn: u64) -> Self {
        self.chaos = Some((plan, conn));
        self
    }

    /// Dials the configured endpoint.
    ///
    /// # Errors
    /// `InvalidInput` when no address was set, plus resolution and
    /// connection failures.
    pub fn connect(self) -> io::Result<ServeClient> {
        let mut endpoint = self.endpoint.ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "ClientBuilder needs an addr")
        })??;
        if let Some((plan, conn)) = self.chaos {
            endpoint = endpoint.with_chaos(plan, conn);
        }
        Ok(ServeClient {
            transport: endpoint.connect(None)?,
            retry: self.retry,
            timeout: self.timeout,
            retries: 0,
            reconnects: 0,
        })
    }
}

/// One connection to a serve endpoint. Requests are pipelined one at a
/// time: send a frame, read a frame.
#[derive(Debug)]
pub struct ServeClient {
    transport: FramedTcp,
    retry: RetryPolicy,
    timeout: Option<Duration>,
    retries: u64,
    reconnects: u64,
}

impl ServeClient {
    /// Fallback cap on any single socket operation when the request
    /// carries no deadline — a silent peer costs this much, not forever.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

    /// Largest `retry_after_ms` hint the retry loop will sleep on. A
    /// hint above this (a spent monthly quota's horizon) is returned to
    /// the caller as the typed response instead.
    pub const MAX_RETRYABLE_HINT_MS: u64 = 10_000;

    /// Starts configuring a client: address, retry policy, deadline cap,
    /// chaos plan.
    #[must_use]
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`) with the builder's
    /// defaults: no retries ([`RetryPolicy::none`]) and the
    /// [`ServeClient::DEFAULT_TIMEOUT`] socket-operation cap.
    ///
    /// # Errors
    /// Propagates resolution and connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::builder().addr(addr).connect()
    }

    /// Enables retry-with-backoff (and reconnect) for queries.
    #[deprecated(note = "use ServeClient::builder().retry(..) instead")]
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a chaos plan, addressing this client's connection as
    /// `conn`. Reconnects resume the old connection's frame numbering.
    #[deprecated(note = "use ServeClient::builder().chaos(..) instead")]
    #[must_use]
    pub fn with_chaos(mut self, plan: Arc<NetFaultPlan>, conn: u64) -> Self {
        self.transport.rewire_chaos(plan, conn);
        self
    }

    /// Caps how long a single socket operation may block when the request
    /// carries no deadline budget. `None` removes the cap (the socket can
    /// block indefinitely again — test use only).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Transport retries performed so far (failed roundtrips re-issued
    /// plus overload backoffs honored).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnections performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sends one query and blocks for the response, retrying per the
    /// retry policy. The request's `deadline_ms` is the total budget for
    /// all attempts.
    ///
    /// # Errors
    /// I/O failures after retries are exhausted, `TimedOut` when the
    /// deadline budget runs out, or `InvalidData` when the server's
    /// payload does not parse.
    pub fn query(&mut self, request: QueryRequest) -> io::Result<Response> {
        let budget = match request.deadline_ms {
            Some(ms) => DeadlineBudget::from_ms(ms),
            None => DeadlineBudget::unbounded(),
        };
        let key = self
            .transport
            .endpoint()
            .chaos()
            .map_or(0, |(_, conn)| conn);
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let result = self.attempt_query(&request, &budget);
            match result {
                // A shed or a *short* tenancy throttle (a token bucket
                // refilling) is worth waiting out; a long QuotaExceeded
                // hint (a spent monthly quota) is surfaced to the caller
                // instead of sleeping until next month.
                Ok(
                    Response::Overloaded { retry_after_ms }
                    | Response::QuotaExceeded { retry_after_ms },
                ) if attempt < self.retry.max_attempts
                    && retry_after_ms <= Self::MAX_RETRYABLE_HINT_MS =>
                {
                    // The server shed us; honor its backoff hint (or our
                    // own schedule, whichever is longer) within budget.
                    let backoff = self
                        .retry
                        .backoff(key, attempt)
                        .max(Duration::from_millis(retry_after_ms));
                    self.sleep_within(&budget, backoff)?;
                    self.retries += 1;
                    rl_ccd_obs::counter!("serve.client.retries", 1);
                }
                Ok(response) => return Ok(response),
                Err(e) if attempt < self.retry.max_attempts && retriable(&e) => {
                    self.sleep_within(&budget, self.retry.backoff(key, attempt))?;
                    self.reconnect(&budget)?;
                    self.retries += 1;
                    rl_ccd_obs::counter!("serve.client.retries", 1);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Probes the server's health (never queued server-side; retried like
    /// a query).
    ///
    /// # Errors
    /// Same as [`ServeClient::query`], plus `InvalidData` when the server
    /// answers a probe with anything but a health reply.
    pub fn health(&mut self) -> io::Result<HealthReply> {
        let budget = DeadlineBudget::unbounded();
        match self.roundtrip(&Request::Health, &budget)? {
            Response::Health(h) => Ok(h),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("health probe answered with {other:?}"),
            )),
        }
    }

    /// Sends the admin shutdown request; the server acknowledges and
    /// begins draining. Never retried.
    ///
    /// # Errors
    /// Same as [`ServeClient::query`].
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.roundtrip(&Request::Shutdown, &DeadlineBudget::unbounded())
    }

    /// One send/receive under the budget, with the remaining budget
    /// re-encoded onto the wire.
    fn attempt_query(
        &mut self,
        request: &QueryRequest,
        budget: &DeadlineBudget,
    ) -> io::Result<Response> {
        let mut send = request.clone();
        if request.deadline_ms.is_some() {
            send.deadline_ms = budget.remaining_ms()?;
        }
        self.roundtrip(&Request::Query(send), budget)
    }

    fn roundtrip(&mut self, request: &Request, budget: &DeadlineBudget) -> io::Result<Response> {
        let payload = roundtrip(
            &mut self.transport,
            &request.encode(),
            MAX_FRAME_LEN,
            budget,
            self.timeout,
        )?;
        Response::decode(&payload).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    /// Sleeps `backoff`, but never past the deadline budget.
    fn sleep_within(&self, budget: &DeadlineBudget, backoff: Duration) -> io::Result<()> {
        let sleep = match budget.remaining()? {
            // Leave a sliver of budget for the retry itself.
            Some(left) if left <= backoff => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "deadline budget too low to cover the retry backoff",
                ));
            }
            _ => backoff,
        };
        std::thread::sleep(sleep);
        Ok(())
    }

    /// Replaces the transport with a fresh connection, carrying the chaos
    /// plan and frame numbering over.
    fn reconnect(&mut self, budget: &DeadlineBudget) -> io::Result<()> {
        let connect_timeout = budget.remaining()?.or(self.timeout);
        self.transport.reconnect(connect_timeout)?;
        self.reconnects += 1;
        rl_ccd_obs::counter!("serve.client.reconnects", 1);
        Ok(())
    }
}

/// Whether a roundtrip failure is worth a reconnect + re-issue: transport
/// deaths and timeouts are; protocol violations (`InvalidData`) are not.
fn retriable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}
