//! Blocking TCP client for the framed serve protocol (`rlccd query`
//! speaks through this).

use crate::protocol::{read_frame, write_frame, QueryRequest, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a serve endpoint. Requests are pipelined one at a
/// time: send a frame, read a frame.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// Caps how long a single response read may block.
    ///
    /// # Errors
    /// Propagates socket-option failures.
    pub fn set_timeout(&self, timeout: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    /// Sends one query and blocks for the response.
    ///
    /// # Errors
    /// I/O failures, or `InvalidData` when the server's payload does not
    /// parse.
    pub fn query(&mut self, request: QueryRequest) -> io::Result<Response> {
        self.roundtrip(&Request::Query(request))
    }

    /// Sends the admin shutdown request; the server acknowledges and
    /// begins draining.
    ///
    /// # Errors
    /// Same as [`ServeClient::query`].
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.roundtrip(&Request::Shutdown)
    }

    fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?;
        Response::decode(&payload).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }
}
