//! Bounded request queue with cross-request dynamic batching.
//!
//! Submissions land in one `Mutex<VecDeque>` guarded by a `Condvar`. A
//! worker asking for work blocks until a first job arrives, then keeps
//! collecting until either the batch is full (`max_batch`) or the batching
//! window has elapsed since the first job was picked up — the classic
//! latency/throughput dial: window 0 still batches whatever is already
//! queued (pure backlog batching), larger windows trade a bounded delay
//! for bigger batches.
//!
//! Backpressure is typed, not silent: a full queue rejects with
//! [`RejectKind::Busy`] at submit time, a draining queue with
//! [`RejectKind::ShuttingDown`], and a request whose deadline passes
//! before dispatch is answered with [`RejectKind::Deadline`] by the worker
//! (the reply is still delivered — drain accounting counts it as
//! completed, never dropped).

use crate::protocol::{QueryRequest, RejectKind, Response};
use rl_ccd_wire::Waker;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Completed responses bound for reactor-driven connections, plus the
/// waker that interrupts the reactor's poll to deliver them. Batch
/// workers push here and never block: the reactor owns the sockets.
#[derive(Debug)]
pub(crate) struct CompletionQueue {
    done: Mutex<Vec<(u64, Response)>>,
    waker: Waker,
}

impl CompletionQueue {
    pub(crate) fn new(waker: Waker) -> Self {
        Self {
            done: Mutex::new(Vec::new()),
            waker,
        }
    }

    /// Queues a finished response for the connection registered under
    /// `token` and wakes the reactor.
    pub(crate) fn push(&self, token: u64, response: Response) {
        self.done
            .lock()
            .expect("completion queue lock")
            .push((token, response));
        self.waker.wake();
    }

    /// Takes everything queued (called by the reactor after a wake).
    pub(crate) fn take(&self) -> Vec<(u64, Response)> {
        std::mem::take(&mut *self.done.lock().expect("completion queue lock"))
    }
}

/// Where a finished job's response goes: a blocking caller's channel
/// (in-process handle, thread-per-connection loop), or the reactor's
/// completion queue with the token of the connection that asked.
#[derive(Clone, Debug)]
pub(crate) enum ReplySink {
    Channel(mpsc::Sender<Response>),
    Completion {
        token: u64,
        queue: Arc<CompletionQueue>,
    },
}

impl ReplySink {
    /// Delivers the response. A receiver that hung up is not an error the
    /// worker can act on, so delivery is best-effort by design.
    pub(crate) fn send(&self, response: Response) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(response);
            }
            ReplySink::Completion { token, queue } => queue.push(*token, response),
        }
    }
}

/// One queued request plus everything needed to answer it.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) request: QueryRequest,
    pub(crate) reply: ReplySink,
    pub(crate) enqueued: Instant,
    pub(crate) deadline: Option<Instant>,
}

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<Job>,
    draining: bool,
}

/// The shared submission queue.
#[derive(Debug)]
pub(crate) struct Scheduler {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

impl Scheduler {
    /// A queue admitting at most `capacity` undispatched jobs. Capacity 0
    /// is legal and sheds every submission — the deterministic way to
    /// exercise (and test) the overload path.
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a job, or rejects it with the typed backpressure reason.
    pub(crate) fn submit(&self, job: Job) -> Result<(), RejectKind> {
        let mut st = self.state.lock().expect("scheduler lock");
        if st.draining {
            return Err(RejectKind::ShuttingDown);
        }
        if st.queue.len() >= self.capacity {
            return Err(RejectKind::Busy);
        }
        st.queue.push_back(job);
        rl_ccd_obs::gauge!("serve.queue.depth", st.queue.len() as f64);
        // notify_all: a worker sleeping inside its batching window must
        // also wake to absorb the new job into its batch.
        self.available.notify_all();
        Ok(())
    }

    /// Blocks until work is available and returns up to `max_batch` jobs
    /// collected within `window` of the first one; `None` once the queue
    /// is drained and no more work will ever arrive (worker exit signal).
    pub(crate) fn next_batch(&self, max_batch: usize, window: Duration) -> Option<Vec<Job>> {
        let max_batch = max_batch.max(1);
        let mut st = self.state.lock().expect("scheduler lock");
        loop {
            if let Some(first) = st.queue.pop_front() {
                let mut batch = vec![first];
                let close_at = Instant::now() + window;
                while batch.len() < max_batch {
                    if let Some(job) = st.queue.pop_front() {
                        batch.push(job);
                        continue;
                    }
                    if st.draining {
                        break; // nothing more will ever arrive
                    }
                    let now = Instant::now();
                    if now >= close_at {
                        break;
                    }
                    let (guard, timeout) = self
                        .available
                        .wait_timeout(st, close_at - now)
                        .expect("scheduler lock");
                    st = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
                rl_ccd_obs::gauge!("serve.queue.depth", st.queue.len() as f64);
                return Some(batch);
            }
            if st.draining {
                return None;
            }
            st = self.available.wait(st).expect("scheduler lock");
        }
    }

    /// Marks the queue as draining: submissions start rejecting with
    /// `ShuttingDown`; workers finish the backlog, then exit.
    pub(crate) fn drain(&self) {
        self.state.lock().expect("scheduler lock").draining = true;
        self.available.notify_all();
    }

    /// Jobs currently queued (not yet dispatched).
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("scheduler lock").queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DesignKey, Mode};

    fn job() -> (Job, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                request: QueryRequest {
                    model: "m".into(),
                    design: DesignKey {
                        name: "d".into(),
                        cells: 10,
                        tech: "7nm".into(),
                        seed: 1,
                    },
                    mode: Mode::Greedy,
                    deadline_ms: None,
                    auth: None,
                },
                reply: ReplySink::Channel(tx),
                enqueued: Instant::now(),
                deadline: None,
            },
            rx,
        )
    }

    #[test]
    fn full_queue_rejects_busy_and_draining_rejects_shutting_down() {
        let s = Scheduler::new(1);
        let (j1, _r1) = job();
        let (j2, _r2) = job();
        assert!(s.submit(j1).is_ok());
        assert_eq!(s.submit(j2).unwrap_err(), RejectKind::Busy);
        s.drain();
        let (j3, _r3) = job();
        assert_eq!(s.submit(j3).unwrap_err(), RejectKind::ShuttingDown);
    }

    #[test]
    fn zero_window_still_batches_the_backlog() {
        let s = Scheduler::new(16);
        for _ in 0..5 {
            let (j, _r) = job();
            std::mem::forget(_r); // keep senders alive without receivers
            s.submit(j).unwrap();
        }
        let batch = s.next_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 4, "max_batch caps a zero-window batch");
        let rest = s.next_batch(4, Duration::ZERO).unwrap();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn window_absorbs_late_arrivals_into_the_batch() {
        let s = Arc::new(Scheduler::new(16));
        let (j, _r) = job();
        s.submit(j).unwrap();
        let producer = {
            let s = s.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                let (j, r) = job();
                std::mem::forget(r);
                s.submit(j).unwrap();
            })
        };
        let batch = s.next_batch(8, Duration::from_millis(400)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch.len(), 2, "late arrival inside the window joined");
    }

    #[test]
    fn drained_empty_queue_releases_workers() {
        let s = Arc::new(Scheduler::new(4));
        let worker = {
            let s = s.clone();
            std::thread::spawn(move || s.next_batch(4, Duration::from_millis(1)))
        };
        std::thread::sleep(Duration::from_millis(20));
        s.drain();
        assert!(worker.join().unwrap().is_none());
    }
}
