//! The server: worker pool, batch execution, TCP front-end, graceful drain.
//!
//! Life of a request: a client (in-process [`ServeHandle`] or TCP
//! connection) submits a [`QueryRequest`] with a reply channel; the
//! scheduler queues it (or rejects with typed backpressure); a worker
//! collects a dynamic batch, groups it by (model, design) so each group
//! resolves its environment **once** through the LRU cache, computes each
//! selection on the inference-only no-grad fast path, and sends every
//! reply. Greedy results are memoized per (model fingerprint, design).
//!
//! Shutdown is a drain, never a drop: [`Server::shutdown`] flips the queue
//! to draining (new submissions get `shutting_down`), wakes everything,
//! joins the workers after they empty the backlog, and returns a
//! [`DrainReport`] whose `dropped()` is zero exactly when every accepted
//! request was answered.

use crate::cache::{EnvCache, SelectionCache};
use crate::experience::{ExperienceEvent, ExperienceHook};
use crate::protocol::{HealthReply, Mode, QueryReply, QueryRequest, RejectKind, Request, Response};
use crate::registry::ModelRegistry;
use crate::scheduler::{Job, ReplySink, Scheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd::InferSession;
use rl_ccd_netlist::EndpointId;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Largest batch a worker dispatches at once.
    pub max_batch: usize,
    /// How long a worker holds an open batch for more requests to arrive.
    pub window: Duration,
    /// Bounded queue capacity; submissions beyond it get `busy`.
    pub queue_capacity: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// LRU capacity of the design-environment cache.
    pub env_cache: usize,
    /// LRU capacity of the memoized greedy-selection cache.
    pub selection_cache: usize,
    /// Message-passing fanout cap for environment construction.
    pub fanout_cap: usize,
    /// How long a response write may block before the connection is
    /// evicted as a slow client (its response buffer is the bound on
    /// per-connection memory: one frame, never an unbounded backlog).
    pub write_timeout: Duration,
    /// Kernel send-buffer cap (`SO_SNDBUF`) applied to each reactor
    /// connection; `None` keeps the kernel's autotuned default. Bounding
    /// it keeps per-connection kernel memory predictable with thousands
    /// of sockets, and makes a client that stops reading hit the
    /// write-stall eviction instead of hiding in autotuned buffers.
    pub sock_send_buffer: Option<usize>,
    /// Experience hook called once per completed sampled query (the
    /// closed-loop learning seam); `None` serves without logging.
    pub experience: Option<Arc<dyn ExperienceHook>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            window: Duration::from_millis(2),
            queue_capacity: 64,
            workers: 2,
            env_cache: 4,
            selection_cache: 64,
            fanout_cap: 24,
            write_timeout: Duration::from_secs(5),
            sock_send_buffer: None,
            experience: None,
        }
    }
}

impl ServeConfig {
    /// The backoff hint attached to `Overloaded` sheds: the estimated
    /// time to drain a full queue through the worker pool, floored at
    /// 1 ms. Deterministic in the config, so tests can pin it.
    pub fn shed_retry_after_ms(&self) -> u64 {
        let per_sweep = (self.workers.max(1) * self.max_batch.max(1)) as u64;
        let sweeps = (self.queue_capacity as u64).div_ceil(per_sweep).max(1);
        (sweeps * self.window.as_millis() as u64).max(1)
    }
}

/// Atomic lifetime counters plus the per-batch-size census.
#[derive(Debug, Default)]
pub(crate) struct Stats {
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_shutdown: AtomicU64,
    deadline_expired: AtomicU64,
    shed: AtomicU64,
    evicted: AtomicU64,
    health_probes: AtomicU64,
    /// Reactor front-end: poll returns (wakeups of the event loop).
    pub(crate) reactor_polls: AtomicU64,
    /// Reactor front-end: readiness events processed. Idle connections
    /// contribute nothing here — the O(active) scaling claim in numbers.
    pub(crate) reactor_events: AtomicU64,
    batches: Mutex<BTreeMap<usize, u64>>,
}

/// A point-in-time copy of the server's counters.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests answered (selections, deadline errors, internal errors —
    /// every delivered reply).
    pub completed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_busy: u64,
    /// Submissions rejected because the server was draining.
    pub rejected_shutdown: u64,
    /// Accepted requests whose deadline passed before dispatch.
    pub deadline_expired: u64,
    /// Submissions shed with a typed `Overloaded` response (a subset of
    /// `rejected_busy`: every shed is a busy rejection answered with the
    /// machine-readable backoff hint).
    pub shed: u64,
    /// Connections evicted because a response write outlived
    /// [`ServeConfig::write_timeout`] (slow clients).
    pub evicted: u64,
    /// Health probes answered.
    pub health_probes: u64,
    /// Reactor front-end poll returns (0 when serving via [`Server::bind`]).
    pub reactor_polls: u64,
    /// Reactor front-end readiness events processed. Stays proportional
    /// to *active* connections: idle sockets never produce an event.
    pub reactor_events: u64,
    /// batch size → number of batches dispatched at that size.
    pub batches: BTreeMap<usize, u64>,
}

impl ServeStats {
    /// Weighted median batch size (0 when no batch was dispatched) — the
    /// acceptance metric for "dynamic batching actually batches".
    pub fn batch_p50(&self) -> usize {
        let total: u64 = self.batches.values().sum();
        if total == 0 {
            return 0;
        }
        let mut seen = 0;
        for (&size, &count) in &self.batches {
            seen += count;
            if seen * 2 >= total {
                return size;
            }
        }
        0
    }
}

/// Drain outcome returned by [`Server::shutdown`].
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Final counters.
    pub stats: ServeStats,
    /// Jobs still queued after the workers exited (must be 0).
    pub abandoned_queue: usize,
}

impl DrainReport {
    /// Accepted requests that never got a reply — 0 on a clean drain.
    pub fn dropped(&self) -> u64 {
        (self.stats.accepted - self.stats.completed) + self.abandoned_queue as u64
    }
}

pub(crate) struct Shared {
    registry: ModelRegistry,
    scheduler: Scheduler,
    envs: EnvCache,
    selections: SelectionCache,
    pub(crate) stats: Stats,
    pub(crate) draining: AtomicBool,
    pub(crate) recorder: Option<rl_ccd_obs::Recorder>,
    queue_capacity: usize,
    shed_retry_after_ms: u64,
    pub(crate) write_timeout: Duration,
    pub(crate) sock_send_buffer: Option<usize>,
    fanout_cap: usize,
    experience: Option<Arc<dyn ExperienceHook>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("models", &self.registry.names())
            .field("queue_depth", &self.scheduler.depth())
            .finish()
    }
}

/// A running inference server.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    listener: Option<FrontEnd>,
}

/// Which TCP front-end is serving: the thread-per-connection accept loop
/// ([`Server::bind`]) or the single-threaded readiness reactor
/// ([`Server::bind_reactor`]).
#[derive(Debug)]
enum FrontEnd {
    Blocking(ListenerState),
    Reactor {
        addr: SocketAddr,
        thread: JoinHandle<()>,
        waker: rl_ccd_wire::Waker,
    },
}

impl FrontEnd {
    fn addr(&self) -> SocketAddr {
        match self {
            FrontEnd::Blocking(l) => l.addr,
            FrontEnd::Reactor { addr, .. } => *addr,
        }
    }
}

#[derive(Debug)]
struct ListenerState {
    addr: SocketAddr,
    accept_thread: JoinHandle<()>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Cheap in-process client — the same queue and typed rejections as TCP,
/// minus the socket. Clone freely across threads.
#[derive(Clone, Debug)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl Server {
    /// Starts the worker pool over `registry` and returns the running
    /// server. The current observability recorder (if one is attached on
    /// the calling thread) is captured and re-attached inside every
    /// worker and connection thread.
    pub fn start(registry: ModelRegistry, config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            registry,
            scheduler: Scheduler::new(config.queue_capacity),
            envs: EnvCache::new(config.env_cache, config.fanout_cap),
            selections: SelectionCache::new(config.selection_cache),
            stats: Stats::default(),
            draining: AtomicBool::new(false),
            recorder: rl_ccd_obs::current(),
            queue_capacity: config.queue_capacity,
            shed_retry_after_ms: config.shed_retry_after_ms(),
            write_timeout: config.write_timeout,
            sock_send_buffer: config.sock_send_buffer,
            fanout_cap: config.fanout_cap,
            experience: config.experience.clone(),
        });
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let shared = shared.clone();
                let max_batch = config.max_batch;
                let window = config.window;
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, max_batch, window))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            shared,
            workers,
            listener: None,
        }
    }

    /// An in-process client handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: self.shared.clone(),
        }
    }

    /// The live model registry. Entries can be hot-swapped
    /// ([`ModelRegistry::install`]) while the server runs; in-flight
    /// batches finish on the entry they resolved.
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.snapshot()
    }

    /// Binds the TCP front-end (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) and starts accepting framed connections. Returns the bound
    /// address.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(&mut self, addr: &str) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let shared = self.shared.clone();
        let conns_in_accept = conns.clone();
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || {
                let _obs = shared.recorder.as_ref().map(rl_ccd_obs::attach);
                for stream in listener.incoming() {
                    if shared.draining.load(Ordering::SeqCst) {
                        break; // the drain's wake-up connection lands here
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = shared.clone();
                    let conn = std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || connection_loop(&shared, stream))
                        .expect("spawn serve connection");
                    conns_in_accept.lock().expect("conn list lock").push(conn);
                }
            })
            .expect("spawn serve accept loop");
        self.listener = Some(FrontEnd::Blocking(ListenerState {
            addr: local,
            accept_thread,
            conns,
        }));
        Ok(local)
    }

    /// Binds the TCP front-end on the readiness reactor: one thread
    /// multiplexes every connection with epoll instead of spawning a
    /// thread per socket, which is what lets one replica hold thousands
    /// of concurrent connections. Same protocol, same typed backpressure,
    /// same slow-client eviction (a write stalled past
    /// [`ServeConfig::write_timeout`] evicts); batch execution stays on
    /// the worker pool, bridged by the completion queue.
    ///
    /// # Errors
    /// Propagates bind/epoll setup failures (`Unsupported` off Linux —
    /// use [`Server::bind`] there).
    pub fn bind_reactor(&mut self, addr: &str) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // A connection burst beyond std's hardcoded backlog of 128 would
        // see connection resets; re-arm to a depth matching the front-end.
        let _ = rl_ccd_wire::reactor::set_backlog(&listener, 4096);
        let waker = rl_ccd_wire::Waker::new()?;
        let shared = self.shared.clone();
        let reactor_waker = waker.clone();
        // Fail setup errors here, on the caller, not inside the thread.
        crate::reactor::check_supported()?;
        let thread = std::thread::Builder::new()
            .name("serve-reactor".into())
            .spawn(move || crate::reactor::run(&shared, listener, reactor_waker))
            .expect("spawn serve reactor");
        self.listener = Some(FrontEnd::Reactor {
            addr: local,
            thread,
            waker,
        });
        Ok(local)
    }

    /// The bound TCP address, when [`Server::bind`] or
    /// [`Server::bind_reactor`] was called.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.as_ref().map(FrontEnd::addr)
    }

    /// Whether a client has sent the admin `shutdown` request (the CLI
    /// polls this and then calls [`Server::shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop accepting, answer everything already queued,
    /// join all threads, report the final accounting.
    pub fn shutdown(self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.scheduler.drain();
        match self.listener {
            Some(FrontEnd::Blocking(listener)) => {
                // Unblock the accept loop with one throwaway connection.
                let _ = TcpStream::connect(listener.addr);
                let _ = listener.accept_thread.join();
                let conns = std::mem::take(&mut *listener.conns.lock().expect("conn list lock"));
                for conn in conns {
                    let _ = conn.join();
                }
            }
            Some(FrontEnd::Reactor { thread, waker, .. }) => {
                // Interrupt the poll; the reactor notices draining, stops
                // accepting, flushes every owed response (workers are
                // still running and will finish the backlog), then exits.
                waker.wake();
                let _ = thread.join();
            }
            None => {}
        }
        for worker in self.workers {
            let _ = worker.join();
        }
        let abandoned_queue = self.shared.scheduler.depth();
        DrainReport {
            stats: self.shared.snapshot(),
            abandoned_queue,
        }
    }
}

impl ServeHandle {
    /// Submits a query and blocks for its response. Typed rejections
    /// (shutting down, deadline) come back as [`Response::Err`] and a
    /// full queue as [`Response::Overloaded`] — never a panic or a hang.
    pub fn query(&self, request: QueryRequest) -> Response {
        let (tx, rx) = mpsc::channel();
        match self.shared.submit(request, ReplySink::Channel(tx)) {
            Err(kind) => self.shared.reject_response(kind),
            Ok(()) => rx.recv().unwrap_or_else(|_| {
                Response::reject(RejectKind::Internal, "worker dropped the reply channel")
            }),
        }
    }

    /// Answers a health probe from the live server state (never queued).
    pub fn health(&self) -> HealthReply {
        self.shared.health_reply()
    }

    /// The live model registry (shared with the server), for hot reloads
    /// from a controlling process like the daemon.
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.snapshot()
    }
}

fn rejection_message(kind: RejectKind) -> &'static str {
    match kind {
        RejectKind::Busy => "request queue is full, retry later",
        RejectKind::ShuttingDown => "server is draining",
        _ => "rejected",
    }
}

impl Shared {
    pub(crate) fn submit(&self, request: QueryRequest, reply: ReplySink) -> Result<(), RejectKind> {
        let now = Instant::now();
        let deadline = request
            .deadline_ms
            .map(|ms| now + Duration::from_millis(ms));
        let job = Job {
            request,
            reply,
            enqueued: now,
            deadline,
        };
        match self.scheduler.submit(job) {
            Ok(()) => {
                self.stats.accepted.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            Err(kind) => {
                let counter = match kind {
                    RejectKind::Busy => &self.stats.rejected_busy,
                    _ => &self.stats.rejected_shutdown,
                };
                counter.fetch_add(1, Ordering::SeqCst);
                rl_ccd_obs::counter!("serve.rejected", 1);
                Err(kind)
            }
        }
    }

    /// The response for a rejected submission: a full queue becomes the
    /// typed load-shedding answer with its backoff hint, everything else
    /// a [`Response::Err`].
    pub(crate) fn reject_response(&self, kind: RejectKind) -> Response {
        if kind == RejectKind::Busy {
            self.stats.shed.fetch_add(1, Ordering::SeqCst);
            rl_ccd_obs::counter!("serve.shed", 1);
            return Response::Overloaded {
                retry_after_ms: self.shed_retry_after_ms,
            };
        }
        Response::reject(kind, rejection_message(kind))
    }

    /// Records a slow-client eviction (shared by both front-ends).
    pub(crate) fn note_evicted(&self) {
        self.stats.evicted.fetch_add(1, Ordering::SeqCst);
        rl_ccd_obs::counter!("serve.evicted", 1);
    }

    /// A point-in-time health reply.
    pub(crate) fn health_reply(&self) -> HealthReply {
        self.stats.health_probes.fetch_add(1, Ordering::SeqCst);
        rl_ccd_obs::counter!("serve.health_probes", 1);
        HealthReply {
            ready: !self.draining.load(Ordering::SeqCst),
            queue_depth: self.scheduler.depth(),
            queue_capacity: self.queue_capacity,
            models: self.registry.len(),
            active: self.registry.versions(),
        }
    }

    fn snapshot(&self) -> ServeStats {
        ServeStats {
            accepted: self.stats.accepted.load(Ordering::SeqCst),
            completed: self.stats.completed.load(Ordering::SeqCst),
            rejected_busy: self.stats.rejected_busy.load(Ordering::SeqCst),
            rejected_shutdown: self.stats.rejected_shutdown.load(Ordering::SeqCst),
            deadline_expired: self.stats.deadline_expired.load(Ordering::SeqCst),
            shed: self.stats.shed.load(Ordering::SeqCst),
            evicted: self.stats.evicted.load(Ordering::SeqCst),
            health_probes: self.stats.health_probes.load(Ordering::SeqCst),
            reactor_polls: self.stats.reactor_polls.load(Ordering::SeqCst),
            reactor_events: self.stats.reactor_events.load(Ordering::SeqCst),
            batches: self
                .stats
                .batches
                .lock()
                .expect("batch census lock")
                .clone(),
        }
    }
}

fn worker_loop(shared: &Shared, max_batch: usize, window: Duration) {
    let _obs = shared.recorder.as_ref().map(rl_ccd_obs::attach);
    while let Some(batch) = shared.scheduler.next_batch(max_batch, window) {
        let _span = rl_ccd_obs::span!("serve.batch", size = batch.len() as u64);
        rl_ccd_obs::observe!("serve.batch.size", batch.len() as f64);
        *shared
            .stats
            .batches
            .lock()
            .expect("batch census lock")
            .entry(batch.len())
            .or_insert(0) += 1;
        execute_batch(shared, batch);
    }
}

/// Answers every job in the batch. Jobs are grouped by (model, design) so
/// each group resolves its environment once; within a group the greedy
/// selection is computed at most once and memoized across batches.
fn execute_batch(shared: &Shared, batch: Vec<Job>) {
    let batch_size = batch.len();
    let now = Instant::now();
    let mut groups: BTreeMap<(String, String), Vec<Job>> = BTreeMap::new();
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        if job.deadline.is_some_and(|d| now > d) {
            shared.stats.deadline_expired.fetch_add(1, Ordering::SeqCst);
            rl_ccd_obs::counter!("serve.deadline_expired", 1);
            finish(
                shared,
                &job,
                Response::reject(RejectKind::Deadline, "deadline passed in queue"),
            );
            continue;
        }
        live.push(job);
    }
    for job in live {
        let key = (job.request.model.clone(), job.request.design.to_string());
        groups.entry(key).or_default().push(job);
    }
    for ((model_name, _), jobs) in groups {
        let Some(model) = shared.registry.get(&model_name) else {
            for job in jobs {
                let msg = format!("no model {model_name:?} in the registry");
                finish(
                    shared,
                    &job,
                    Response::reject(RejectKind::UnknownModel, msg),
                );
            }
            continue;
        };
        // One environment resolution for the whole group.
        let env = match shared.envs.get_or_build(&jobs[0].request.design) {
            Ok(env) => env,
            Err(msg) => {
                for job in jobs {
                    finish(
                        shared,
                        &job,
                        Response::reject(RejectKind::BadRequest, msg.clone()),
                    );
                }
                continue;
            }
        };
        // Bind the model's parameters once for the whole group: every job
        // in it executes through the same no-grad tape, whose buffers are
        // recycled between requests (the batched no-grad path).
        let mut session: Option<InferSession<'_>> = None;
        let mut greedy: Option<Arc<Vec<EndpointId>>> = None;
        let mut greedy_was_cached = false;
        for job in jobs {
            let (selection, cached) = match job.request.mode {
                Mode::Greedy => {
                    if greedy.is_none() {
                        let key = &job.request.design;
                        if let Some(hit) = shared.selections.get(model.fingerprint, key) {
                            greedy = Some(hit);
                            greedy_was_cached = true;
                        } else {
                            let fresh = Arc::new(
                                session
                                    .get_or_insert_with(|| {
                                        InferSession::new(&model.model, &model.params)
                                    })
                                    .select(&env),
                            );
                            shared
                                .selections
                                .insert(model.fingerprint, key, fresh.clone());
                            greedy = Some(fresh);
                        }
                    }
                    (
                        greedy.clone().expect("greedy computed above"),
                        greedy_was_cached,
                    )
                }
                Mode::Sample(seed) => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let session = session
                        .get_or_insert_with(|| InferSession::new(&model.model, &model.params));
                    let selection = if let Some(hook) = &shared.experience {
                        // The logged path is bit-identical to the plain
                        // one; the hook call is the one enqueue the
                        // request path pays for closed-loop learning.
                        let (sel, log_probs) = session.sample_logged(&env, &mut rng);
                        hook.on_sample(ExperienceEvent {
                            design: job.request.design.clone(),
                            model: model.name.clone(),
                            version: model.version,
                            fingerprint: model.fingerprint,
                            rho: model.model.config.rho,
                            fanout_cap: shared.fanout_cap,
                            seed,
                            selection: sel.clone(),
                            log_probs,
                        });
                        sel
                    } else {
                        session.sample(&env, &mut rng)
                    };
                    (Arc::new(selection), false)
                }
            };
            let reply = QueryReply {
                model: model.name.clone(),
                version: model.version,
                steps: selection.len(),
                batch: batch_size,
                cached,
                selection: selection.iter().map(|e| e.index()).collect(),
            };
            finish(shared, &job, Response::Ok(reply));
        }
    }
}

/// Delivers a reply and records completion + latency. A client that hung
/// up is still a completed request — the server held up its side.
fn finish(shared: &Shared, job: &Job, response: Response) {
    let latency_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
    rl_ccd_obs::observe!("serve.request.latency_ms", latency_ms);
    rl_ccd_obs::counter!("serve.completed", 1);
    shared.stats.completed.fetch_add(1, Ordering::SeqCst);
    job.reply.send(response);
}

/// One TCP connection: framed requests in, framed responses out, until
/// EOF, a fatal stream error, a slow-client eviction, or the server
/// drains. Per-connection memory is bounded by construction: one request
/// frame in flight (capped by the frame limit) and one encoded response
/// (written before the next request is read).
fn connection_loop(shared: &Shared, stream: TcpStream) {
    let _obs = shared.recorder.as_ref().map(rl_ccd_obs::attach);
    // Short read timeout so an idle connection re-checks the drain flag;
    // write timeout so a client that stops draining its socket is
    // evicted instead of pinning a connection thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    let Ok(mut reader) = stream.try_clone() else {
        return; // no usable socket pair; nothing was accepted yet
    };
    let mut writer = stream;
    loop {
        match crate::protocol::read_frame(&mut reader) {
            Ok(payload) => {
                let response = match Request::decode(&payload) {
                    Err(msg) => Response::reject(RejectKind::BadRequest, msg),
                    Ok(Request::Shutdown) => {
                        // Acknowledge, then let the controlling process
                        // call Server::shutdown; the connection ends here.
                        let ack = Response::Ok(QueryReply {
                            model: String::new(),
                            version: 0,
                            steps: 0,
                            batch: 0,
                            cached: false,
                            selection: vec![],
                        });
                        let _ = crate::protocol::write_frame(&mut writer, &ack.encode());
                        shared.draining.store(true, Ordering::SeqCst);
                        return;
                    }
                    Ok(Request::Health) => Response::Health(shared.health_reply()),
                    Ok(Request::Query(q)) => {
                        let (tx, rx) = mpsc::channel();
                        match shared.submit(q, ReplySink::Channel(tx)) {
                            Err(kind) => shared.reject_response(kind),
                            Ok(()) => rx.recv().unwrap_or_else(|_| {
                                Response::reject(
                                    RejectKind::Internal,
                                    "worker dropped the reply channel",
                                )
                            }),
                        }
                    }
                };
                if let Err(e) = crate::protocol::write_frame(&mut writer, &response.encode()) {
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) {
                        shared.note_evicted();
                    }
                    return;
                }
                let _ = writer.flush();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return, // EOF or fatal stream error
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::DesignKey;
    use rl_ccd::{RlCcd, RlConfig};

    fn design(name: &str, seed: u64) -> DesignKey {
        DesignKey {
            name: name.into(),
            cells: 360,
            tech: "7nm".into(),
            seed,
        }
    }

    fn registry() -> ModelRegistry {
        let (_, params) = RlCcd::init(RlConfig::fast());
        let reg = ModelRegistry::new();
        reg.insert_params("default", params, 0.3).expect("insert");
        reg
    }

    fn query(model: &str, design_key: DesignKey, mode: Mode) -> QueryRequest {
        QueryRequest {
            model: model.into(),
            design: design_key,
            mode,
            deadline_ms: None,
            auth: None,
        }
    }

    #[test]
    fn serves_greedy_and_sampled_selections_in_process() {
        let server = Server::start(registry(), ServeConfig::default());
        let handle = server.handle();
        let greedy = handle.query(query("default", design("srv", 5), Mode::Greedy));
        let Response::Ok(g) = greedy else {
            panic!("greedy failed: {greedy:?}")
        };
        assert_eq!(g.steps, g.selection.len());
        assert!(!g.selection.is_empty());
        let sampled = handle.query(query("default", design("srv", 5), Mode::Sample(3)));
        let Response::Ok(s) = sampled else {
            panic!("sample failed: {sampled:?}")
        };
        assert!(!s.selection.is_empty());
        // Second greedy on the same design: memoized.
        let again = handle.query(query("default", design("srv", 5), Mode::Greedy));
        let Response::Ok(a) = again else {
            panic!("repeat failed: {again:?}")
        };
        assert!(a.cached, "repeat greedy query must hit the selection cache");
        assert_eq!(a.selection, g.selection);
        let report = server.shutdown();
        assert_eq!(report.dropped(), 0);
        assert_eq!(report.stats.completed, 3);
    }

    #[test]
    fn unknown_model_and_bad_tech_are_typed_errors() {
        let server = Server::start(registry(), ServeConfig::default());
        let handle = server.handle();
        let r = handle.query(query("missing", design("srv", 5), Mode::Greedy));
        assert!(matches!(
            r,
            Response::Err {
                kind: RejectKind::UnknownModel,
                ..
            }
        ));
        let mut bad = design("srv", 5);
        bad.tech = "3nm".into();
        let r = handle.query(query("default", bad, Mode::Greedy));
        assert!(matches!(
            r,
            Response::Err {
                kind: RejectKind::BadRequest,
                ..
            }
        ));
        assert_eq!(server.shutdown().dropped(), 0);
    }

    #[test]
    fn shutdown_rejects_new_queries_and_reports_clean_drain() {
        let server = Server::start(registry(), ServeConfig::default());
        let handle = server.handle();
        let ok = handle.query(query("default", design("drain", 8), Mode::Greedy));
        assert!(matches!(ok, Response::Ok(_)));
        let report = server.shutdown();
        assert_eq!(report.dropped(), 0);
        let after = handle.query(query("default", design("drain", 8), Mode::Greedy));
        assert!(matches!(
            after,
            Response::Err {
                kind: RejectKind::ShuttingDown,
                ..
            }
        ));
    }

    #[test]
    fn expired_deadline_is_answered_not_dropped() {
        // Window long enough that the job sits in the queue past its
        // deadline before the worker dispatches it.
        let config = ServeConfig {
            workers: 1,
            window: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let server = Server::start(registry(), config);
        let handle = server.handle();
        // Occupy the worker with a cold-cache query, then submit one with
        // an already-motionless deadline behind it.
        let h2 = handle.clone();
        let warm = std::thread::spawn(move || {
            h2.query(query("default", design("busy", 11), Mode::Greedy))
        });
        std::thread::sleep(Duration::from_millis(5));
        // Deadline of 0 ms: already expired by the time a worker gets it.
        let mut req = query("default", design("busy", 12), Mode::Greedy);
        req.deadline_ms = Some(0);
        let late = handle.query(req);
        assert!(matches!(
            late,
            Response::Err {
                kind: RejectKind::Deadline,
                ..
            }
        ));
        assert!(matches!(warm.join().unwrap(), Response::Ok(_)));
        let report = server.shutdown();
        assert_eq!(
            report.dropped(),
            0,
            "deadline errors still count as answered"
        );
        assert!(report.stats.deadline_expired >= 1);
    }

    #[test]
    fn full_queue_sheds_with_typed_overloaded_and_backoff_hint() {
        // Zero queue capacity: every submission is a shed — the
        // deterministic way to pin the typed response.
        let config = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        let hint = config.shed_retry_after_ms();
        assert!(hint >= 1);
        let server = Server::start(registry(), config);
        let handle = server.handle();
        let r = handle.query(query("default", design("shed", 1), Mode::Greedy));
        let Response::Overloaded { retry_after_ms } = r else {
            panic!("expected typed Overloaded, got {r:?}");
        };
        assert_eq!(retry_after_ms, hint);
        let stats = handle.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.rejected_busy, 1, "sheds are busy rejections");
        let report = server.shutdown();
        assert_eq!(report.dropped(), 0, "nothing was accepted, nothing owed");
    }

    #[test]
    fn health_probe_reflects_readiness_and_drain() {
        let server = Server::start(registry(), ServeConfig::default());
        let handle = server.handle();
        let h = handle.health();
        assert!(h.ready);
        assert_eq!(h.queue_capacity, ServeConfig::default().queue_capacity);
        assert_eq!(h.models, 1);
        assert_eq!(h.active.len(), 1);
        assert_eq!(h.active[0].name, "default");
        let report = server.shutdown();
        assert_eq!(report.dropped(), 0);
        let h = handle.health();
        assert!(!h.ready, "a draining server is not ready");
        assert_eq!(handle.stats().health_probes, 2);
    }

    #[test]
    fn experience_hook_sees_sampled_queries_with_matching_log_probs() {
        #[derive(Debug, Default)]
        struct Capture(Mutex<Vec<ExperienceEvent>>);
        impl ExperienceHook for Capture {
            fn on_sample(&self, event: ExperienceEvent) {
                self.0.lock().expect("capture lock").push(event);
            }
        }
        let hook = Arc::new(Capture::default());
        let config = ServeConfig {
            experience: Some(hook.clone() as Arc<dyn ExperienceHook>),
            ..ServeConfig::default()
        };
        let server = Server::start(registry(), config);
        let handle = server.handle();
        // A greedy query emits nothing; a sampled one emits one event.
        let g = handle.query(query("default", design("hooked", 4), Mode::Greedy));
        assert!(matches!(g, Response::Ok(_)));
        let r = handle.query(query("default", design("hooked", 4), Mode::Sample(77)));
        let Response::Ok(reply) = r else {
            panic!("sample failed: {r:?}")
        };
        let report = server.shutdown();
        assert_eq!(report.dropped(), 0);
        let events = hook.0.lock().expect("capture lock");
        assert_eq!(events.len(), 1, "one sampled query, one event");
        let e = &events[0];
        assert_eq!(e.model, "default");
        assert_eq!(e.seed, 77);
        assert_eq!(e.design, design("hooked", 4));
        // The event's selection is the one the client got, with log-probs
        // aligned per step.
        let global: Vec<usize> = e.selection.iter().map(|x| x.index()).collect();
        assert_eq!(global, reply.selection);
        assert_eq!(e.log_probs.len(), e.selection.len());
        assert!(e.log_probs.iter().all(|lp| lp.is_finite() && *lp <= 0.0));
        assert_eq!(e.rho, 0.3);
        assert_eq!(e.fanout_cap, ServeConfig::default().fanout_cap);
        // Logged sampling must not have perturbed the served selection:
        // an unhooked server gives the same answer for the same seed.
        let plain = Server::start(registry(), ServeConfig::default());
        let p = plain
            .handle()
            .query(query("default", design("hooked", 4), Mode::Sample(77)));
        let Response::Ok(plain_reply) = p else {
            panic!("plain sample failed: {p:?}")
        };
        assert_eq!(plain_reply.selection, reply.selection);
        assert_eq!(plain.shutdown().dropped(), 0);
    }

    #[test]
    fn batch_census_tracks_dispatch_sizes() {
        let config = ServeConfig {
            workers: 1,
            window: Duration::from_millis(30),
            ..ServeConfig::default()
        };
        let server = Server::start(registry(), config);
        let handle = server.handle();
        // Warm the env cache so follow-up queries are fast and queue up.
        let _ = handle.query(query("default", design("census", 2), Mode::Greedy));
        let mut threads = Vec::new();
        for seed in 0..6 {
            let h = handle.clone();
            threads.push(std::thread::spawn(move || {
                h.query(query("default", design("census", 2), Mode::Sample(seed)))
            }));
        }
        for t in threads {
            assert!(matches!(t.join().unwrap(), Response::Ok(_)));
        }
        let report = server.shutdown();
        assert_eq!(report.dropped(), 0);
        let total: u64 = report.stats.batches.values().sum();
        assert!(total >= 1);
        let sized: u64 = report
            .stats
            .batches
            .iter()
            .map(|(size, count)| *size as u64 * count)
            .sum();
        assert_eq!(
            sized, report.stats.completed,
            "every reply came out of a batch"
        );
    }
}
