//! Experience-emission hook: the seam between serving and learning.
//!
//! Every completed *sampled* query is a logged interaction with the
//! policy — exactly the raw material offline retraining wants. The server
//! does not know (or link) the experience subsystem; it only calls an
//! installed [`ExperienceHook`] with an [`ExperienceEvent`] carrying what
//! the hot path already has in hand: the design key, the serving model's
//! identity, the sampled selection, and the behavior log-probabilities.
//! Everything expensive — rebuilding the environment, running the timing
//! flow to realize the reward, content-addressing, deduplication, disk
//! I/O — happens behind the hook, off the request path. The contract is
//! that `on_sample` is one bounded enqueue (the `rl-ccd-exp` sink drops
//! and counts on overflow rather than blocking a serve worker).

use crate::protocol::DesignKey;
use rl_ccd_netlist::EndpointId;

/// Everything the server knows about one completed sampled query.
///
/// The selection and `log_probs` are parallel: `log_probs[i]` is the
/// behavior policy's log-probability of picking `selection[i]` at step
/// `i`. `rho` and `fanout_cap` pin the serving-side knobs an experience
/// consumer needs to rebuild the identical environment and selection
/// mask.
#[derive(Clone, Debug)]
pub struct ExperienceEvent {
    /// The design the query ran against (fully pins the environment).
    pub design: DesignKey,
    /// Registry name of the model that served the query.
    pub model: String,
    /// Checkpoint version of that model (its training iteration).
    pub version: usize,
    /// FNV-1a 64 fingerprint of the model's checkpoint bytes.
    pub fingerprint: u64,
    /// Cone-overlap selection threshold the model served with.
    pub rho: f32,
    /// Fanout cap the environment was built with.
    pub fanout_cap: usize,
    /// The client-supplied sampling seed.
    pub seed: u64,
    /// Sampled endpoints, in selection order.
    pub selection: Vec<EndpointId>,
    /// Behavior log-probability of each selected action.
    pub log_probs: Vec<f32>,
}

/// A consumer of [`ExperienceEvent`]s, installed via
/// [`crate::ServeConfig::experience`].
///
/// Implementations MUST return quickly: `on_sample` runs on a serve
/// worker between computing a selection and delivering the reply. Hand
/// the event to a channel and do the real work elsewhere.
pub trait ExperienceHook: Send + Sync + std::fmt::Debug {
    /// Called once per completed sampled query.
    fn on_sample(&self, event: ExperienceEvent);
}
