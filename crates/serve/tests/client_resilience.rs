//! End-to-end resilience tests for the TCP client against a live server:
//! silent peers time out instead of hanging, connection resets are
//! retried transparently, overload sheds with a typed backoff hint, and
//! health probes answer even while the scheduler is saturated.

use rl_ccd::{RlCcd, RlConfig};
use rl_ccd_serve::protocol::{DesignKey, Mode, QueryRequest};
use rl_ccd_serve::{ModelRegistry, Response, ServeClient, ServeConfig, Server};
use rl_ccd_wire::{NetFaultPlan, RetryPolicy};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn registry() -> ModelRegistry {
    let (_, params) = RlCcd::init(RlConfig::fast());
    let reg = ModelRegistry::new();
    reg.insert_params("default", params, 0.3).expect("insert");
    reg
}

fn query(deadline_ms: Option<u64>) -> QueryRequest {
    QueryRequest {
        model: "default".into(),
        design: DesignKey {
            name: "resil".into(),
            cells: 360,
            tech: "7nm".into(),
            seed: 5,
        },
        mode: Mode::Greedy,
        deadline_ms,
        auth: None,
    }
}

fn bound_server(config: ServeConfig) -> (Server, std::net::SocketAddr) {
    let mut server = Server::start(registry(), config);
    let addr = server.bind("127.0.0.1:0").expect("bind");
    (server, addr)
}

#[test]
fn silent_peer_times_out_instead_of_hanging() {
    // A listener that accepts and then never speaks: the failure mode
    // that used to hang the client forever.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

    let mut client = ServeClient::connect(addr).expect("connect");
    let started = Instant::now();
    let err = client.query(query(Some(300))).expect_err("must time out");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ),
        "unexpected error: {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline budget was not enforced: took {:?}",
        started.elapsed()
    );
    drop(client);
    let _ = hold.join();
}

#[test]
fn connection_reset_is_retried_to_success() {
    let (server, addr) = bound_server(ServeConfig::default());
    let plan = Arc::new(NetFaultPlan::none().with_reset(7, 0));
    let mut client = ServeClient::builder()
        .addr(addr)
        .retry(RetryPolicy::seeded(1).with_attempts(3))
        .chaos(Arc::clone(&plan), 7)
        .connect()
        .expect("connect");
    let response = client.query(query(Some(30_000))).expect("query");
    assert!(matches!(response, Response::Ok(_)), "got {response:?}");
    assert_eq!(client.retries(), 1, "exactly one re-issue after the reset");
    assert_eq!(client.reconnects(), 1);
    assert_eq!(plan.fired(), 1, "the planned reset fired exactly once");
    let report = server.shutdown();
    assert_eq!(report.dropped(), 0);
}

#[test]
fn overload_shed_is_typed_and_carries_the_configured_hint() {
    // Capacity 0 sheds every submission deterministically.
    let config = ServeConfig {
        queue_capacity: 0,
        workers: 1,
        ..ServeConfig::default()
    };
    let hint = config.shed_retry_after_ms();
    let (server, addr) = bound_server(config);
    let mut client = ServeClient::builder()
        .addr(addr)
        .retry(RetryPolicy::seeded(2).with_attempts(2))
        .connect()
        .expect("connect");
    let response = client.query(query(Some(30_000))).expect("query");
    let Response::Overloaded { retry_after_ms } = response else {
        panic!("expected typed shed, got {response:?}");
    };
    assert_eq!(retry_after_ms, hint);
    assert_eq!(client.retries(), 1, "one overload retry before giving up");
    assert_eq!(client.reconnects(), 0, "overload never tears the socket");
    let stats = server.stats();
    assert_eq!(stats.shed, 2, "both attempts were shed");
    server.shutdown();
}

#[test]
fn deprecated_constructors_are_parity_wrappers_over_the_builder() {
    // The legacy connect + with_retry + with_chaos chain must behave
    // exactly like the builder: same chaos firings, same retry and
    // reconnect counts, same selection.
    let (server, addr) = bound_server(ServeConfig::default());
    let plan_built = Arc::new(NetFaultPlan::none().with_reset(7, 0));
    let plan_legacy = Arc::new(NetFaultPlan::none().with_reset(7, 0));
    let mut built = ServeClient::builder()
        .addr(addr)
        .retry(RetryPolicy::seeded(1).with_attempts(3))
        .chaos(Arc::clone(&plan_built), 7)
        .connect()
        .expect("builder connect");
    #[allow(deprecated)]
    let mut legacy = ServeClient::connect(addr)
        .expect("connect")
        .with_retry(RetryPolicy::seeded(1).with_attempts(3))
        .with_chaos(Arc::clone(&plan_legacy), 7);

    let a = built.query(query(Some(30_000))).expect("built query");
    let b = legacy.query(query(Some(30_000))).expect("legacy query");
    let (Response::Ok(a), Response::Ok(b)) = (a, b) else {
        panic!("both clients must succeed after the planned reset");
    };
    assert_eq!(a.selection, b.selection, "identical selections");
    assert_eq!(a.steps, b.steps);
    assert_eq!(built.retries(), legacy.retries(), "same retry count");
    assert_eq!(built.reconnects(), legacy.reconnects(), "same reconnects");
    assert_eq!(plan_built.fired(), 1);
    assert_eq!(plan_legacy.fired(), 1);
    let report = server.shutdown();
    assert_eq!(report.dropped(), 0);
}

#[test]
fn health_probe_answers_over_tcp() {
    let (server, addr) = bound_server(ServeConfig::default());
    let mut client = ServeClient::connect(addr).expect("connect");
    let health = client.health().expect("probe");
    assert!(health.ready);
    assert_eq!(health.models, 1);
    assert_eq!(health.queue_depth, 0);
    server.shutdown();
}
