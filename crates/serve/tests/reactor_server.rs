//! End-to-end tests for the reactor TCP front-end: protocol parity with
//! the blocking front-end, request pipelining on one connection,
//! slow-client eviction on a write stall, the shutdown-request path, and
//! the 1k-idle-connection soak pinning that wakeups scale with *active*
//! connections, not open ones.

#![cfg(target_os = "linux")]

use rl_ccd::{RlCcd, RlConfig};
use rl_ccd_serve::protocol::{DesignKey, Mode, QueryRequest, Request, Response};
use rl_ccd_serve::{ModelRegistry, ServeClient, ServeConfig, Server};
use rl_ccd_wire::{read_frame, write_frame};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn registry() -> ModelRegistry {
    let (_, params) = RlCcd::init(RlConfig::fast());
    let reg = ModelRegistry::new();
    reg.insert_params("default", params, 0.3).expect("insert");
    reg
}

fn query(name: &str, seed: u64, mode: Mode) -> QueryRequest {
    QueryRequest {
        model: "default".into(),
        design: DesignKey {
            name: name.into(),
            cells: 360,
            tech: "7nm".into(),
            seed,
        },
        mode,
        deadline_ms: None,
        auth: None,
    }
}

fn reactor_server(config: ServeConfig) -> (Server, std::net::SocketAddr) {
    let mut server = Server::start(registry(), config);
    let addr = server.bind_reactor("127.0.0.1:0").expect("bind_reactor");
    (server, addr)
}

#[test]
fn reactor_serves_queries_health_and_drains_clean() {
    let (server, addr) = reactor_server(ServeConfig::default());
    let mut client = ServeClient::connect(addr).expect("connect");

    let first = client
        .query(query("react", 3, Mode::Greedy))
        .expect("query");
    let Response::Ok(g) = first else {
        panic!("greedy failed: {first:?}")
    };
    assert_eq!(g.steps, g.selection.len());
    assert!(!g.selection.is_empty());

    let again = client
        .query(query("react", 3, Mode::Greedy))
        .expect("query");
    let Response::Ok(a) = again else {
        panic!("repeat failed: {again:?}")
    };
    assert!(a.cached, "repeat greedy must hit the selection cache");
    assert_eq!(a.selection, g.selection);

    let health = client.health().expect("health");
    assert!(health.ready);
    assert_eq!(health.models, 1);

    let report = server.shutdown();
    assert_eq!(report.dropped(), 0, "clean drain");
    assert_eq!(report.stats.completed, 2);
    assert!(
        report.stats.reactor_polls > 0,
        "the reactor actually polled"
    );
}

#[test]
fn reactor_front_end_answers_pipelined_requests_in_order() {
    // The blocking front-end reads one request per response; the reactor
    // decodes everything buffered. Fire a burst of requests without
    // waiting, then collect every response off the same connection.
    let (server, addr) = reactor_server(ServeConfig::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    const BURST: usize = 8;
    let mut burst = Vec::new();
    for seed in 0..BURST as u64 {
        let req = Request::Query(query("pipeline", 1, Mode::Sample(seed)));
        write_frame(&mut burst, &req.encode()).expect("encode");
    }
    stream.write_all(&burst).expect("send burst");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut replies = Vec::new();
    for _ in 0..BURST {
        let payload = read_frame(&mut stream).expect("response frame");
        replies.push(Response::decode(&payload).expect("decode"));
    }
    assert!(
        replies.iter().all(|r| matches!(r, Response::Ok(_))),
        "every pipelined query answered: {replies:?}"
    );
    drop(stream);
    let report = server.shutdown();
    assert_eq!(report.dropped(), 0);
    assert_eq!(report.stats.completed, BURST as u64);
}

#[test]
fn shutdown_request_over_the_reactor_acks_and_sets_draining() {
    let (server, addr) = reactor_server(ServeConfig::default());
    let mut client = ServeClient::connect(addr).expect("connect");
    client.shutdown().expect("shutdown ack");
    let deadline = Instant::now() + Duration::from_secs(5);
    while !server.shutdown_requested() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.shutdown_requested(), "drain flag set by the request");
    let report = server.shutdown();
    assert_eq!(report.dropped(), 0);
}

#[test]
fn slow_client_is_evicted_on_write_stall() {
    // A client that pipelines a flood of queries and never reads a byte:
    // once the kernel buffers fill, the reactor's send buffer stays
    // non-empty past write_timeout and the connection must be evicted —
    // not buffered without bound, not kept forever.
    let config = ServeConfig {
        queue_capacity: 8192,
        write_timeout: Duration::from_millis(150),
        // Cap the kernel send buffer so the stall surfaces as write
        // backpressure instead of vanishing into autotuned buffers.
        sock_send_buffer: Some(16 * 1024),
        ..ServeConfig::default()
    };
    let (server, addr) = reactor_server(config);
    let handle = server.handle();
    // Warm the caches so the flood is answered from memo, quickly.
    let warm = handle.query(query("stall", 9, Mode::Greedy));
    assert!(matches!(warm, Response::Ok(_)), "warmup failed: {warm:?}");

    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = Request::Query(query("stall", 9, Mode::Greedy)).encode();
    let mut burst = Vec::new();
    for _ in 0..6000 {
        write_frame(&mut burst, &req).expect("encode");
    }
    // The server may evict us mid-send; a reset while we still write is
    // this test passing, not failing.
    let _ = stream.write_all(&burst);

    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.stats().evicted == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        handle.stats().evicted >= 1,
        "a write stalled past write_timeout must evict the client: {:?}",
        handle.stats()
    );
    drop(stream);
    let report = server.shutdown();
    assert_eq!(report.dropped(), 0, "evicted replies still count answered");
}

#[test]
fn thousand_idle_connections_cost_no_wakeups() {
    let (server, addr) = reactor_server(ServeConfig::default());
    let handle = server.handle();

    // Park 1000 idle connections on the reactor.
    let idle: Vec<TcpStream> = (0..1000)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}")))
        .collect();
    // Let the accept bursts land, then snapshot the event counter.
    let mut client = ServeClient::connect(addr).expect("connect");
    let h = client.health().expect("health");
    assert!(h.ready);
    std::thread::sleep(Duration::from_millis(100));
    let before = handle.stats().reactor_events;

    const QUERIES: usize = 50;
    for seed in 0..QUERIES as u64 {
        let r = client
            .query(query("soak", 2, Mode::Sample(seed)))
            .expect("query");
        assert!(matches!(r, Response::Ok(_)), "soak query failed: {r:?}");
    }
    let delta = handle.stats().reactor_events - before;
    // Each query costs a handful of events (readable, completion wake,
    // maybe a writable). 1000 idle sockets must contribute nothing: the
    // O(open-connections) failure mode would put delta in the tens of
    // thousands.
    let bound = (QUERIES * 8 + 50) as u64;
    assert!(
        delta <= bound,
        "wakeups must scale with active connections, not open ones: \
         {delta} events for {QUERIES} queries with 1000 idle conns (bound {bound})"
    );

    drop(idle);
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.dropped(), 0);
}
