//! Property test: the atomic checkpoint format round-trips arbitrary
//! [`TrainingState`]s exactly — parameters, Adam moments, telemetry
//! (including `-inf` sentinels from all-quarantined iterations), and the
//! fault log all compare equal after save + load.
//!
//! The state is generated from a seeded RNG rather than nested strategies:
//! one `u64` pins the whole case, which keeps failures reproducible under
//! the vendored proptest (no shrinking).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl_ccd::checkpoint::{load_training_state, save_training_state};
use rl_ccd::{FaultKind, IterationStats, RolloutFault, TrainingState};
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::{Adam, GradSet, ParamSet, Tensor};

/// A float spanning many magnitudes, exercising the shortest-round-trip
/// `Display` path far from 1.0.
fn wild_f32(rng: &mut StdRng) -> f32 {
    let mantissa = rng.gen_range(-1.0f32..1.0);
    let exp = rng.gen_range(0u32..12) as i32 - 6;
    mantissa * 10f32.powi(exp)
}

fn wild_f64(rng: &mut StdRng) -> f64 {
    if rng.gen_range(0u32..8) == 0 {
        f64::NEG_INFINITY
    } else {
        let mantissa = rng.gen_range(-1.0f64..1.0);
        let exp = rng.gen_range(0u32..16) as i32 - 8;
        mantissa * 10f64.powi(exp)
    }
}

fn random_params(rng: &mut StdRng) -> ParamSet {
    let mut params = ParamSet::new();
    for i in 0..rng.gen_range(1usize..4) {
        let rows = rng.gen_range(1usize..4);
        let cols = rng.gen_range(1usize..5);
        let data = (0..rows * cols).map(|_| wild_f32(rng)).collect();
        params.insert(format!("layer{i}.w"), Tensor::from_vec(rows, cols, data));
    }
    params
}

/// Adam moments are only reachable through `step`, so drive a few steps
/// with random gradients to populate them.
fn random_adam(rng: &mut StdRng, params: &mut ParamSet) -> Adam {
    let mut adam = Adam::new(rng.gen_range(1e-5f32..0.1));
    for _ in 0..rng.gen_range(0usize..3) {
        let mut grads = GradSet::new();
        for (name, t) in params.clone().iter() {
            let data = (0..t.rows() * t.cols()).map(|_| wild_f32(rng)).collect();
            grads.set(name, Tensor::from_vec(t.rows(), t.cols(), data));
        }
        adam.step(params, &grads);
    }
    adam
}

fn random_detail(rng: &mut StdRng) -> String {
    // Printable ASCII including spaces and punctuation; newlines are
    // flattened by the writer (covered by a checkpoint unit test), so they
    // are excluded here where exact equality is asserted.
    (0..rng.gen_range(0usize..40))
        .map(|_| rng.gen_range(0x20u32..0x7F) as u8 as char)
        .collect()
}

fn random_state(seed: u64) -> TrainingState {
    let rng = &mut StdRng::seed_from_u64(seed);
    let mut params = random_params(rng);
    let adam = random_adam(rng, &mut params);
    let kinds = [
        FaultKind::WorkerPanic,
        FaultKind::NonFiniteReward,
        FaultKind::NonFiniteGradient,
        FaultKind::NonFiniteUpdate,
        FaultKind::EmptyBatch,
    ];
    let history = (0..rng.gen_range(0usize..4))
        .map(|i| IterationStats {
            iteration: i,
            mean_reward: wild_f64(rng),
            batch_best: wild_f64(rng),
            greedy_reward: wild_f64(rng),
            best_so_far: wild_f64(rng),
            steps: (0..rng.gen_range(0usize..4))
                .map(|_| rng.gen_range(0usize..64))
                .collect(),
            rewards: (0..rng.gen_range(0usize..4))
                .map(|_| wild_f64(rng))
                .collect(),
        })
        .collect();
    let faults = (0..rng.gen_range(0usize..4))
        .map(|_| RolloutFault {
            iteration: rng.gen_range(0usize..100),
            worker: rng.gen_range(0usize..8),
            seed: rng.gen_range(0u64..u64::MAX),
            kind: kinds[rng.gen_range(0usize..kinds.len())],
            detail: random_detail(rng),
        })
        .collect();
    TrainingState {
        next_iteration: rng.gen_range(0usize..1000),
        seed_base: rng.gen_range(0u64..u64::MAX),
        best_reward: wild_f64(rng),
        best_mean: wild_f64(rng),
        stale: rng.gen_range(0usize..10),
        best_selection: (0..rng.gen_range(0usize..12))
            .map(|_| EndpointId::new(rng.gen_range(0usize..1000)))
            .collect(),
        params,
        adam,
        history,
        faults,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn training_state_roundtrips_exactly(seed in 0u64..1_000_000) {
        let state = random_state(seed);
        let dir = std::env::temp_dir().join(format!(
            "rl-ccd-pts-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        save_training_state(&state, &dir).expect("save");
        let loaded = load_training_state(&dir).expect("load");
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(state, loaded);
    }
}
