//! Property-based tests of the RL-CCD agent's invariants across random
//! designs, seeds, and masking thresholds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd::{CcdEnv, RlCcd, RlConfig, SelectionMask};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};

fn make_env(seed: u64) -> CcdEnv {
    let d = generate(&DesignSpec::new("pagent", 450, TechNode::N7, seed));
    CcdEnv::new(d, FlowRecipe::default(), 24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_trajectory_partitions_the_pool(
        design_seed in 0u64..200,
        rollout_seed in 0u64..1000,
        rho in 0.05f32..0.95,
    ) {
        let env = make_env(design_seed);
        let mut cfg = RlConfig::fast();
        cfg.rho = rho;
        let (model, params) = RlCcd::init(cfg.clone());
        let mut rng = StdRng::seed_from_u64(rollout_seed);
        let ro = model.rollout(&params, &env, &mut rng);
        // Selected endpoints are unique members of the pool.
        let mut sorted = ro.selected.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), ro.selected.len());
        prop_assert!(ro.steps() >= 1 && ro.steps() <= env.pool().len());
        // Replaying through a fresh mask flags the entire pool.
        let mut mask = SelectionMask::new(env.pool().len(), rho);
        for e in &ro.selected {
            let local = env.pool().iter().position(|p| p == e).expect("in pool");
            mask.select(local, env.cones());
        }
        prop_assert!(!mask.any_valid());
        // Log-probability of the trajectory is a valid log of a product of
        // probabilities.
        let lp = ro.tape.value(ro.total_log_prob).data()[0];
        prop_assert!(lp.is_finite() && lp <= 1e-4, "log prob {lp}");
    }

    #[test]
    fn greedy_is_deterministic_and_valid(design_seed in 0u64..200) {
        let env = make_env(design_seed);
        let (model, params) = RlCcd::init(RlConfig::fast());
        let a = model.rollout_greedy(&params, &env);
        let b = model.rollout_greedy(&params, &env);
        prop_assert_eq!(&a.selected, &b.selected);
        for e in &a.selected {
            prop_assert!(env.pool().contains(e));
        }
    }

    #[test]
    fn feature_flags_round_trip_masking(design_seed in 0u64..200) {
        // The feature tensor's masked column must exactly reflect the mask's
        // flagged set at every step of a trajectory prefix.
        let env = make_env(design_seed);
        let mut mask = SelectionMask::new(env.pool().len(), 0.3);
        let mut step = 0;
        while mask.any_valid() && step < 4 {
            let action = mask.valid_mask().iter().position(|&v| v).expect("valid");
            mask.select(action, env.cones());
            step += 1;
            let flagged: Vec<_> = mask
                .flagged()
                .iter()
                .map(|&i| env.pool_cells()[i])
                .collect();
            let x = env.features().with_flags(&flagged);
            let ones = (0..x.rows())
                .filter(|&r| x.at(r, rl_ccd::MASKED_COL) == 1.0)
                .count();
            prop_assert_eq!(ones, flagged.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_encoder_variant_produces_valid_trajectories(
        design_seed in 0u64..100,
        variant in 0usize..3,
    ) {
        let env = make_env(design_seed);
        let mut cfg = RlConfig::fast();
        cfg.encoder = match variant {
            0 => rl_ccd::EncoderKind::Lstm,
            1 => rl_ccd::EncoderKind::Gru,
            _ => rl_ccd::EncoderKind::None,
        };
        let (model, params) = RlCcd::init(cfg);
        let mut rng = StdRng::seed_from_u64(11);
        let ro = model.rollout(&params, &env, &mut rng);
        prop_assert!(ro.steps() >= 1);
        let lp = ro.tape.value(ro.total_log_prob).data()[0];
        prop_assert!(lp.is_finite());
        // Backward works for every variant.
        let grads = ro.tape.backward(ro.total_log_prob);
        drop(grads);
    }
}
