//! Training checkpoints: persist everything a run produced — parameters,
//! optimizer-independent telemetry, and the champion selection — so results
//! can be inspected, plotted, or transferred later.

use crate::reinforce::TrainOutcome;
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::ParamSet;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Writes a checkpoint directory:
///
/// * `params.txt` — the trained parameters ([`ParamSet::save`] format);
/// * `history.csv` — per-iteration telemetry (the Fig. 6 curves);
/// * `selection.txt` — the champion endpoint selection, one id per line.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_checkpoint(outcome: &TrainOutcome, dir: impl AsRef<Path>) -> std::io::Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    outcome
        .params
        .save(std::io::BufWriter::new(fs::File::create(
            dir.join("params.txt"),
        )?))?;
    let mut hist = fs::File::create(dir.join("history.csv"))?;
    writeln!(
        hist,
        "iteration,mean_reward,batch_best,greedy_reward,best_so_far,mean_steps"
    )?;
    for h in &outcome.history {
        let mean_steps = if h.steps.is_empty() {
            0.0
        } else {
            h.steps.iter().sum::<usize>() as f64 / h.steps.len() as f64
        };
        writeln!(
            hist,
            "{},{:.3},{:.3},{:.3},{:.3},{:.2}",
            h.iteration, h.mean_reward, h.batch_best, h.greedy_reward, h.best_so_far, mean_steps
        )?;
    }
    let mut sel = fs::File::create(dir.join("selection.txt"))?;
    for e in &outcome.best_selection {
        writeln!(sel, "{}", e.index())?;
    }
    Ok(())
}

/// Loads the parameters from a checkpoint directory.
///
/// # Errors
/// Returns an error on I/O failure or malformed content.
pub fn load_checkpoint_params(
    dir: impl AsRef<Path>,
) -> Result<ParamSet, Box<dyn std::error::Error>> {
    let file = fs::File::open(dir.as_ref().join("params.txt"))?;
    Ok(ParamSet::load(BufReader::new(file))?)
}

/// Loads the champion selection from a checkpoint directory.
///
/// # Errors
/// Returns an error on I/O failure or malformed content.
pub fn load_checkpoint_selection(
    dir: impl AsRef<Path>,
) -> Result<Vec<EndpointId>, Box<dyn std::error::Error>> {
    let file = fs::File::open(dir.as_ref().join("selection.txt"))?;
    let mut out = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        let idx: usize = line.trim().parse()?;
        out.push(EndpointId::new(idx));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RlConfig;
    use crate::env::CcdEnv;
    use crate::reinforce::train;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    #[test]
    fn checkpoint_roundtrip() {
        let d = generate(&DesignSpec::new("ckpt", 450, TechNode::N7, 61));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let mut cfg = RlConfig::fast();
        cfg.max_iterations = 2;
        cfg.patience = 2;
        let outcome = train(&env, &cfg, None);
        let dir = std::env::temp_dir().join("rl_ccd_ckpt_test");
        save_checkpoint(&outcome, &dir).expect("save");
        let params = load_checkpoint_params(&dir).expect("params");
        assert_eq!(params, outcome.params);
        let sel = load_checkpoint_selection(&dir).expect("selection");
        assert_eq!(sel, outcome.best_selection);
        let hist = std::fs::read_to_string(dir.join("history.csv")).expect("history");
        assert!(hist.starts_with("iteration,"));
        assert_eq!(hist.lines().count(), outcome.history.len() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
