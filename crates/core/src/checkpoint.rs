//! Training checkpoints: outcome artifacts for inspection and plotting,
//! plus the versioned, atomically-written [`TrainingState`] that makes a
//! run resumable bit-for-bit after a kill at any iteration.
//!
//! # Atomicity protocol
//!
//! `state.txt` is never written in place. The writer serializes the whole
//! state into memory, writes it to `state.txt.tmp`, fsyncs, renames over
//! `state.txt`, and then commits a `manifest.txt` (same protocol) holding
//! the byte length and FNV-1a 64 checksum of the state file. A crash at
//! any point leaves either the previous consistent pair or the new one; a
//! torn temp file is simply ignored by the loader. The loader verifies
//! length and checksum before parsing and returns a typed
//! [`CheckpointError`] — which is `Send + Sync`, so it crosses thread
//! boundaries — on any mismatch.

use crate::fault::{FaultKind, RolloutFault};
use crate::reinforce::{IterationStats, TrainOutcome};
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::{Adam, ParamSet};
use std::fmt;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Error produced by checkpoint I/O and validation. `Send + Sync` so it
/// can cross worker-thread boundaries.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file exists but its content is malformed, truncated, or fails
    /// the manifest checksum.
    Corrupt(String),
    /// A stored endpoint index does not exist in the design.
    OutOfRange {
        /// The offending stored index.
        index: usize,
        /// Number of endpoints the design actually has.
        max: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::OutOfRange { index, max } => write!(
                f,
                "endpoint index {index} out of range (design has {max} endpoints)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(msg.into())
}

/// Everything needed to continue a training run exactly where it stopped:
/// parameters, full Adam moments, loop counters, champion, per-iteration
/// telemetry, and the fault log. The per-worker rollout seeds are derived
/// deterministically from `seed_base` and the iteration index, so they
/// need no storage — resuming at iteration *k* replays the identical seed
/// stream the uninterrupted run would have used.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainingState {
    /// The next iteration index to execute.
    pub next_iteration: usize,
    /// The `RlConfig::seed` the run was started with (validated on resume;
    /// it is the base of every per-worker rollout seed).
    pub seed_base: u64,
    /// Champion reward so far (TNS ps).
    pub best_reward: f64,
    /// Best batch-mean reward so far (early-stopping progress signal).
    pub best_mean: f64,
    /// Consecutive non-improving iterations so far.
    pub stale: usize,
    /// Champion endpoint selection.
    pub best_selection: Vec<EndpointId>,
    /// Current model parameters.
    pub params: ParamSet,
    /// Full optimizer state (step count + both moment sets).
    pub adam: Adam,
    /// Telemetry of every completed iteration.
    pub history: Vec<IterationStats>,
    /// Every quarantined rollout and guarded update so far.
    pub faults: Vec<RolloutFault>,
}

const STATE_FILE: &str = "state.txt";
const STATE_TMP: &str = "state.txt.tmp";
const MANIFEST_FILE: &str = "manifest.txt";
const MANIFEST_TMP: &str = "manifest.txt.tmp";

/// FNV-1a 64-bit checksum (dependency-free, stable across platforms).
/// FNV-1a 64-bit hash — the checksum the manifest protocol pins the state
/// file with. Public so other consumers of verified checkpoints (e.g. the
/// serve registry) can fingerprint the exact bytes they loaded.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TrainingState {
    /// Serializes the state to the versioned text format.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::new();
        let _ = writeln!(w, "rl-ccd-train-state v1");
        let _ = writeln!(w, "next_iteration {}", self.next_iteration);
        let _ = writeln!(w, "seed_base {}", self.seed_base);
        let _ = writeln!(w, "best_reward {}", self.best_reward);
        let _ = writeln!(w, "best_mean {}", self.best_mean);
        let _ = writeln!(w, "stale {}", self.stale);
        let _ = write!(w, "selection {}", self.best_selection.len());
        for e in &self.best_selection {
            let _ = write!(w, " {}", e.index());
        }
        let _ = writeln!(w);
        let _ = writeln!(w, "history {}", self.history.len());
        for h in &self.history {
            let _ = write!(
                w,
                "{} {} {} {} {} {}",
                h.iteration,
                h.mean_reward,
                h.batch_best,
                h.greedy_reward,
                h.best_so_far,
                h.steps.len()
            );
            for s in &h.steps {
                let _ = write!(w, " {s}");
            }
            let _ = write!(w, " {}", h.rewards.len());
            for r in &h.rewards {
                let _ = write!(w, " {r}");
            }
            let _ = writeln!(w);
        }
        let _ = writeln!(w, "faults {}", self.faults.len());
        for f in &self.faults {
            let detail: String = f
                .detail
                .chars()
                .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
                .collect();
            let _ = writeln!(
                w,
                "{} {} {} {} {}",
                f.iteration,
                f.worker,
                f.seed,
                f.kind.as_str(),
                detail
            );
        }
        let _ = writeln!(w, "params");
        let _ = self.params.save(&mut w);
        let _ = writeln!(w, "adam");
        let _ = self.adam.save(&mut w);
        w
    }

    /// Parses the format written by [`TrainingState::to_bytes`].
    fn from_reader<R: BufRead>(mut r: R) -> Result<Self, CheckpointError> {
        let mut line = String::new();
        let next_line = |r: &mut R, line: &mut String| -> Result<String, CheckpointError> {
            line.clear();
            let n = r.read_line(line)?;
            if n == 0 {
                return Err(corrupt("truncated training state"));
            }
            Ok(line.trim_end().to_string())
        };
        let header = next_line(&mut r, &mut line)?;
        if header != "rl-ccd-train-state v1" {
            return Err(corrupt(format!("bad header: {header:?}")));
        }
        fn field<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, CheckpointError> {
            let rest = line
                .strip_prefix(key)
                .ok_or_else(|| corrupt(format!("expected `{key}`, got {line:?}")))?;
            rest.trim()
                .parse()
                .map_err(|_| corrupt(format!("bad value in `{line}`")))
        }
        let next_iteration: usize = field(&next_line(&mut r, &mut line)?, "next_iteration")?;
        let seed_base: u64 = field(&next_line(&mut r, &mut line)?, "seed_base")?;
        let best_reward: f64 = field(&next_line(&mut r, &mut line)?, "best_reward")?;
        let best_mean: f64 = field(&next_line(&mut r, &mut line)?, "best_mean")?;
        let stale: usize = field(&next_line(&mut r, &mut line)?, "stale")?;

        let sel_line = next_line(&mut r, &mut line)?;
        let mut parts = sel_line.split_whitespace();
        if parts.next() != Some("selection") {
            return Err(corrupt("missing selection section"));
        }
        let n: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| corrupt("bad selection count"))?;
        let mut best_selection = Vec::with_capacity(n);
        for _ in 0..n {
            let idx: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("short selection list"))?;
            best_selection.push(EndpointId::new(idx));
        }

        let hist_line = next_line(&mut r, &mut line)?;
        let n: usize = field(&hist_line, "history")?;
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            let row = next_line(&mut r, &mut line)?;
            let mut p = row.split_whitespace();
            let mut take = |what: &str| -> Result<String, CheckpointError> {
                p.next()
                    .map(str::to_string)
                    .ok_or_else(|| corrupt(format!("history row missing {what}")))
            };
            let iteration: usize = take("iteration")?
                .parse()
                .map_err(|_| corrupt("bad history iteration"))?;
            let mean_reward: f64 = take("mean")?.parse().map_err(|_| corrupt("bad mean"))?;
            let batch_best: f64 = take("batch_best")?
                .parse()
                .map_err(|_| corrupt("bad batch_best"))?;
            let greedy_reward: f64 = take("greedy")?.parse().map_err(|_| corrupt("bad greedy"))?;
            let best_so_far: f64 = take("best")?.parse().map_err(|_| corrupt("bad best"))?;
            let nsteps: usize = take("step count")?
                .parse()
                .map_err(|_| corrupt("bad step count"))?;
            let mut steps = Vec::with_capacity(nsteps);
            for _ in 0..nsteps {
                steps.push(
                    take("step")?
                        .parse()
                        .map_err(|_| corrupt("bad step value"))?,
                );
            }
            let nrewards: usize = take("reward count")?
                .parse()
                .map_err(|_| corrupt("bad reward count"))?;
            let mut rewards = Vec::with_capacity(nrewards);
            for _ in 0..nrewards {
                rewards.push(
                    take("reward")?
                        .parse()
                        .map_err(|_| corrupt("bad reward value"))?,
                );
            }
            history.push(IterationStats {
                iteration,
                mean_reward,
                batch_best,
                greedy_reward,
                best_so_far,
                steps,
                rewards,
            });
        }

        let faults_line = next_line(&mut r, &mut line)?;
        let n: usize = field(&faults_line, "faults")?;
        let mut faults = Vec::with_capacity(n);
        for _ in 0..n {
            let row = next_line(&mut r, &mut line)?;
            let mut p = row.splitn(5, ' ');
            let iteration: usize = p
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("bad fault iteration"))?;
            let worker: usize = p
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("bad fault worker"))?;
            let seed: u64 = p
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("bad fault seed"))?;
            let kind = p
                .next()
                .and_then(FaultKind::parse)
                .ok_or_else(|| corrupt("bad fault kind"))?;
            let detail = p.next().unwrap_or("").to_string();
            faults.push(RolloutFault {
                iteration,
                worker,
                seed,
                kind,
                detail,
            });
        }

        if next_line(&mut r, &mut line)? != "params" {
            return Err(corrupt("missing params section"));
        }
        let params = ParamSet::load(&mut r).map_err(|e| corrupt(format!("params section: {e}")))?;
        if next_line(&mut r, &mut line)? != "adam" {
            return Err(corrupt("missing adam section"));
        }
        let adam = Adam::load(&mut r).map_err(|e| corrupt(format!("adam section: {e}")))?;

        Ok(Self {
            next_iteration,
            seed_base,
            best_reward,
            best_mean,
            stale,
            best_selection,
            params,
            adam,
            history,
            faults,
        })
    }
}

/// Durably commits `bytes` to `dir/final_name` via temp file + fsync +
/// rename (+ best-effort directory fsync).
fn commit_file(dir: &Path, tmp_name: &str, final_name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(tmp_name);
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, dir.join(final_name))?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Atomically writes the training state plus its checksum manifest into
/// `dir` (created if missing). See the module docs for the protocol.
///
/// # Errors
/// Propagates I/O errors as [`CheckpointError::Io`].
pub fn save_training_state(
    state: &TrainingState,
    dir: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let dir = dir.as_ref();
    let commit_start = std::time::Instant::now();
    let mut span = rl_ccd_obs::span!("train.checkpoint.commit", iteration = state.next_iteration,);
    fs::create_dir_all(dir)?;
    let bytes = state.to_bytes();
    span.record("bytes", bytes.len());
    commit_file(dir, STATE_TMP, STATE_FILE, &bytes)?;
    let manifest = format!(
        "rl-ccd-manifest v1\n{STATE_FILE} {} {:016x}\n",
        bytes.len(),
        fnv1a64(&bytes)
    );
    commit_file(dir, MANIFEST_TMP, MANIFEST_FILE, manifest.as_bytes())?;
    rl_ccd_obs::counter!("train.checkpoint.commits", 1);
    rl_ccd_obs::observe!(
        "train.checkpoint.commit_ms",
        commit_start.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

/// Fault-injection support: simulates a crash *during* the checkpoint
/// write by leaving a half-written `state.txt.tmp` behind and never
/// renaming it. The previously committed `state.txt`/`manifest.txt` pair
/// is untouched — which is exactly what the atomicity protocol guarantees
/// about a real torn write.
///
/// # Errors
/// Propagates I/O errors as [`CheckpointError::Io`].
pub fn write_torn_training_state(
    state: &TrainingState,
    dir: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let bytes = state.to_bytes();
    let mut f = fs::File::create(dir.join(STATE_TMP))?;
    f.write_all(&bytes[..bytes.len() / 2])?;
    f.sync_all()?;
    Ok(())
}

/// Whether `dir` holds a committed training state (manifest present).
pub fn training_state_exists(dir: impl AsRef<Path>) -> bool {
    let dir = dir.as_ref();
    dir.join(MANIFEST_FILE).exists() && dir.join(STATE_FILE).exists()
}

/// Loads and validates a training state written by
/// [`save_training_state`]: the manifest must parse, and the state file's
/// length and FNV-1a checksum must match before parsing is attempted.
///
/// # Errors
/// [`CheckpointError::Io`] on filesystem failure, [`CheckpointError::Corrupt`]
/// on any validation or parse failure.
pub fn load_training_state(dir: impl AsRef<Path>) -> Result<TrainingState, CheckpointError> {
    let bytes = verify_manifest(dir)?;
    TrainingState::from_reader(BufReader::new(&bytes[..]))
}

/// Reads the committed `manifest.txt` / `state.txt` pair in `dir`,
/// validates the manifest header, entry name, byte length, and FNV-1a 64
/// checksum, and returns the verified state bytes. Both the training
/// resume path ([`load_training_state`]) and the serve model registry use
/// this as the single integrity gate before parsing.
///
/// # Errors
/// [`CheckpointError::Io`] when either file is unreadable,
/// [`CheckpointError::Corrupt`] on any header/length/checksum mismatch.
pub fn verify_manifest(dir: impl AsRef<Path>) -> Result<Vec<u8>, CheckpointError> {
    let dir = dir.as_ref();
    let manifest = fs::read_to_string(dir.join(MANIFEST_FILE))?;
    let mut lines = manifest.lines();
    if lines.next() != Some("rl-ccd-manifest v1") {
        return Err(corrupt("bad manifest header"));
    }
    let entry = lines.next().ok_or_else(|| corrupt("empty manifest"))?;
    let mut parts = entry.split_whitespace();
    let name = parts.next().ok_or_else(|| corrupt("manifest entry name"))?;
    if name != STATE_FILE {
        return Err(corrupt(format!("unexpected manifest entry {name:?}")));
    }
    let len: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| corrupt("manifest length"))?;
    let sum = parts
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| corrupt("manifest checksum"))?;
    let bytes = fs::read(dir.join(STATE_FILE))?;
    if bytes.len() != len {
        return Err(corrupt(format!(
            "state file is {} bytes, manifest says {len}",
            bytes.len()
        )));
    }
    let actual = fnv1a64(&bytes);
    if actual != sum {
        return Err(corrupt(format!(
            "state checksum {actual:016x} does not match manifest {sum:016x}"
        )));
    }
    Ok(bytes)
}

/// Writes a checkpoint directory:
///
/// * `params.txt` — the trained parameters ([`ParamSet::save`] format);
/// * `history.csv` — per-iteration telemetry (the Fig. 6 curves);
/// * `selection.txt` — the champion endpoint selection, one id per line.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_checkpoint(outcome: &TrainOutcome, dir: impl AsRef<Path>) -> std::io::Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    outcome
        .params
        .save(std::io::BufWriter::new(fs::File::create(
            dir.join("params.txt"),
        )?))?;
    let mut hist = fs::File::create(dir.join("history.csv"))?;
    writeln!(
        hist,
        "iteration,mean_reward,batch_best,greedy_reward,best_so_far,mean_steps"
    )?;
    for h in &outcome.history {
        let mean_steps = if h.steps.is_empty() {
            0.0
        } else {
            h.steps.iter().sum::<usize>() as f64 / h.steps.len() as f64
        };
        writeln!(
            hist,
            "{},{:.3},{:.3},{:.3},{:.3},{:.2}",
            h.iteration, h.mean_reward, h.batch_best, h.greedy_reward, h.best_so_far, mean_steps
        )?;
    }
    let mut sel = fs::File::create(dir.join("selection.txt"))?;
    for e in &outcome.best_selection {
        writeln!(sel, "{}", e.index())?;
    }
    Ok(())
}

/// Loads the parameters from a checkpoint directory.
///
/// # Errors
/// Returns [`CheckpointError`] on I/O failure or malformed content.
pub fn load_checkpoint_params(dir: impl AsRef<Path>) -> Result<ParamSet, CheckpointError> {
    let file = fs::File::open(dir.as_ref().join("params.txt"))?;
    ParamSet::load(BufReader::new(file)).map_err(|e| corrupt(e.to_string()))
}

/// Loads the champion selection from a checkpoint directory, validating
/// every stored index against the design's endpoint count so a malformed
/// file can never produce a bogus [`EndpointId`].
///
/// # Errors
/// [`CheckpointError::OutOfRange`] when an index is `>= endpoint_count`;
/// [`CheckpointError::Io`]/[`CheckpointError::Corrupt`] otherwise.
pub fn load_checkpoint_selection(
    dir: impl AsRef<Path>,
    endpoint_count: usize,
) -> Result<Vec<EndpointId>, CheckpointError> {
    let file = fs::File::open(dir.as_ref().join("selection.txt"))?;
    let mut out = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let idx: usize = trimmed
            .parse()
            .map_err(|_| corrupt(format!("bad endpoint index {trimmed:?}")))?;
        if idx >= endpoint_count {
            return Err(CheckpointError::OutOfRange {
                index: idx,
                max: endpoint_count,
            });
        }
        out.push(EndpointId::new(idx));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RlConfig;
    use crate::env::CcdEnv;
    use crate::reinforce::{try_train, TrainSession};
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn assert_send_sync<T: Send + Sync>() {}

    fn demo_state() -> TrainingState {
        let mut params = ParamSet::new();
        params.insert(
            "w",
            rl_ccd_nn::Tensor::from_vec(1, 3, vec![0.5, -1.25, 3.0e-7]),
        );
        TrainingState {
            next_iteration: 4,
            seed_base: 0xCCD,
            best_reward: -1234.5,
            best_mean: f64::NEG_INFINITY,
            stale: 1,
            best_selection: vec![EndpointId::new(3), EndpointId::new(0)],
            params,
            adam: Adam::new(3e-3),
            history: vec![IterationStats {
                iteration: 0,
                mean_reward: -2000.125,
                batch_best: -1234.5,
                greedy_reward: -1500.0,
                best_so_far: -1234.5,
                steps: vec![3, 4],
                rewards: vec![-2765.75, -1234.5],
            }],
            faults: vec![RolloutFault {
                iteration: 0,
                worker: 1,
                seed: 99,
                kind: FaultKind::WorkerPanic,
                detail: "injected\nnewline".into(),
            }],
        }
    }

    #[test]
    fn errors_are_send_sync() {
        assert_send_sync::<CheckpointError>();
    }

    #[test]
    fn training_state_roundtrips_atomically() {
        let dir = std::env::temp_dir().join("rl_ccd_state_rt");
        let _ = fs::remove_dir_all(&dir);
        let state = demo_state();
        save_training_state(&state, &dir).expect("save");
        assert!(training_state_exists(&dir));
        let loaded = load_training_state(&dir).expect("load");
        // The newline in the fault detail is flattened on write.
        let mut expected = state.clone();
        expected.faults[0].detail = "injected newline".into();
        assert_eq!(loaded, expected);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let dir = std::env::temp_dir().join("rl_ccd_state_sum");
        let _ = fs::remove_dir_all(&dir);
        save_training_state(&demo_state(), &dir).expect("save");
        // Flip one byte of the committed state.
        let path = dir.join("state.txt");
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 2;
        bytes[last] = bytes[last].wrapping_add(1);
        fs::write(&path, &bytes).expect("write");
        let err = load_training_state(&dir).expect_err("must fail checksum");
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_preserves_previous_state() {
        let dir = std::env::temp_dir().join("rl_ccd_state_torn");
        let _ = fs::remove_dir_all(&dir);
        let state = demo_state();
        save_training_state(&state, &dir).expect("save");
        let mut newer = state.clone();
        newer.next_iteration = 9;
        write_torn_training_state(&newer, &dir).expect("torn write");
        // The torn tmp file is ignored; the committed state still loads.
        let loaded = load_training_state(&dir).expect("load after tear");
        assert_eq!(loaded.next_iteration, state.next_iteration);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn selection_indices_are_bounds_checked() {
        let dir = std::env::temp_dir().join("rl_ccd_sel_bounds");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("selection.txt"), "1\n5\n2\n").expect("write");
        let ok = load_checkpoint_selection(&dir, 6).expect("in range");
        assert_eq!(ok.len(), 3);
        let err = load_checkpoint_selection(&dir, 5).expect_err("5 out of range");
        assert!(
            matches!(err, CheckpointError::OutOfRange { index: 5, max: 5 }),
            "{err}"
        );
        fs::write(dir.join("selection.txt"), "1\nbogus\n").expect("write");
        let err = load_checkpoint_selection(&dir, 10).expect_err("garbage line");
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_roundtrip() {
        let d = generate(&DesignSpec::new("ckpt", 450, TechNode::N7, 61));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let mut cfg = RlConfig::fast();
        cfg.max_iterations = 2;
        cfg.patience = 2;
        let outcome = try_train(&env, &cfg, TrainSession::default()).unwrap();
        let dir = std::env::temp_dir().join("rl_ccd_ckpt_test");
        save_checkpoint(&outcome, &dir).expect("save");
        let params = load_checkpoint_params(&dir).expect("params");
        assert_eq!(params, outcome.params);
        let endpoints = env.design().netlist.endpoints().len();
        let sel = load_checkpoint_selection(&dir, endpoints).expect("selection");
        assert_eq!(sel, outcome.best_selection);
        let hist = std::fs::read_to_string(dir.join("history.csv")).expect("history");
        assert!(hist.starts_with("iteration,"));
        assert_eq!(hist.lines().count(), outcome.history.len() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
